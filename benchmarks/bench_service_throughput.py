"""End-to-end wire throughput of the checker daemon vs in-process ingestion.

The service subsystem's cost question: what does the wire add on top of
the batched ingestion kernel?  The same commit-ordered transaction
stream is drained three ways —

- ``Aion.receive_many`` fed directly (the in-process ceiling);
- one client streaming collector-sized batches over localhost TCP into
  the daemon, wall time measured from first submit to drain-complete
  (ndjson encode + socket + decode + queue + the same batch kernel);
- four concurrent clients, sessions partitioned across connections (the
  deployment shape: one producer per database node).

Shape claims: every frontend reports identical verdicts, and the wire
path sustains a usable fraction of the in-process rate (the protocol is
JSON over TCP in pure Python — parity is not the claim; usability and
equivalence are).
"""

import gc as host_gc
import threading
import time

from repro.bench import cached_default_history, pick, write_result
from repro.core.aion import Aion, AionConfig
from repro.service import CheckerClient, ServiceConfig, ServiceThread

BATCH = 500


def _stream(history):
    return history.by_commit_ts()


def _in_process(txns):
    host_gc.collect()
    checker = Aion(AionConfig(timeout=float("inf")))
    t0 = time.perf_counter()
    for offset in range(0, len(txns), BATCH):
        checker.receive_many(txns[offset : offset + BATCH])
    elapsed = time.perf_counter() - t0
    violations = len(checker.finalize().violations)
    checker.close()
    return elapsed, violations


def _via_service(txns, *, n_clients):
    host_gc.collect()
    config = ServiceConfig(
        port=0,
        timeout=float("inf"),
        batch_size=BATCH,
        queue_capacity=4 * BATCH,
    )
    with ServiceThread(config) as handle:
        host, port = handle.tcp_address
        by_client = [[] for _ in range(n_clients)]
        for txn in txns:
            by_client[txn.sid % n_clients].append(txn)
        errors = []

        def produce(mine):
            try:
                client = CheckerClient(host, port)
                client.connect()
                with client:
                    for offset in range(0, len(mine), BATCH):
                        client.submit_many(mine[offset : offset + BATCH], ack=False)
                    # Dispatch is serial per connection, so the pong
                    # proves every submit above was admitted to the
                    # ingest queue — without it, the control drain below
                    # could join a momentarily-empty queue while this
                    # producer's trailing lines are still being parsed.
                    client.ping()
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        control = CheckerClient(host, port)
        control.connect()
        t0 = time.perf_counter()
        threads = [
            threading.Thread(target=produce, args=(mine,)) for mine in by_client if mine
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        control.drain()
        elapsed = time.perf_counter() - t0
        assert not errors, errors
        result = control.finalize()
        control.close()
        return elapsed, len(result.violations)


def _run():
    n = pick(4_000, 20_000, 100_000)
    history = cached_default_history(
        n_sessions=24, n_transactions=n, ops_per_txn=8, n_keys=1000, seed=2214
    )
    txns = _stream(history)
    frontends = [
        ("Aion in-process batched", lambda: _in_process(txns)),
        ("service, 1 client", lambda: _via_service(txns, n_clients=1)),
        ("service, 4 clients", lambda: _via_service(txns, n_clients=4)),
    ]
    rows = []
    for label, run in frontends:
        elapsed, violations = run()
        rows.append(
            {
                "frontend": label,
                "txns": len(txns),
                "wall_s": round(elapsed, 3),
                "tps": round(len(txns) / elapsed),
                "violations": violations,
            }
        )
    baseline = rows[0]["tps"]
    for row in rows:
        row["vs_in_process"] = round(row["tps"] / baseline, 3)
    return rows


def test_service_throughput(run_once):
    rows = run_once(_run)
    print()
    print(
        write_result(
            "service_throughput",
            rows,
            title="End-to-end wire throughput vs in-process batched ingestion",
            notes="Claim: identical verdicts through the wire; the daemon "
            "sustains a usable fraction of the in-process ingestion rate.",
        )
    )
    by = {row["frontend"]: row for row in rows}
    verdicts = {row["violations"] for row in rows}
    assert len(verdicts) == 1, rows
    # The wire costs real work (JSON + TCP in pure Python); it must still
    # deliver a usable share of the in-process rate, not collapse.
    assert by["service, 1 client"]["tps"] > 0.05 * by["Aion in-process batched"]["tps"], by
    assert by["service, 4 clients"]["tps"] > 0.05 * by["Aion in-process batched"]["tps"], by
