#!/usr/bin/env python3
"""End-to-end wire throughput of the checker daemon vs in-process ingestion.

The service subsystem's cost question: what does the wire add on top of
the batched ingestion kernel?  The same commit-ordered transaction
stream is drained through every frontend —

- ``Aion.receive_many`` fed directly (the in-process ceiling);
- the v1 ndjson codec, one client and four concurrent clients;
- the v2 binary frame codec (columnar submit batches), one client and
  four concurrent clients —

with wall time measured from first submit to drain-complete, so each
number covers encode + socket + decode + queue + the same batch kernel.

Shape claims: every frontend reports identical verdicts; the v1 wire
sustains a usable fraction of the in-process rate; and the v2 codec
recovers most of what ndjson gives away (the tentpole claim recorded in
``BENCH_service.json``: single-client v2 within 1.2x of in-process and
at least 2x the ndjson rate on the fig12b smoke workload).

Standalone runs append a trajectory row::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py --label my-change

while ``pytest benchmarks/bench_service_throughput.py`` runs the smoke
comparison without recording.
"""

from __future__ import annotations

import gc as host_gc
import json
import platform
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:  # direct `python benchmarks/...` runs
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import cached_default_history, pick, write_result  # noqa: E402
from repro.core.aion import Aion, AionConfig  # noqa: E402
from repro.online.collector import HistoryCollector  # noqa: E402
from repro.online.delays import NormalDelay  # noqa: E402
from repro.service import CheckerClient, ServiceConfig, ServiceThread  # noqa: E402

TRAJECTORY_PATH = REPO_ROOT / "BENCH_service.json"
BATCH = 500


def fig12b_txns(n):
    """The Fig-12b arrival stream the hot-path benchmarks also drain."""
    history = cached_default_history(
        n_sessions=24, n_transactions=n, ops_per_txn=8, n_keys=1000, seed=1213
    )
    collector = HistoryCollector(
        batch_size=BATCH, arrival_tps=10_000, delay_model=NormalDelay(100, 10), seed=12
    )
    return [txn for _, txn in collector.schedule(history)]


def _in_process(txns):
    host_gc.collect()
    checker = Aion(AionConfig(timeout=float("inf")))
    t0 = time.perf_counter()
    for offset in range(0, len(txns), BATCH):
        checker.receive_many(txns[offset : offset + BATCH])
    elapsed = time.perf_counter() - t0
    violations = len(checker.finalize().violations)
    checker.close()
    return elapsed, violations


def _via_service(txns, *, n_clients, protocol, pipelined=False):
    host_gc.collect()
    config = ServiceConfig(
        port=0,
        timeout=float("inf"),
        batch_size=BATCH,
        # Deep enough that TCP backpressure, not queue waits, paces the
        # producers: the reader never parks mid-run with the checker idle.
        queue_capacity=16 * BATCH,
    )
    with ServiceThread(config) as handle:
        host, port = handle.tcp_address
        by_client = [[] for _ in range(n_clients)]
        for txn in txns:
            by_client[txn.sid % n_clients].append(txn)
        errors = []

        def produce(mine):
            try:
                client = CheckerClient(host, port, protocol=protocol)
                client.connect()
                with client:
                    if pipelined:
                        # Windowed pipelining: frames coalesce into
                        # vectored sends instead of one syscall each.
                        client.submit_pipelined(
                            mine, batch_size=BATCH, window=8, ack=False
                        )
                    else:
                        for offset in range(0, len(mine), BATCH):
                            client.submit_many(mine[offset : offset + BATCH], ack=False)
                    # Dispatch is serial per connection, so the pong
                    # proves every submit above was admitted to the
                    # ingest queue — without it, the control drain below
                    # could join a momentarily-empty queue while this
                    # producer's trailing frames are still being parsed.
                    client.ping()
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        control = CheckerClient(host, port)
        control.connect()
        t0 = time.perf_counter()
        threads = [
            threading.Thread(target=produce, args=(mine,)) for mine in by_client if mine
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        control.drain()
        elapsed = time.perf_counter() - t0
        assert not errors, errors
        result = control.finalize()
        control.close()
        return elapsed, len(result.violations)


FRONTENDS = [
    ("Aion in-process batched", lambda txns: _in_process(txns)),
    ("ndjson v1, 1 client", lambda txns: _via_service(txns, n_clients=1, protocol=1)),
    ("ndjson v1, 4 clients", lambda txns: _via_service(txns, n_clients=4, protocol=1)),
    ("frames v2, 1 client", lambda txns: _via_service(txns, n_clients=1, protocol=2)),
    ("frames v2, 4 clients", lambda txns: _via_service(txns, n_clients=4, protocol=2)),
    (
        "frames v2 pipelined, 1 client",
        lambda txns: _via_service(txns, n_clients=1, protocol=2, pipelined=True),
    ),
    (
        "frames v2 pipelined, 4 clients",
        lambda txns: _via_service(txns, n_clients=4, protocol=2, pipelined=True),
    ),
]


def run_frontends(txns, repeats=1):
    # Rounds interleave the frontends (round-robin, best-of per
    # frontend) so slow drift in machine load lands on every frontend
    # instead of biasing whichever happened to run last.
    best = {label: float("inf") for label, _ in FRONTENDS}
    violations = {}
    for _ in range(repeats):
        for label, run in FRONTENDS:
            elapsed, got = run(txns)
            if label in violations:
                assert got == violations[label], (label, got, violations[label])
            violations[label] = got
            best[label] = min(best[label], elapsed)
    rows = [
        {
            "frontend": label,
            "txns": len(txns),
            "wall_s": round(best[label], 3),
            "tps": round(len(txns) / best[label]),
            "violations": violations[label],
        }
        for label, _ in FRONTENDS
    ]
    baseline = rows[0]["tps"]
    for row in rows:
        row["vs_in_process"] = round(row["tps"] / baseline, 3)
    return rows


# ----------------------------------------------------------------------
# pytest entry (smoke comparison, no trajectory write)
# ----------------------------------------------------------------------

def test_service_throughput(run_once):
    def _run():
        n = pick(4_000, 20_000, 100_000)
        history = cached_default_history(
            n_sessions=24, n_transactions=n, ops_per_txn=8, n_keys=1000, seed=2214
        )
        return run_frontends(history.by_commit_ts())

    rows = run_once(_run)
    print()
    print(
        write_result(
            "service_throughput",
            rows,
            title="End-to-end wire throughput vs in-process batched ingestion",
            notes="Claim: identical verdicts through the wire on both codecs; "
            "v2 frames recover most of the throughput ndjson gives away.",
        )
    )
    by = {row["frontend"]: row for row in rows}
    verdicts = {row["violations"] for row in rows}
    assert len(verdicts) == 1, rows
    # The v1 wire costs real work (JSON + TCP in pure Python); it must
    # still deliver a usable share of the in-process rate, not collapse.
    assert by["ndjson v1, 1 client"]["tps"] > 0.05 * by["Aion in-process batched"]["tps"], by
    assert by["ndjson v1, 4 clients"]["tps"] > 0.05 * by["Aion in-process batched"]["tps"], by
    # The v2 codec exists to beat ndjson; a strict 2x gate lives in the
    # recorded trajectory (timing gates flake on shared CI runners), but
    # even here it must not lose to the codec it replaces.
    assert by["frames v2, 1 client"]["tps"] > by["ndjson v1, 1 client"]["tps"], by


# ----------------------------------------------------------------------
# Standalone entry: record a BENCH_service.json trajectory row
# ----------------------------------------------------------------------

_RESULT_KEYS = {
    "Aion in-process batched": "in_process",
    "ndjson v1, 1 client": "ndjson_1_client",
    "ndjson v1, 4 clients": "ndjson_4_clients",
    "frames v2, 1 client": "v2_1_client",
    "frames v2, 4 clients": "v2_4_clients",
    "frames v2 pipelined, 1 client": "v2_pipelined_1_client",
    "frames v2 pipelined, 4 clients": "v2_pipelined_4_clients",
}


def record_entry(label, sizes, results):
    if TRAJECTORY_PATH.exists():
        payload = json.loads(TRAJECTORY_PATH.read_text(encoding="utf-8"))
    else:
        payload = {"figure": "service", "trajectory": []}
    payload["trajectory"].append(
        {
            "label": label,
            "recorded": time.strftime("%Y-%m-%d %H:%M:%S"),
            "python": platform.python_version(),
            "sizes": sizes,
            "results": results,
        }
    )
    TRAJECTORY_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="unlabelled", help="trajectory entry label")
    parser.add_argument("--n", type=int, default=4_000, help="fig12b transaction count")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--no-record", action="store_true", help="do not append to BENCH_service.json"
    )
    args = parser.parse_args(argv)

    txns = fig12b_txns(args.n)
    rows = run_frontends(txns, repeats=args.repeats)
    by = {row["frontend"]: row for row in rows}
    results = {}
    for row in rows:
        entry = {"tps": row["tps"], "violations": row["violations"]}
        if row["frontend"] != "Aion in-process batched":
            entry["vs_in_process"] = row["vs_in_process"]
        if row["frontend"].startswith("frames v2"):
            entry["vs_ndjson"] = round(
                row["tps"] / by["ndjson v1, 1 client"]["tps"], 3
            )
        results[_RESULT_KEYS[row["frontend"]]] = entry

    for row in rows:
        print(
            f"{row['frontend']:>26}: {row['tps']:>8,} tps "
            f"({row['vs_in_process']:.3f}x in-process, {row['violations']} violations)"
        )
    if len({row["violations"] for row in rows}) != 1:
        print("FAIL: frontends disagree on verdicts")
        return 1

    if not args.no_record:
        sizes = {"fig12b_n": args.n, "batch": BATCH, "repeats": args.repeats}
        record_entry(args.label, sizes, results)
        print(f"recorded trajectory entry {args.label!r} -> {TRAJECTORY_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
