"""Fig 9 — runtime decomposition of Chronos under varying GC frequency.

Paper claims: frequent GC makes the GC stage the most expensive one; GC
time falls roughly linearly as the GC interval grows ("fast" in the
paper = GC after every batch; gc-∞ = never).
"""

import time

from repro.bench import cached_default_history, pick, write_result
from repro.core.chronos import Chronos, GcMode
from repro.histories.serialization import load_history, save_history


def _run(tmp_path):
    n = pick(4_000, 50_000, 1_000_000)
    history = cached_default_history(
        n_sessions=24, n_transactions=n, ops_per_txn=15, n_keys=1000, seed=909
    )
    path = tmp_path / "history.jsonl"
    save_history(history, path)

    intervals = pick(
        [100, 200, 500, 1000, None],
        [1_000, 2_000, 5_000, 10_000, None],
        [10_000, 20_000, 50_000, 100_000, None],
    )
    rows = []
    for every in intervals:
        t0 = time.perf_counter()
        loaded = load_history(path)
        loading = time.perf_counter() - t0
        checker = Chronos(gc_every=every, gc_mode=GcMode.FULL)
        result = checker.check_transactions(loaded.transactions, consume=True)
        assert result.is_valid
        rows.append(
            {
                "gc_every": "inf" if every is None else every,
                "loading": round(loading, 4),
                "sorting": round(checker.report.sort_seconds, 4),
                "checking": round(checker.report.check_seconds, 4),
                "gc": round(checker.report.gc_seconds, 4),
                "gc_runs": checker.report.gc_runs,
            }
        )
    return rows


def test_fig09_gc_decomposition(run_once, tmp_path):
    rows = run_once(_run, tmp_path)
    print()
    print(
        write_result(
            "fig09",
            rows,
            title="Fig 9: Chronos stage times (s) vs GC frequency",
            notes="Claim: frequent GC dominates runtime; cost shrinks with the interval.",
        )
    )
    # GC time decreases (weakly) as the interval grows.
    gc_times = [row["gc"] for row in rows]
    assert gc_times[0] >= gc_times[-1], gc_times
    assert rows[-1]["gc_runs"] == 0
    assert rows[0]["gc_runs"] > rows[-2]["gc_runs"]
