"""Fig 23 (appendix) — Aion (SI) throughput on RUBiS and Twitter.

Paper claim: Aion's SI throughput is lower on Twitter than on RUBiS
because Twitter keeps minting new keys (every post creates a tweet key),
inflating the versioned ``frontier_ts``, while RUBiS updates a bounded
key population in place.
"""

from repro.bench import cached_rubis_history, cached_twitter_history, pick, write_result
from repro.core.aion import Aion, AionConfig
from repro.histories.stats import HistoryStats
from repro.online.clock import SimClock
from repro.online.collector import HistoryCollector
from repro.online.delays import NormalDelay
from repro.online.runner import GcPolicy, OnlineRunner


def _run():
    n = pick(3_000, 15_000, 100_000)
    rows = []
    for dataset, history in [
        ("RUBiS", cached_rubis_history(n, seed=2323)),
        ("Twitter", cached_twitter_history(n, seed=2324)),
    ]:
        stats = HistoryStats.of(history)
        schedule = HistoryCollector(
            batch_size=500, arrival_tps=10_000, delay_model=NormalDelay(100, 10), seed=20
        ).schedule(history)
        for policy in (GcPolicy.NO_GC, GcPolicy.CHECKING_GC):
            clock = SimClock()
            checker = Aion(AionConfig(timeout=5.0), clock=clock)
            report = OnlineRunner(
                checker,
                clock,
                gc_policy=policy,
                gc_threshold=max(1000, n // 5) if policy is not GcPolicy.NO_GC else 10**9,
            ).run_capacity(schedule)
            rows.append(
                {
                    "dataset": dataset,
                    "#keys": stats.n_keys,
                    "gc": policy.value,
                    "tps": round(report.overall_tps),
                    "violations": len(report.result.violations),
                }
            )
            checker.close()
    return rows


def test_fig23_si_datasets(run_once):
    rows = run_once(_run)
    print()
    print(
        write_result(
            "fig23",
            rows,
            title="Fig 23: Aion (SI) throughput on RUBiS vs Twitter",
            notes="Claim: Twitter's growing key population costs throughput "
            "relative to RUBiS's bounded keys.",
        )
    )
    for row in rows:
        assert row["violations"] == 0, row
    keys = {row["dataset"]: row["#keys"] for row in rows}
    assert keys["Twitter"] > keys["RUBiS"], keys  # the mechanism behind the claim
    tps = {
        (row["dataset"], row["gc"]): row["tps"] for row in rows
    }
    # Twitter never meaningfully faster than RUBiS.
    assert tps[("Twitter", "no-gc")] <= tps[("RUBiS", "no-gc")] * 1.25, tps
