#!/usr/bin/env python3
"""Hot-path micro-benchmarks for the ordered-index engine.

Every per-arrival step of Aion's Algorithm 3 bottoms out in the ordered
index layer: frontier ``floor_item`` lookups (step ①), NOCONFLICT
overlap queries (step ②), and EXT re-check sweeps via ``irange``
(step ③).  This suite times those primitives in isolation and then the
end-to-end Fig-12b single-shard batched ingestion they compose into:

- ``sorted_map``  — insert / floor / higher / set_and_higher / irange /
  pop_below throughput on a scrambled integer keyspace;
- ``interval_index`` — NOCONFLICT-shaped overlap queries against an
  index holding many *old, short* writer intervals below a recent
  active window (the pattern a long-running checker accumulates);
- ``ext_sweep``   — ExtReadIndex ``affected_by`` range sweeps;
- ``fig12b``      — the same single-shard batched arrival stream
  ``bench_sharded_scaling`` drains, reported as tps.

Results append to the ``BENCH_hotpath.json`` trajectory at the repo
root, so successive engine generations stay comparable::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --label my-change

``--smoke`` runs small sizes plus a *deterministic* regression gate on
operation counts (entries scanned per overlap query, chunk-structure
invariants) instead of wall-clock numbers — structural slowdowns fail
on shared CI runners where timing gates cannot be trusted.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from random import Random

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:  # direct `python benchmarks/...` runs
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.aion import Aion, AionConfig  # noqa: E402
from repro.core.reference import normalize_violations  # noqa: E402
from repro.core.versioned import ExtReadIndex  # noqa: E402
from repro.online.collector import HistoryCollector  # noqa: E402
from repro.online.delays import NormalDelay  # noqa: E402
from repro.util.intervals import Interval, IntervalIndex  # noqa: E402
from repro.util.sortedmap import SortedMap  # noqa: E402

TRAJECTORY_PATH = REPO_ROOT / "BENCH_hotpath.json"
BATCH = 500


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


# ----------------------------------------------------------------------
# Suite 1: raw sorted-map operations
# ----------------------------------------------------------------------

def bench_sorted_map(n, repeats):
    keys = list(range(n))
    Random(7).shuffle(keys)
    rows = {}

    def inserts():
        m = SortedMap()
        for k in keys:
            m[k] = k
        return m

    elapsed, m = _best_of(repeats, inserts)
    rows["insert_ops_s"] = round(n / elapsed)

    probes = [(k * 7919) % (2 * n) for k in range(n)]

    def floors():
        floor = m.floor_item
        for p in probes:
            floor(p)

    elapsed, _ = _best_of(repeats, floors)
    rows["floor_ops_s"] = round(n / elapsed)

    def highers():
        higher = m.higher_item
        for p in probes:
            higher(p)

    elapsed, _ = _best_of(repeats, highers)
    rows["higher_ops_s"] = round(n / elapsed)

    def fused():
        sm = SortedMap()
        sah = sm.set_and_higher
        for k in keys:
            sah(k, k)

    elapsed, _ = _best_of(repeats, fused)
    rows["set_and_higher_ops_s"] = round(n / elapsed)

    width = max(4, n // 100)
    starts = [(k * 4099) % n for k in range(512)]

    def sweeps():
        total = 0
        for s in starts:
            for _ in m.irange(s, s + width):
                total += 1
        return total

    elapsed, swept = _best_of(repeats, sweeps)
    rows["irange_items_s"] = round(swept / elapsed) if swept else 0

    def drain():
        sm = SortedMap()
        for k in keys:
            sm[k] = k
        step = max(1, n // 64)
        for cut in range(step, n + step, step):
            sm.pop_below(cut)
        return sm

    elapsed, drained = _best_of(repeats, drain)
    assert len(drained) == 0
    rows["pop_below_drain_ops_s"] = round(n / elapsed)
    return rows


# ----------------------------------------------------------------------
# Suite 2: interval overlap queries (NOCONFLICT shape)
# ----------------------------------------------------------------------

def _aged_interval_index(n_old, n_recent, base):
    """Many old short writer intervals below a recent active window."""
    index = IntervalIndex()
    for i in range(n_old):
        index.add(Interval(i, i + 1, owner=i))
    for i in range(n_recent):
        index.add(Interval(base + i, base + i + 40, owner=n_old + i))
    return index


def bench_interval_index(n_old, n_recent, n_queries, repeats):
    base = 10 * (n_old + n_recent)
    index = _aged_interval_index(n_old, n_recent, base)
    queries = [
        Interval(base + (i * 13) % n_recent, base + (i * 13) % n_recent + 25)
        for i in range(n_queries)
    ]

    def run():
        hits = 0
        overlapping = index.overlapping
        for q in queries:
            hits += len(overlapping(q))
        return hits

    # Count scanned entries once, deterministically (engines without the
    # counter — e.g. the skiplist generation — report None).
    before = getattr(index, "scan_steps", None)
    total_hits = run()
    scanned = None
    if before is not None:
        scanned = index.scan_steps - before

    elapsed, _ = _best_of(repeats, run)
    return {
        "n_intervals": n_old + n_recent,
        "queries_s": round(n_queries / elapsed),
        "hits_per_query": round(total_hits / n_queries, 2),
        "scanned_per_query": (
            round(scanned / n_queries, 2) if scanned is not None else None
        ),
    }


# ----------------------------------------------------------------------
# Suite 3: EXT re-check sweeps (step ③ shape)
# ----------------------------------------------------------------------

def bench_ext_sweep(n_keys, reads_per_key, repeats):
    index = ExtReadIndex()
    for k in range(n_keys):
        key = f"k{k}"
        for r in range(reads_per_key):
            index.add(key, r * 10, tid=k * reads_per_key + r, actual=r)

    window = 10 * max(2, reads_per_key // 16)
    sweeps = [
        (f"k{k}", s * 10, s * 10 + window)
        for k in range(n_keys)
        for s in range(0, reads_per_key, max(1, reads_per_key // 8))
    ]

    def run():
        total = 0
        affected = index.affected_by
        for key, lo, hi in sweeps:
            for _ in affected(key, lo, hi):
                total += 1
        return total

    elapsed, total = _best_of(repeats, run)
    return {
        "n_reads": n_keys * reads_per_key,
        "swept_reads_s": round(total / elapsed) if total else 0,
        "reads_per_sweep": round(total / len(sweeps), 2),
    }


# ----------------------------------------------------------------------
# Suite 4: end-to-end Fig-12b single-shard batched ingestion
# ----------------------------------------------------------------------

def bench_fig12b(n, repeats, *, sample_every=0):
    """``sample_every > 0`` runs the same stream with stage-timing
    instrumentation enabled at the daemon's default cadence, so the
    trajectory records what metrics cost on the end-to-end hot path."""
    from repro.bench import cached_default_history

    history = cached_default_history(
        n_sessions=24, n_transactions=n, ops_per_txn=8, n_keys=1000, seed=1213
    )
    collector = HistoryCollector(
        batch_size=BATCH, arrival_tps=10_000, delay_model=NormalDelay(100, 10), seed=12
    )
    txns = [txn for _, txn in collector.schedule(history)]

    def run():
        checker = Aion(AionConfig(timeout=float("inf")))
        if sample_every:
            checker.kernel_stats.sample_every = sample_every
        for offset in range(0, len(txns), BATCH):
            checker.receive_many(txns[offset : offset + BATCH])
        n_violations = len(checker.finalize().violations)
        checker.close()
        return n_violations

    elapsed, n_violations = _best_of(repeats, run)
    row = {
        "n_txns": len(txns),
        "tps": round(len(txns) / elapsed),
        "violations": n_violations,
    }
    if sample_every:
        row["sample_every"] = sample_every
    return row


# ----------------------------------------------------------------------
# Smoke gate: deterministic operation-count regression checks
# ----------------------------------------------------------------------

def run_smoke_gate():
    """Structural regression gate on operation counts, not wall time.

    Returns a list of failure strings (empty = pass).  Everything
    asserted here is deterministic: the same engine always scans the
    same entries and builds the same chunk structure, so the gate gives
    identical verdicts on a loaded CI runner and a quiet laptop.
    """
    failures = []

    # Gate 1: overlap queries against a window far above many old short
    # intervals must not touch the old intervals (reach-based pruning).
    n_old, n_recent = 5000, 64
    base = 10 * (n_old + n_recent)
    index = _aged_interval_index(n_old, n_recent, base)
    scan_before = getattr(index, "scan_steps", None)
    if scan_before is None:
        failures.append(
            "IntervalIndex has no scan_steps counter; the op-count gate "
            "requires the instrumented engine"
        )
        return failures
    hits = 0
    n_queries = 100
    for i in range(n_queries):
        q = Interval(base + (i * 13) % n_recent, base + (i * 13) % n_recent + 25)
        hits += len(index.overlapping(q))
    scanned = index.scan_steps - scan_before
    # Budget: every hit plus a per-query allowance covering the chunk
    # header probes (~11 chunks here) and partial-chunk slop.  The
    # unpruned scan would examine all 5064 intervals per query (~500k
    # total).
    budget = hits + n_queries * 24
    if scanned > budget:
        failures.append(
            f"overlap scan examined {scanned} entries for {hits} hits "
            f"(budget {budget}): reach pruning regressed"
        )

    # Gate 2: pop_ending_before must stop at the first surviving chunk:
    # collecting below the active window examines a bounded number of
    # surviving entries, not the whole index.
    gc_before = index.gc_scan_steps if hasattr(index, "gc_scan_steps") else None
    removed = index.pop_ending_before(base)
    if len(removed) != n_old:
        failures.append(
            f"pop_ending_before removed {len(removed)} intervals, expected {n_old}"
        )
    if gc_before is not None:
        gc_scanned = index.gc_scan_steps - gc_before
        if gc_scanned > 2048:  # one chunk of survivors, not 5000 corpses
            failures.append(
                f"pop_ending_before examined {gc_scanned} surviving entries "
                "(budget 2048): early-stop regressed"
            )

    # Gate 3: chunk-structure invariant — the two-level container keeps
    # chunk counts proportional to n / load, so a broken split/merge
    # policy (e.g. 1-element chunks) fails loudly.
    n = 50_000
    m = SortedMap()
    keys = list(range(n))
    Random(3).shuffle(keys)
    for k in keys:
        m[k] = k
    maxes = getattr(m, "_maxes", None)
    if maxes is not None:
        if len(maxes) > max(4, n // 256):
            failures.append(
                f"SortedMap fragmented into {len(maxes)} chunks for {n} keys"
            )
    if list(m.keys()) != list(range(n)):
        failures.append("SortedMap iteration order broken")
    if m.floor_item(n * 2) != (n - 1, n - 1) or m.floor_item(-1) is not None:
        failures.append("SortedMap floor_item broken at the boundaries")

    # Gate 4: pop_below drains in whole-chunk steps; the structure must
    # survive a full drain-and-reuse cycle.
    removed = m.pop_below(n // 2, inclusive=False)
    if len(removed) != n // 2 or len(m) != n - n // 2:
        failures.append("SortedMap pop_below removed the wrong prefix")
    m[0] = "again"
    if m.min_item() != (0, "again"):
        failures.append("SortedMap reuse after pop_below broken")

    # Gate 5: batched ingestion must take the staged batch kernel.  Its
    # per-stage counters advance only inside ``receive_many``'s kernel
    # and are exact functions of the history, so a regression back to
    # per-op dispatch (counters stay zero) or a kernel that silently
    # drops/duplicates probe work fails deterministically — no timing.
    from repro.bench import cached_default_history
    from repro.histories.model import OpKind

    history = cached_default_history(
        n_sessions=6, n_transactions=400, ops_per_txn=8, n_keys=120, seed=77
    )
    collector = HistoryCollector(
        batch_size=50, arrival_tps=10_000, delay_model=NormalDelay(100, 10), seed=5
    )
    txns = [txn for _, txn in collector.schedule(history)]
    checker = Aion(AionConfig(timeout=float("inf")))
    for offset in range(0, len(txns), 50):
        checker.receive_many(txns[offset : offset + 50])
    stats = checker.kernel_stats
    baseline_verdict = normalize_violations(checker.finalize())
    checker.close()
    expected = {
        "batches": -(-len(txns) // 50),
        "txns": len(txns),
        "max_batch": 50,
        "route_ops": sum(len(t.ops) for t in txns),
        "probe_reads": sum(len(t.external_reads) for t in txns),
        "probe_writes": sum(
            len({op.key for op in t.ops if op.kind is OpKind.WRITE}) for t in txns
        ),
        "verdict_tracks": sum(len(t.external_reads) for t in txns),
    }
    got = stats.as_dict()
    for name, want in expected.items():
        if got[name] != want:
            failures.append(
                f"kernel counter {name} = {got[name]}, expected {want}: "
                "batches are not flowing through the staged kernel"
            )
    if got["probe_reads"] == 0 or got["probe_writes"] == 0:
        failures.append("kernel probe counters are zero on a read/write workload")

    # Gate 6: observability must be free where it counts.  The same
    # stream with stage timing sampled on every batch and the slow-batch
    # trace firing on every batch must advance the op counters to the
    # exact same values and yield the identical verdict multiset —
    # instrumentation that perturbs routed work (or verdicts!) is a bug
    # the wall clock would never catch.
    instrumented = Aion(AionConfig(timeout=float("inf")))
    istats = instrumented.kernel_stats
    istats.sample_every = 1
    istats.slow_threshold = 1e-9
    traces = []
    istats.on_slow_batch = traces.append
    for offset in range(0, len(txns), 50):
        instrumented.receive_many(txns[offset : offset + 50])
    instrumented_verdict = normalize_violations(instrumented.finalize())
    instrumented.close()
    igot = istats.as_dict()
    for name in (
        "batches", "txns", "max_batch", "route_ops", "probe_reads",
        "probe_writes", "verdict_tracks", "verdict_reevals", "verdict_conflicts",
    ):
        if igot[name] != got[name]:
            failures.append(
                f"kernel counter {name} = {igot[name]} with metrics enabled, "
                f"{got[name]} without: instrumentation perturbs the kernel"
            )
    if instrumented_verdict != baseline_verdict:
        failures.append("verdicts differ with stage timing enabled")
    if igot["timed_batches"] != igot["batches"]:
        failures.append(
            f"sample_every=1 timed {igot['timed_batches']} of "
            f"{igot['batches']} batches"
        )
    if len(traces) != igot["batches"] or igot["slow_batches"] != igot["batches"]:
        failures.append(
            f"slow-batch hook fired {len(traces)} times for "
            f"{igot['batches']} batches over the threshold"
        )

    # Gate 7: the shared-memory lane transport must be verdict-identical
    # to the serial sharded executor on the same stream, with the lane
    # path actually exercised (frames flowed, no silent pipe fallback).
    # Deterministic: routing, packing, and verdicts are all exact
    # functions of the history.  Skipped cleanly where POSIX shared
    # memory is unavailable.
    from repro.core.sharded import ShardedAion
    from repro.core.shm import shm_available

    if not shm_available():
        print("gate 7 (shm lanes): skipped — POSIX shared memory unavailable")
    else:
        def _sharded_run(executor):
            sharded = ShardedAion(
                AionConfig(timeout=float("inf")),
                n_shards=2,
                clock=lambda: 0.0,
                executor=executor,
            )
            try:
                for offset in range(0, len(txns), 50):
                    sharded.receive_many(txns[offset : offset + 50])
                return normalize_violations(sharded.finalize()), sharded
            finally:
                sharded.close()

        serial_verdict, _ = _sharded_run("serial")
        shm_verdict, shm_checker = _sharded_run("shm-process")
        if repr(shm_verdict) != repr(serial_verdict):
            failures.append("shm lane verdicts diverge from the serial executor")
        if shm_verdict != baseline_verdict:
            failures.append("shm lane verdicts diverge from plain Aion")
        if shm_checker.lane_frames == 0:
            failures.append("shm run pushed no lane frames: the lanes are dead code")
        if shm_checker.lane_fallbacks != 0:
            failures.append(
                f"{shm_checker.lane_fallbacks} of the shm run's batches fell "
                "back to the pickle pipe on a strict-encodable workload"
            )
    return failures


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def run_all(*, smoke, n_fig12b, repeats):
    sizes = {
        "sorted_map_n": 10_000 if smoke else 50_000,
        "interval_old": 2_000 if smoke else 20_000,
        "interval_recent": 64 if smoke else 256,
        "interval_queries": 200 if smoke else 2_000,
        "ext_keys": 50 if smoke else 200,
        "ext_reads_per_key": 64 if smoke else 256,
        "fig12b_n": n_fig12b,
        "repeats": repeats,
    }
    results = {
        "sorted_map": bench_sorted_map(sizes["sorted_map_n"], repeats),
        "interval_index": bench_interval_index(
            sizes["interval_old"], sizes["interval_recent"],
            sizes["interval_queries"], repeats,
        ),
        "ext_sweep": bench_ext_sweep(
            sizes["ext_keys"], sizes["ext_reads_per_key"], repeats
        ),
        "fig12b": bench_fig12b(sizes["fig12b_n"], repeats),
        "fig12b_instrumented": bench_fig12b(
            sizes["fig12b_n"], repeats, sample_every=16
        ),
    }
    return sizes, results


def record_entry(label, sizes, results):
    if TRAJECTORY_PATH.exists():
        payload = json.loads(TRAJECTORY_PATH.read_text(encoding="utf-8"))
    else:
        payload = {"figure": "hotpath", "trajectory": []}
    payload["trajectory"].append(
        {
            "label": label,
            "recorded": time.strftime("%Y-%m-%d %H:%M:%S"),
            "python": platform.python_version(),
            "sizes": sizes,
            "results": results,
        }
    )
    TRAJECTORY_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="unlabelled", help="trajectory entry label")
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes + deterministic operation-count regression gate",
    )
    parser.add_argument("--n", type=int, default=None, help="fig12b transaction count")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--no-record", action="store_true", help="do not append to BENCH_hotpath.json"
    )
    args = parser.parse_args(argv)

    n_fig12b = args.n if args.n is not None else (2_000 if args.smoke else 20_000)
    sizes, results = run_all(smoke=args.smoke, n_fig12b=n_fig12b, repeats=args.repeats)

    for suite, rows in results.items():
        print(f"[{suite}]")
        for name, value in rows.items():
            print(f"  {name:>24}: {value}")
    if results["fig12b"]["violations"] != 0:
        print("FAIL: fig12b workload is clean but the checker reported violations")
        return 1

    if not args.smoke and not args.no_record:
        record_entry(args.label, sizes, results)
        print(f"recorded trajectory entry {args.label!r} -> {TRAJECTORY_PATH}")

    if args.smoke:
        failures = run_smoke_gate()
        if failures:
            print("OPERATION-COUNT GATE FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("operation-count gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
