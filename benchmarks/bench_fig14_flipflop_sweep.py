"""Fig 14 — flip-flop counts vs delay mean and standard deviation.

Paper claims: the delay *mean* has negligible impact (all transactions
are deferred equally), while a larger *standard deviation* produces more
flip-flops (more out-of-order arrivals).
"""

from repro.bench import cached_default_history, pick, write_result
from repro.core.aion import Aion, AionConfig
from repro.online.clock import SimClock
from repro.online.collector import HistoryCollector
from repro.online.delays import NormalDelay
from repro.online.runner import OnlineRunner


def _flip_pairs(history, mean_ms, std_ms, seed):
    collector = HistoryCollector(
        batch_size=500,
        arrival_tps=100_000,
        delay_model=NormalDelay(mean_ms, std_ms),
        seed=seed,
    )
    schedule = collector.schedule(history)
    clock = SimClock()
    checker = Aion(AionConfig(timeout=5.0), clock=clock)
    OnlineRunner(checker, clock).run_tracking(schedule)
    stats = checker.flipflop_stats
    pairs = sum(stats.flips_per_pair.values())
    txns = len(stats.flipped_tids)
    checker.close()
    return pairs, txns


def _run():
    n = pick(2_000, 10_000, 10_000)
    history = cached_default_history(
        n_sessions=24, n_transactions=n, ops_per_txn=8, n_keys=1000, seed=1414
    )
    mean_rows = []
    for mean in (50, 100, 200, 400):
        pairs, txns = _flip_pairs(history, mean, 10.0, seed=15)
        mean_rows.append({"mu_ms": mean, "(txn,key)_flips": pairs, "txns": txns})
    std_rows = []
    for std in (1, 10, 30, 50):
        pairs, txns = _flip_pairs(history, 100.0, std, seed=16)
        std_rows.append({"sigma_ms": std, "(txn,key)_flips": pairs, "txns": txns})
    return mean_rows, std_rows


def test_fig14_flipflop_sweeps(run_once):
    mean_rows, std_rows = run_once(_run)
    print()
    print(
        write_result(
            "fig14a",
            mean_rows,
            title="Fig 14a: flip-flops vs delay mean N(mu, 10^2)",
            notes="Claim: roughly flat in the mean.",
        )
    )
    print()
    print(
        write_result(
            "fig14b",
            std_rows,
            title="Fig 14b: flip-flops vs delay stddev N(100, sigma^2)",
            notes="Claim: grows with the standard deviation.",
        )
    )
    # Flat in mu: max/min within a factor 2 (loose, matches 'negligible').
    mean_counts = [row["(txn,key)_flips"] for row in mean_rows]
    assert max(mean_counts) <= max(2 * min(mean_counts), min(mean_counts) + 50), mean_counts
    # Growing in sigma: largest sigma strictly above smallest sigma.
    assert std_rows[-1]["(txn,key)_flips"] > std_rows[0]["(txn,key)_flips"], std_rows
