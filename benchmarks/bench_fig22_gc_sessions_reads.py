"""Fig 22 (appendix) — Chronos runtime vs #sessions and read ratio.

Paper claim: runtime is stable across both parameters (they change
neither N nor M), for every GC strategy.
"""

import time

from repro.bench import cached_default_history, pick, write_result
from repro.core.chronos import Chronos, GcMode


def _seconds(history, gc_every):
    checker = Chronos(gc_every=gc_every, gc_mode=GcMode.FULL)
    t0 = time.perf_counter()
    assert checker.check(history).is_valid
    return round(time.perf_counter() - t0, 4)


def _run():
    n = pick(1_500, 20_000, 100_000)
    gc_settings = [(pick(300, 4000, 20_000), "gc-freq"), (None, "gc-inf")]
    session_rows = []
    for sessions in (10, 50, 100, 200):
        history = cached_default_history(
            n_sessions=sessions, n_transactions=n, ops_per_txn=15, n_keys=1000, seed=2222
        )
        row = {"#sessions": sessions}
        for every, label in gc_settings:
            row[label] = _seconds(history, every)
        session_rows.append(row)
    read_rows = []
    for ratio in (0.1, 0.3, 0.5, 0.7, 0.9):
        history = cached_default_history(
            n_sessions=24, n_transactions=n, ops_per_txn=15, n_keys=1000,
            read_ratio=ratio, seed=2223,
        )
        row = {"%reads": ratio}
        for every, label in gc_settings:
            row[label] = _seconds(history, every)
        read_rows.append(row)
    return session_rows, read_rows


def test_fig22_sessions_and_reads(run_once):
    session_rows, read_rows = run_once(_run)
    print()
    print(write_result("fig22a", session_rows, title="Fig 22a: Chronos runtime (s) vs #sessions"))
    print()
    print(write_result("fig22b", read_rows, title="Fig 22b: Chronos runtime (s) vs read ratio"))
    for rows, column in ((session_rows, "gc-inf"), (read_rows, "gc-inf")):
        times = [row[column] for row in rows]
        assert max(times) <= max(min(times) * 3.0, min(times) + 0.25), times
