"""Fig 15 — database throughput with and without history collection.

Paper claim: collecting (and transmitting) the history costs roughly 5%
of database throughput — a minor impact.  Reproduced by running the same
workload against the engine with CDC recording enabled and disabled and
comparing committed transactions per wall-clock second.
"""

import time

from repro.bench import pick, write_result
from repro.db.engine import Database
from repro.workloads.generator import generate_default_history
from repro.workloads.spec import WorkloadSpec


def _db_tps(n_txns, ops_per_txn, collect):
    spec = WorkloadSpec(
        n_sessions=16,
        n_transactions=n_txns,
        ops_per_txn=ops_per_txn,
        n_keys=1000,
        seed=1515,
    )
    database = Database(collect_history=collect)
    database.initialize(spec.keys, 0)
    t0 = time.perf_counter()
    generate_default_history(spec, database=database)
    elapsed = max(time.perf_counter() - t0, 1e-9)
    return n_txns / elapsed


def _run():
    n = pick(2_000, 10_000, 50_000)
    rows = []
    for ops in (5, 15, 30, 50):
        with_collection = _db_tps(n, ops, collect=True)
        without = _db_tps(n, ops, collect=False)
        rows.append(
            {
                "#ops/txn": ops,
                "tps_without": round(without),
                "tps_with": round(with_collection),
                "overhead_%": round(100 * (1 - with_collection / without), 1),
            }
        )
    return rows


def test_fig15_collection_overhead(run_once):
    rows = run_once(_run)
    print()
    print(
        write_result(
            "fig15",
            rows,
            title="Fig 15: DB throughput with/without history collection",
            notes="Claim: collection costs a minor share of throughput (~5% in the paper).",
        )
    )
    for row in rows:
        # Minor overhead: well under half the throughput, typically <20%.
        assert row["overhead_%"] < 50, row
    mean_overhead = sum(row["overhead_%"] for row in rows) / len(rows)
    assert -10 <= mean_overhead <= 35, mean_overhead
