"""Fig 16 — Aion under a hard memory budget.

Paper setup: GC triggers when memory exceeds 700 MB on a 100K-txn
workload; memory then oscillates between ~400 and 700 MB and checking
completes.  Reproduced at laptop scale with a proportionally smaller cap
over the checker's estimated live bytes.
"""

from repro.bench import cached_default_history, format_series, pick, write_result
from repro.core.aion import Aion, AionConfig
from repro.online.clock import SimClock
from repro.online.collector import HistoryCollector
from repro.online.delays import NormalDelay
from repro.online.runner import OnlineRunner


def _run():
    n = pick(3_000, 20_000, 100_000)
    history = cached_default_history(
        n_sessions=24, n_transactions=n, ops_per_txn=8, n_keys=1000, seed=1616
    )
    schedule = HistoryCollector(
        batch_size=500, arrival_tps=10_000, delay_model=NormalDelay(100, 10), seed=17
    ).schedule(history)

    # Establish the uncapped peak, then cap at roughly 60% of it.
    clock = SimClock()
    probe = Aion(AionConfig(timeout=5.0), clock=clock)
    baseline = OnlineRunner(probe, clock, memory_sample_every=max(200, n // 20)).run_capacity(schedule)
    peak = max(size for _, size in baseline.memory_samples)
    probe.close()

    cap = int(peak * 0.6)
    clock = SimClock()
    checker = Aion(AionConfig(timeout=5.0), clock=clock)
    report = OnlineRunner(checker, clock).run_memory_capped(
        schedule, max_bytes=cap, check_every=max(200, n // 40)
    )
    checker.close()
    return {
        "uncapped_peak": peak,
        "cap": cap,
        "samples": report.memory_samples,
        "gc_cycles": report.n_gc_cycles,
        "violations": len(report.result.violations),
        "n": n,
    }


def test_fig16_constrained_memory(run_once):
    outcome = run_once(_run)
    samples = outcome["samples"]
    rows = [
        {
            "metric": "uncapped peak (MiB)",
            "value": round(outcome["uncapped_peak"] / 2**20, 2),
        },
        {"metric": "cap (MiB)", "value": round(outcome["cap"] / 2**20, 2)},
        {
            "metric": "capped peak (MiB)",
            "value": round(max(size for _, size in samples) / 2**20, 2),
        },
        {"metric": "gc cycles", "value": outcome["gc_cycles"]},
        {"metric": "violations", "value": outcome["violations"]},
    ]
    print()
    print(format_series(
        [(t, size / 2**20) for t, size in samples[:12]],
        label="Fig 16 (first samples: virtual seconds, MiB)",
    ))
    print()
    print(
        write_result(
            "fig16",
            rows,
            title="Fig 16: Aion memory under a hard cap",
            notes="Claim: memory oscillates below the cap via periodic GC and "
            "checking completes without false verdicts.",
        )
    )
    assert outcome["violations"] == 0
    assert outcome["gc_cycles"] >= 1
    capped_peak = max(size for _, size in samples)
    # Post-GC samples fall back under the cap (oscillation, not growth).
    assert min(size for _, size in samples[len(samples) // 2:]) < outcome["cap"], samples[-5:]
    # The cap bounds memory up to one check interval of slack.
    assert capped_peak <= outcome["uncapped_peak"] * 1.2
