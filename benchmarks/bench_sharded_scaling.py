#!/usr/bin/env python3
"""Sharded + batched ingestion scaling on the Fig-12 SI workload.

Measures the ingestion frontends directly — wall time to drain the same
checker-bound arrival stream the Fig 12b panel uses:

- ``Aion`` fed one transaction at a time (the baseline ingest loop);
- ``Aion.receive_many`` fed collector-sized batches (amortized clock
  reads, timer-queue advancement, deadline arming, and structure
  bindings);
- ``ShardedAion`` in serial mode at 1/2/4 shards in batched mode;
- (standalone runs) ``ShardedAion`` with the ``process`` pickle-pipe
  executor and the ``shm-process`` shared-memory lane executor at
  2/4/8 shards.

Repetitions are *interleaved* round-robin across the frontends (rather
than run back-to-back per frontend) so slow host drift — CPU frequency,
thermals, page cache — hits every frontend equally, and each row keeps
its best repetition.  Shape claims: batched ingestion beats the
per-transaction loop (its amortizations are pure savings), and every
configuration reports identical verdicts.

Standalone runs append a trajectory row to ``BENCH_sharded.json``::

    PYTHONPATH=src python benchmarks/bench_sharded_scaling.py --label my-change

recording the host core count alongside each row — the multi-core
speedup gate (shm lanes >= 2x the pickle pipes at 4 shards) only
applies where the host actually has cores to scale onto; single-core
hosts record honest parity numbers instead.
"""

import gc as host_gc
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:  # direct `python benchmarks/...` runs
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import cached_default_history, pick, write_result  # noqa: E402
from repro.core.aion import Aion, AionConfig  # noqa: E402
from repro.core.sharded import ShardedAion  # noqa: E402
from repro.core.shm import shm_available  # noqa: E402
from repro.online.collector import HistoryCollector  # noqa: E402
from repro.online.delays import NormalDelay  # noqa: E402

TRAJECTORY_PATH = REPO_ROOT / "BENCH_sharded.json"
BATCH = 500
REPEATS = 5


def _arrival_stream(history, seed=12):
    collector = HistoryCollector(
        batch_size=BATCH, arrival_tps=10_000, delay_model=NormalDelay(100, 10), seed=seed
    )
    return [txn for _, txn in collector.schedule(history)]


def _ingest_once(checker_factory, txns, batch_size):
    host_gc.collect()
    checker = checker_factory()
    t0 = time.perf_counter()
    if batch_size == 1:
        for txn in txns:
            checker.receive(txn)
    else:
        for offset in range(0, len(txns), batch_size):
            checker.receive_many(txns[offset : offset + batch_size])
    elapsed = time.perf_counter() - t0
    violations = len(checker.finalize().violations)
    checker.close()
    return elapsed, violations


def _frontends(include_remote=False):
    aion = lambda: Aion(AionConfig(timeout=float("inf")))
    frontends = [
        ("Aion per-txn", aion, 1),
        ("Aion batched", aion, BATCH),
    ]

    def sharded(n_shards, executor):
        return lambda: ShardedAion(
            AionConfig(timeout=float("inf")), n_shards=n_shards, executor=executor
        )

    for n_shards in (1, 2, 4):
        frontends.append(
            (f"ShardedAion x{n_shards} batched", sharded(n_shards, "serial"), BATCH)
        )
    if include_remote:
        executors = ["process"]
        if shm_available():
            executors.append("shm-process")
        for executor in executors:
            for n_shards in (2, 4, 8):
                frontends.append(
                    (f"ShardedAion x{n_shards} {executor}", sharded(n_shards, executor), BATCH)
                )
    return frontends


def _run_frontends(txns, frontends, repeats=REPEATS):
    best = {label: float("inf") for label, _, _ in frontends}
    violations = {}
    for _ in range(repeats):
        for label, factory, batch_size in frontends:
            elapsed, n_violations = _ingest_once(factory, txns, batch_size)
            best[label] = min(best[label], elapsed)
            violations[label] = n_violations
    return [
        {
            "frontend": label,
            "tps": round(len(txns) / best[label]),
            "wall_s": round(best[label], 3),
            "violations": violations[label],
        }
        for label, _, _ in frontends
    ]


def _run_scaling():
    n = pick(6_000, 20_000, 500_000)
    history = cached_default_history(
        n_sessions=24, n_transactions=n, ops_per_txn=8, n_keys=1000, seed=1213
    )
    return _run_frontends(_arrival_stream(history), _frontends())


def test_sharded_scaling(run_once):
    rows = run_once(_run_scaling)
    print()
    print(
        write_result(
            "sharded_scaling",
            rows,
            title="Sharded + batched ingestion frontend (Fig-12b workload)",
            notes="Claim: receive_many batching beats the per-transaction "
            "loop; all frontends report identical verdicts.",
        )
    )
    by = {row["frontend"]: row for row in rows}
    # Batching amortizes per-arrival overhead: it must be measurably
    # faster than the per-transaction loop on the same stream.
    assert by["Aion batched"]["tps"] > by["Aion per-txn"]["tps"], by
    # Identical verdicts everywhere (the workload is clean).
    verdicts = {row["violations"] for row in rows}
    assert verdicts == {0}, rows
    # The serial sharded coordinator pays command plumbing but must stay
    # within a small constant factor of the plain batched checker.
    assert by["ShardedAion x4 batched"]["tps"] > by["Aion per-txn"]["tps"] * 0.4, by


# ----------------------------------------------------------------------
# Standalone entry: record a BENCH_sharded.json trajectory row
# ----------------------------------------------------------------------

def record_entry(label, sizes, results):
    if TRAJECTORY_PATH.exists():
        payload = json.loads(TRAJECTORY_PATH.read_text(encoding="utf-8"))
    else:
        payload = {"figure": "sharded", "trajectory": []}
    payload["trajectory"].append(
        {
            "label": label,
            "recorded": time.strftime("%Y-%m-%d %H:%M:%S"),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "sizes": sizes,
            "results": results,
        }
    )
    TRAJECTORY_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="unlabelled", help="trajectory entry label")
    parser.add_argument("--n", type=int, default=6_000, help="fig12b transaction count")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--no-record", action="store_true", help="do not append to BENCH_sharded.json"
    )
    args = parser.parse_args(argv)

    history = cached_default_history(
        n_sessions=24, n_transactions=args.n, ops_per_txn=8, n_keys=1000, seed=1213
    )
    txns = _arrival_stream(history)
    rows = _run_frontends(txns, _frontends(include_remote=True), repeats=args.repeats)
    by = {row["frontend"]: row for row in rows}

    for row in rows:
        print(f"{row['frontend']:>28}: {row['tps']:>8,} tps ({row['violations']} violations)")
    if len({row["violations"] for row in rows}) != 1:
        print("FAIL: frontends disagree on verdicts")
        return 1

    cores = os.cpu_count() or 1
    results = {}
    for row in rows:
        key = (
            row["frontend"]
            .replace("ShardedAion ", "sharded_")
            .replace("Aion ", "aion_")
            .replace(" ", "_")
            .replace("-", "_")
        )
        results[key] = {"tps": row["tps"], "violations": row["violations"]}
    if "sharded_x4_shm_process" in results and "sharded_x4_process" in results:
        speedup = round(
            results["sharded_x4_shm_process"]["tps"]
            / results["sharded_x4_process"]["tps"],
            3,
        )
        results["sharded_x4_shm_process"]["vs_process"] = speedup
        # The zero-pickle lanes exist to win on multi-core hosts; on a
        # single-core host both remote modes are bound by total CPU and
        # per-batch signaling, so only honest parity is recordable.
        if cores >= 4 and speedup < 2.0:
            print(
                f"FAIL: shm lanes at 4 shards reached only {speedup}x the "
                f"pickle-pipe executor on a {cores}-core host (gate: 2x)"
            )
            return 1
        if cores < 4:
            print(
                f"note: {cores}-core host — the 2x multi-core gate does not "
                f"apply; recorded shm/process ratio is {speedup}x"
            )

    if not args.no_record:
        sizes = {"fig12b_n": args.n, "batch": BATCH, "repeats": args.repeats}
        record_entry(args.label, sizes, results)
        print(f"recorded trajectory entry {args.label!r} -> {TRAJECTORY_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
