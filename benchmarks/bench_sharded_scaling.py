"""Sharded + batched ingestion scaling on the Fig-12 SI workload.

Measures the ingestion frontends directly — wall time to drain the same
checker-bound arrival stream the Fig 12b panel uses:

- ``Aion`` fed one transaction at a time (the baseline ingest loop);
- ``Aion.receive_many`` fed collector-sized batches (amortized clock
  reads, timer-queue advancement, deadline arming, and structure
  bindings);
- ``ShardedAion`` at 1/2/4 shards in batched mode.

Repetitions are *interleaved* round-robin across the frontends (rather
than run back-to-back per frontend) so slow host drift — CPU frequency,
thermals, page cache — hits every frontend equally, and each row keeps
its best repetition.  Shape claims: batched ingestion beats the
per-transaction loop (its amortizations are pure savings), and every
configuration reports identical verdicts.
"""

import gc as host_gc
import time

from repro.bench import cached_default_history, pick, write_result
from repro.core.aion import Aion, AionConfig
from repro.core.sharded import ShardedAion
from repro.online.collector import HistoryCollector
from repro.online.delays import NormalDelay

BATCH = 500
REPEATS = 5


def _arrival_stream(history, seed=12):
    collector = HistoryCollector(
        batch_size=BATCH, arrival_tps=10_000, delay_model=NormalDelay(100, 10), seed=seed
    )
    return [txn for _, txn in collector.schedule(history)]


def _ingest_once(checker_factory, txns, batch_size):
    host_gc.collect()
    checker = checker_factory()
    t0 = time.perf_counter()
    if batch_size == 1:
        for txn in txns:
            checker.receive(txn)
    else:
        for offset in range(0, len(txns), batch_size):
            checker.receive_many(txns[offset : offset + batch_size])
    elapsed = time.perf_counter() - t0
    violations = len(checker.finalize().violations)
    checker.close()
    return elapsed, violations


def _run_scaling():
    n = pick(6_000, 20_000, 500_000)
    history = cached_default_history(
        n_sessions=24, n_transactions=n, ops_per_txn=8, n_keys=1000, seed=1213
    )
    txns = _arrival_stream(history)
    aion = lambda: Aion(AionConfig(timeout=float("inf")))
    frontends = [
        ("Aion per-txn", aion, 1),
        ("Aion batched", aion, BATCH),
    ]
    for n_shards in (1, 2, 4):
        frontends.append(
            (
                f"ShardedAion x{n_shards} batched",
                lambda n_shards=n_shards: ShardedAion(
                    AionConfig(timeout=float("inf")), n_shards=n_shards
                ),
                BATCH,
            )
        )

    best = {label: float("inf") for label, _, _ in frontends}
    violations = {}
    for _ in range(REPEATS):
        for label, factory, batch_size in frontends:
            elapsed, n_violations = _ingest_once(factory, txns, batch_size)
            best[label] = min(best[label], elapsed)
            violations[label] = n_violations
    return [
        {
            "frontend": label,
            "tps": round(len(txns) / best[label]),
            "wall_s": round(best[label], 3),
            "violations": violations[label],
        }
        for label, _, _ in frontends
    ]


def test_sharded_scaling(run_once):
    rows = run_once(_run_scaling)
    print()
    print(
        write_result(
            "sharded_scaling",
            rows,
            title="Sharded + batched ingestion frontend (Fig-12b workload)",
            notes="Claim: receive_many batching beats the per-transaction "
            "loop; all frontends report identical verdicts.",
        )
    )
    by = {row["frontend"]: row for row in rows}
    # Batching amortizes per-arrival overhead: it must be measurably
    # faster than the per-transaction loop on the same stream.
    assert by["Aion batched"]["tps"] > by["Aion per-txn"]["tps"], by
    # Identical verdicts everywhere (the workload is clean).
    verdicts = {row["violations"] for row in rows}
    assert verdicts == {0}, rows
    # The serial sharded coordinator pays command plumbing but must stay
    # within a small constant factor of the plain batched checker.
    assert by["ShardedAion x4 batched"]["tps"] > by["Aion per-txn"]["tps"] * 0.4, by
