"""Fig 11 — completeness of timestamp-based checking.

The history: T1 writes x=1, T2 writes x=2, T3 reads x=1, committed
strictly sequentially.  Developers expect an SI violation (T3's snapshot
should contain T2's write), and timestamp-based checkers report it;
black-box checkers instead infer the fictitious execution order T1, T3,
T2 and accept.  This is the paper's completeness argument for white-box
checking.
"""

from repro.baselines.elle import ElleKV
from repro.baselines.emme import EmmeSi
from repro.baselines.polysi import PolySi
from repro.baselines.viper import Viper
from repro.bench import write_result
from repro.core.chronos import Chronos
from repro.histories.builder import HistoryBuilder
from repro.histories.ops import read, write


def _fig11_history():
    builder = HistoryBuilder(keys=["x"])
    builder.txn(sid=1, tid=1, start=1, commit=2, ops=[write("x", 1)])
    builder.txn(sid=2, tid=2, start=3, commit=4, ops=[write("x", 2)])
    builder.txn(sid=3, tid=3, start=5, commit=6, ops=[read("x", 1)])
    return builder.build()


def _run():
    history = _fig11_history()
    rows = []
    for name, factory, timestamp_based in [
        ("Chronos", Chronos, True),
        ("Emme-SI", EmmeSi, True),
        ("PolySI", PolySi, False),
        ("Viper", Viper, False),
        ("ElleKV", ElleKV, False),
    ]:
        result = factory().check(history)
        rows.append(
            {
                "checker": name,
                "timestamp_based": timestamp_based,
                "verdict": "violation" if not result.is_valid else "accept",
            }
        )
    return rows


def test_fig11_completeness(run_once):
    rows = run_once(_run)
    print()
    print(
        write_result(
            "fig11",
            rows,
            title="Fig 11: verdicts on the sequential-commit history",
            notes="Claim: timestamp-based checkers report the violation; "
            "black-box checkers accept a fictitious order T1, T3, T2.",
        )
    )
    for row in rows:
        expected = "violation" if row["timestamp_based"] else "accept"
        assert row["verdict"] == expected, row
