"""§V-D — detecting isolation violations.

Two experiments:

1. **Clock skew** (the YugabyteDB v2.17.1.0 bug class): a skewed oracle
   shifts timestamps into the past while the database executes correctly
   in real time; the timestamp-based checkers flag the recorded history
   (including INT violations, as the paper reports).
2. **Injected faults**: every axiom-targeted fault class injected into a
   correct history is detected by Chronos under the matching axiom.
"""

from repro.bench import pick, write_result
from repro.core.chronos import Chronos
from repro.core.violations import Axiom
from repro.db.faults import HistoryFaultInjector, SkewedOracle
from repro.db.oracle import CentralizedOracle
from repro.workloads.generator import generate_default_history
from repro.workloads.spec import WorkloadSpec


def _run_clock_skew():
    rows = []
    n = pick(800, 5_000, 20_000)
    for probability in (0.01, 0.05, 0.15):
        oracle = SkewedOracle(CentralizedOracle(), probability=probability, max_skew=100)
        history = generate_default_history(
            WorkloadSpec(
                n_sessions=10, n_transactions=n, ops_per_txn=10, n_keys=200, seed=1111
            ),
            oracle=oracle,
        )
        result = Chronos().check(history)
        counts = {axiom.value: 0 for axiom in Axiom}
        counts.update({k.value: v for k, v in result.counts().items()})
        rows.append(
            {
                "skew_prob": probability,
                "n_skewed_ts": oracle.n_skewed,
                **counts,
            }
        )
    return rows


def _run_injected():
    n = pick(600, 3_000, 10_000)
    history = generate_default_history(
        WorkloadSpec(n_sessions=10, n_transactions=n, ops_per_txn=10, n_keys=200, seed=1112)
    )
    injector = HistoryFaultInjector(history, seed=99)
    labels = injector.inject_mix(pick(10, 25, 50))
    mutated = injector.build()
    result = Chronos().check(mutated)
    found = {(v.axiom, v.tid) for v in result.violations}
    rows = []
    for label in labels:
        detected = any((label.axiom, tid) in found for tid in label.tids)
        rows.append(
            {
                "axiom": label.axiom.value,
                "tids": ",".join(map(str, label.tids)),
                "key": label.key,
                "detected": detected,
            }
        )
    return rows


def test_secVD_clock_skew(run_once):
    rows = run_once(_run_clock_skew)
    print()
    print(
        write_result(
            "secVD_clock_skew",
            rows,
            title="SecV-D: violations found under oracle clock skew",
            notes="Claim: timestamp skew produces detectable violations, "
            "including INT (the YugabyteDB clock-skew bug class).",
        )
    )
    worst = rows[-1]
    assert worst["n_skewed_ts"] > 0
    total = sum(worst[axiom.value] for axiom in Axiom)
    assert total > 0, rows
    assert any(row["INT"] > 0 for row in rows), rows


def test_secVD_injected_faults(run_once):
    rows = run_once(_run_injected)
    print()
    print(
        write_result(
            "secVD_injected",
            rows,
            title="SecV-D: detection of injected axiom-targeted faults",
        )
    )
    assert rows, "injector produced no faults"
    missed = [row for row in rows if not row["detected"]]
    assert not missed, missed
