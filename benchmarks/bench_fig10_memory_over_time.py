"""Fig 10 — Chronos memory usage over time.

Paper claims: memory peaks during loading, then decreases over the
checking stage as processed transactions are recycled; more frequent GC
gives smaller per-cycle releases; a sawtooth under periodic GC.

Reproduced by sampling the checker's live structure size (retained
transactions + frontier/ongoing state) every N processed transactions,
with ``consume=True`` so processed transactions really are droppable.
"""

from repro.bench import cached_default_history, format_series, pick, write_result
from repro.core.chronos import Chronos, GcMode
from repro.util.sizeof import deep_sizeof


def _sampler(checker):
    return deep_sizeof((checker.retained, checker.frontier, checker.ongoing, checker.int_ext_state))


def _run():
    n = pick(4_000, 20_000, 100_000)
    history = cached_default_history(
        n_sessions=24, n_transactions=n, ops_per_txn=15, n_keys=1000, seed=1010
    )
    intervals = pick([400, 1000, None], [2_000, 5_000, None], [10_000, 20_000, None])
    curves = {}
    for every in intervals:
        label = "gc-inf" if every is None else f"gc-{every}"
        checker = Chronos(
            gc_every=every,
            gc_mode=GcMode.LIGHT,
            memory_sampler=_sampler,
            sample_every=max(100, n // 40),
        )
        result = checker.check_transactions(list(history.transactions), consume=True)
        assert result.is_valid
        curves[label] = checker.report.memory_samples
    return curves


def test_fig10_memory_over_time(run_once):
    curves = run_once(_run)
    print()
    rows = []
    for label, samples in curves.items():
        peak = max(size for _, size in samples)
        end = samples[-1][1]
        rows.append(
            {
                "setting": label,
                "peak_MiB": round(peak / 2**20, 2),
                "end_MiB": round(end / 2**20, 2),
                "samples": len(samples),
            }
        )
        print(format_series(
            [(processed, size / 2**20) for processed, size in samples[:10]],
            label=f"{label} (first 10 samples: processed, MiB)",
        ))
    print()
    print(
        write_result(
            "fig10",
            rows,
            title="Fig 10: Chronos live-structure memory over time",
            notes="Claim: periodic GC caps retained memory (sawtooth); "
            "gc-inf retains every processed transaction.",
        )
    )
    by_label = {row["setting"]: row for row in rows}
    gc_labels = [label for label in by_label if label != "gc-inf"]
    for label in gc_labels:
        # With GC the end-of-run retained size is far below gc-inf's.
        assert by_label[label]["end_MiB"] <= by_label["gc-inf"]["end_MiB"] * 0.8, by_label
    # The most frequent GC has the smallest peak.
    most_frequent = min(
        (label for label in gc_labels), key=lambda lab: int(lab.split("-")[1])
    )
    assert by_label[most_frequent]["peak_MiB"] <= by_label["gc-inf"]["peak_MiB"], by_label
