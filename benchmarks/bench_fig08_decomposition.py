"""Fig 8 — runtime decomposition of Chronos without GC.

Stages: *loading* (parsing the history file from disk), *sorting* (the
timestamp sort) and *checking* (the simulation pass).  Paper claims:
loading dominates, sorting is negligible, loading and checking grow
almost linearly with #txns and #ops/txn.
"""

import time

from repro.bench import cached_default_history, pick, write_result
from repro.core.chronos import Chronos
from repro.histories.serialization import load_history, save_history


def _decompose(history, tmp_path):
    path = tmp_path / "history.jsonl"
    save_history(history, path)
    t0 = time.perf_counter()
    loaded = load_history(path)
    loading = time.perf_counter() - t0
    checker = Chronos()
    result = checker.check(loaded)
    assert result.is_valid
    return {
        "loading": round(loading, 4),
        "sorting": round(checker.report.sort_seconds, 4),
        "checking": round(checker.report.check_seconds, 4),
    }


def _run_txns(tmp_path):
    rows = []
    for n in pick([1_000, 2_000, 4_000], [5_000, 20_000, 100_000], [100_000, 500_000, 1_000_000]):
        history = cached_default_history(
            n_sessions=24, n_transactions=n, ops_per_txn=15, n_keys=1000, seed=808
        )
        rows.append({"#txns": n, **_decompose(history, tmp_path)})
    return rows


def _run_ops(tmp_path):
    rows = []
    n = pick(1_500, 20_000, 100_000)
    for ops in (5, 15, 30, 50):
        history = cached_default_history(
            n_sessions=24, n_transactions=n, ops_per_txn=ops, n_keys=1000, seed=809
        )
        rows.append({"#ops/txn": ops, **_decompose(history, tmp_path)})
    return rows


def test_fig08a_decomposition_vs_txns(run_once, tmp_path):
    rows = run_once(_run_txns, tmp_path)
    print()
    print(
        write_result(
            "fig08a",
            rows,
            title="Fig 8a: Chronos stage times (s) vs #txns (no GC)",
            notes="Claim: loading dominates; sorting negligible; linear growth.",
        )
    )
    for row in rows:
        assert row["sorting"] <= max(row["loading"], row["checking"]), row
    assert rows[-1]["loading"] >= rows[-1]["checking"] * 0.3  # same order


def test_fig08b_decomposition_vs_ops(run_once, tmp_path):
    rows = run_once(_run_ops, tmp_path)
    print()
    print(write_result("fig08b", rows, title="Fig 8b: Chronos stage times (s) vs #ops/txn"))
    assert rows[-1]["checking"] >= rows[0]["checking"], rows
    assert rows[-1]["loading"] >= rows[0]["loading"], rows
