"""Fig 13 — EXT verdict flip-flops and rectify times under N(100, 10²).

Paper claims (with 10K transactions, batches of 500, normal delays):
a sizeable fraction of transactions flip at least once, the vast
majority (99%) flip only once or twice, and over 95% of the transient
false positives/negatives are rectified within 10 ms.
"""

from repro.bench import cached_default_history, pick, write_result
from repro.core.aion import Aion, AionConfig
from repro.online.clock import SimClock
from repro.online.collector import HistoryCollector
from repro.online.delays import NormalDelay
from repro.online.runner import OnlineRunner


def _run():
    n = pick(3_000, 10_000, 10_000)
    history = cached_default_history(
        n_sessions=24, n_transactions=n, ops_per_txn=8, n_keys=1000, seed=1313
    )
    collector = HistoryCollector(
        batch_size=500,
        arrival_tps=100_000,
        delay_model=NormalDelay(100.0, 10.0),
        seed=14,
    )
    schedule = collector.schedule(history)
    clock = SimClock()
    checker = Aion(AionConfig(timeout=5.0), clock=clock)
    report = OnlineRunner(checker, clock).run_tracking(schedule)
    stats = checker.flipflop_stats
    outcome = {
        "flip_histogram": stats.flip_histogram(),
        "rectify_histogram": stats.rectify_histogram(),
        "flipped_txns": len(stats.flipped_tids),
        "n_txns": n,
        "violations": len(report.result.violations),
        "rectify_times": stats.rectify_times,
    }
    checker.close()
    return outcome


def test_fig13_flipflops(run_once):
    outcome = run_once(_run)
    flip_rows = [
        {"flips": bucket, "(txn,key)_count": count}
        for bucket, count in outcome["flip_histogram"].items()
    ]
    rectify_rows = [
        {"rectify_time": bucket, "count": count}
        for bucket, count in outcome["rectify_histogram"].items()
    ]
    print()
    print(write_result("fig13a", flip_rows, title="Fig 13a: flip-flops per (txn, key)"))
    print()
    print(
        write_result(
            "fig13b",
            rectify_rows,
            title="Fig 13b: time to rectify transient EXT verdicts",
            notes=f"flipped txns: {outcome['flipped_txns']} / {outcome['n_txns']}; "
            f"final violations: {outcome['violations']}",
        )
    )
    # Valid history: all flip-flops are transient, none survive timeout.
    assert outcome["violations"] == 0
    # Some flipping must occur under 100 ms +/- 10 ms delays.
    assert outcome["flipped_txns"] > 0
    # The vast majority of pairs flip once or twice.
    histogram = outcome["flip_histogram"]
    total = sum(histogram.values())
    assert total > 0
    assert (histogram["1"] + histogram["2"]) / total >= 0.95
    # >= 95% of transient wrong verdicts rectify within 100 ms (paper:
    # 10 ms on their hardware; the delay spread dominates here).
    times = outcome["rectify_times"]
    fast = sum(1 for t in times if t < 0.1)
    assert fast / max(len(times), 1) >= 0.90, fast / max(len(times), 1)
