"""Fig 4 — runtime of five SI checkers on small key-value histories.

Paper claim: Chronos, ElleKV and Emme-SI significantly outperform the
black-box checkers PolySI and Viper, whose runtime grows super-linearly
with the number of transactions.  The paper's own axis stops at 3 000
transactions; the black-box search is the bottleneck at every scale.
"""

import time

from repro.baselines.elle import ElleKV
from repro.baselines.emme import EmmeSi
from repro.baselines.polysi import PolySi
from repro.baselines.viper import Viper
from repro.bench import cached_default_history, pick, write_result
from repro.core.chronos import Chronos


def _history(n):
    return cached_default_history(
        n_sessions=10,
        n_transactions=n,
        ops_per_txn=8,
        n_keys=max(200, n),  # spread keys so the pair count stays Fig-4 sized
        distribution="uniform",
        seed=404,
    )


def _time(checker_factory, history):
    t0 = time.perf_counter()
    result = checker_factory().check(history)
    return time.perf_counter() - t0, result


def _run():
    sizes = pick([60, 120, 240], [100, 300, 600], [500, 1500, 3000])
    rows = []
    for n in sizes:
        history = _history(n)
        row = {"#txns": n}
        for name, factory in [
            ("PolySI", PolySi),
            ("Viper", Viper),
            ("ElleKV", ElleKV),
            ("Emme-SI", EmmeSi),
            ("Chronos", Chronos),
        ]:
            seconds, result = _time(factory, history)
            row[name] = round(seconds, 4)
            assert result.is_valid, f"{name} false positive on valid history ({n} txns)"
        rows.append(row)
    return rows


def test_fig04_runtime_comparison(run_once):
    rows = run_once(_run)
    print()
    print(
        write_result(
            "fig04",
            rows,
            title="Fig 4: SI checker runtime (s) on key-value histories",
            notes="Claim: black-box checkers (PolySI, Viper) grow super-linearly; "
            "Chronos / ElleKV / Emme-SI stay near-linear and far faster.",
        )
    )

    last = rows[-1]
    # Chronos beats every baseline at the largest size.
    for name in ("PolySI", "Viper", "ElleKV", "Emme-SI"):
        assert last["Chronos"] <= last[name] * 1.5, (name, last)
    # Black-box checkers grow super-linearly: runtime ratio beats the
    # size ratio between the smallest and largest points.
    size_ratio = rows[-1]["#txns"] / rows[0]["#txns"]
    for name in ("PolySI", "Viper"):
        growth = rows[-1][name] / max(rows[0][name], 1e-9)
        assert growth > size_ratio, (name, growth, size_ratio)
