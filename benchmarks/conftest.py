"""Shared configuration for the per-figure benchmarks.

Every benchmark follows the same pattern: run one experiment once (via
``benchmark.pedantic`` — the figures measure sweeps, not microseconds),
print the paper-shaped table, persist it under ``benchmarks/results/``,
and assert the figure's *shape* claims (who wins, how curves scale).
Run with ``pytest benchmarks/ --benchmark-only``; set
``REPRO_BENCH_SCALE=medium`` or ``paper`` for larger axes.
"""

import pytest


def pytest_report_header(config):
    from repro.bench import bench_scale

    return f"repro benchmark scale: {bench_scale()} (REPRO_BENCH_SCALE)"


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark fixture."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
