"""Fig 12 — throughput of online checking over time.

Four panels: (a) Aion-SER with three GC strategies vs Cobra under
fence-frequency/round-size configurations; (b) Aion (SI) with the same
GC strategies; (c)/(d) Aion-SER on RUBiS and Twitter.  The paper's
shape: no-gc > checking-gc > full-gc; every Aion variant sustains far
more than Cobra; SI checking pays more for GC than SER checking.
"""

import gc as host_gc
import time

from repro.baselines.cobra import CobraChecker, CobraConfig
from repro.bench import (
    cached_default_history,
    cached_rubis_history,
    cached_twitter_history,
    pick,
    write_result,
)
from repro.core.aion import Aion, AionConfig
from repro.core.aion_ser import AionSer
from repro.db.engine import IsolationLevel
from repro.online.clock import SimClock
from repro.online.collector import HistoryCollector
from repro.online.delays import NormalDelay
from repro.online.runner import GcPolicy, OnlineRunner


def _schedule(history, seed=12):
    # Arrivals exceed the pure-Python checkers' capacity (so the run is
    # checker-bound, as in the paper) while the backlog stays well under
    # the paper's 5 s EXT timeout.
    collector = HistoryCollector(
        batch_size=500, arrival_tps=10_000, delay_model=NormalDelay(100, 10), seed=seed
    )
    return collector.schedule(history)


def _aion_row(label, checker_factory, schedule, policy, threshold):
    host_gc.collect()
    clock = SimClock()
    checker = checker_factory(clock)
    runner = OnlineRunner(checker, clock, gc_policy=policy, gc_threshold=threshold)
    report = runner.run_capacity(schedule)
    checker.close()
    return {
        "checker": label,
        "tps": round(report.overall_tps),
        "gc_cycles": report.n_gc_cycles,
        "violations": len(report.result.violations),
    }


def _cobra_row(label, history, fence_every, round_size):
    # Cobra consumes its own collected stream in client (commit) order —
    # its fence transactions live inside the workload.
    checker = CobraChecker(CobraConfig(fence_every=fence_every, round_size=round_size))
    stream = history.by_commit_ts()
    t0 = time.perf_counter()
    processed = 0
    for txn in stream:
        checker.receive(txn)
        processed += 1
        if checker.stopped:
            break
    checker.finalize()
    elapsed = max(time.perf_counter() - t0, 1e-9)
    return {
        "checker": label,
        "tps": round(processed / elapsed),
        "gc_cycles": checker.rounds_checked,
        "violations": len(checker.result.violations),
    }


def _run_ser_default():
    n = pick(4_000, 20_000, 500_000)
    history = cached_default_history(
        n_sessions=24, n_transactions=n, ops_per_txn=8, n_keys=1000,
        isolation=IsolationLevel.SER, read_ratio=0.9, seed=1212,
    )
    schedule = _schedule(history)
    threshold = max(1000, n // 5)
    rows = [
        _aion_row("Aion-SER-no-gc", lambda c: AionSer(AionConfig(timeout=5.0), clock=c),
                  schedule, GcPolicy.NO_GC, 10**9),
        _aion_row("Aion-SER-checking-gc", lambda c: AionSer(AionConfig(timeout=5.0), clock=c),
                  schedule, GcPolicy.CHECKING_GC, threshold),
        _aion_row("Aion-SER-full-gc", lambda c: AionSer(AionConfig(timeout=5.0), clock=c),
                  schedule, GcPolicy.FULL_GC, threshold),
        _cobra_row("Cobra-F20-R2k4", history, 20, 2400),
        _cobra_row("Cobra-F1-R2k4", history, 1, 2400),
        _cobra_row("Cobra-F20-R4k8", history, 20, 4800),
    ]
    return rows


def _run_si_default():
    n = pick(4_000, 20_000, 500_000)
    history = cached_default_history(
        n_sessions=24, n_transactions=n, ops_per_txn=8, n_keys=1000, seed=1213
    )
    schedule = _schedule(history)
    threshold = max(1000, n // 5)
    return [
        _aion_row("Aion-no-gc", lambda c: Aion(AionConfig(timeout=5.0), clock=c),
                  schedule, GcPolicy.NO_GC, 10**9),
        _aion_row("Aion-checking-gc", lambda c: Aion(AionConfig(timeout=5.0), clock=c),
                  schedule, GcPolicy.CHECKING_GC, threshold),
        _aion_row("Aion-full-gc", lambda c: Aion(AionConfig(timeout=5.0), clock=c),
                  schedule, GcPolicy.FULL_GC, threshold),
    ]


def _run_ser_apps():
    n = pick(3_000, 15_000, 100_000)
    rows = []
    for dataset, history in [
        ("RUBiS", cached_rubis_history(n, seed=1214, isolation=IsolationLevel.SER)),
        ("Twitter", cached_twitter_history(n, seed=1215, isolation=IsolationLevel.SER)),
    ]:
        schedule = _schedule(history, seed=13)
        threshold = max(1000, n // 5)
        for policy, label in [
            (GcPolicy.NO_GC, "no-gc"),
            (GcPolicy.CHECKING_GC, "checking-gc"),
            (GcPolicy.FULL_GC, "full-gc"),
        ]:
            row = _aion_row(
                f"Aion-SER-{label}",
                lambda c: AionSer(AionConfig(timeout=5.0), clock=c),
                schedule,
                policy,
                threshold if policy is not GcPolicy.NO_GC else 10**9,
            )
            row["dataset"] = dataset
            rows.append(row)
    return rows


def test_fig12a_ser_default(run_once):
    rows = run_once(_run_ser_default)
    print()
    print(
        write_result(
            "fig12a",
            rows,
            title="Fig 12a: online SER checking throughput (default workload)",
            notes="Claim: Aion-SER-no-gc fastest; GC costs throughput; "
            "every Aion variant beats every Cobra configuration.",
        )
    )
    by = {row["checker"]: row["tps"] for row in rows}
    assert by["Aion-SER-no-gc"] >= by["Aion-SER-checking-gc"] * 0.7
    assert by["Aion-SER-checking-gc"] >= by["Aion-SER-full-gc"] * 0.5
    best_cobra = max(tps for name, tps in by.items() if name.startswith("Cobra"))
    assert by["Aion-SER-no-gc"] > best_cobra, by
    assert by["Aion-SER-checking-gc"] >= best_cobra * 0.85, by
    for row in rows:
        assert row["violations"] == 0, row


def test_fig12b_si_default(run_once):
    rows = run_once(_run_si_default)
    print()
    print(
        write_result(
            "fig12b",
            rows,
            title="Fig 12b: online SI checking throughput (default workload)",
            notes="Claim: same ordering as SER; GC has a larger impact for SI.",
        )
    )
    by = {row["checker"]: row["tps"] for row in rows}
    assert by["Aion-no-gc"] >= by["Aion-checking-gc"] * 0.7
    assert by["Aion-checking-gc"] >= by["Aion-full-gc"] * 0.5
    for row in rows:
        assert row["violations"] == 0, row


def test_fig12cd_ser_apps(run_once):
    rows = run_once(_run_ser_apps)
    print()
    print(
        write_result(
            "fig12cd",
            rows,
            title="Fig 12c/d: online SER checking throughput (RUBiS / Twitter)",
            notes="Claim: same GC ordering across datasets.",
        )
    )
    for dataset in ("RUBiS", "Twitter"):
        subset = {row["checker"]: row["tps"] for row in rows if row["dataset"] == dataset}
        assert subset["Aion-SER-no-gc"] >= subset["Aion-SER-full-gc"] * 0.5, subset
        for row in rows:
            assert row["violations"] == 0, row
