"""Fig 5 — Chronos vs Emme-SI/ElleKV (key-value) and ElleList (lists).

Paper claims: Chronos checks a 100K-transaction key-value history in
about 2 s, roughly 10.5× faster than ElleKV; Emme-SI is far slower
because it builds the whole start-ordered serialization graph.  On list
histories Chronos is about 7.4× faster than ElleList.
"""

import time

from repro.baselines.elle import ElleKV, ElleList
from repro.baselines.emme import EmmeSi
from repro.bench import cached_default_history, cached_list_history, pick, write_result
from repro.core.chronos import Chronos


def _run_kv():
    sizes = pick([1_000, 2_500, 5_000], [5_000, 20_000, 50_000], [20_000, 50_000, 100_000])
    rows = []
    for n in sizes:
        history = cached_default_history(
            n_sessions=24, n_transactions=n, ops_per_txn=15, n_keys=1000, seed=505
        )
        row = {"#txns": n}
        for name, factory in [("ElleKV", ElleKV), ("Emme-SI", EmmeSi), ("Chronos", Chronos)]:
            t0 = time.perf_counter()
            result = factory().check(history)
            row[name] = round(time.perf_counter() - t0, 4)
            assert result.is_valid, f"{name} false positive at {n} txns"
        rows.append(row)
    return rows


def _run_list():
    sizes = pick([500, 1_000, 2_000], [2_000, 5_000, 10_000], [2_000, 5_000, 10_000])
    rows = []
    for n in sizes:
        history = cached_list_history(
            n_sessions=12, n_transactions=n, ops_per_txn=8, n_keys=200, seed=506
        )
        row = {"#txns": n}
        for name, factory in [("ElleList", ElleList), ("Chronos", Chronos)]:
            t0 = time.perf_counter()
            result = factory().check(history)
            row[name] = round(time.perf_counter() - t0, 4)
            assert result.is_valid, f"{name} false positive at {n} txns (list)"
        rows.append(row)
    return rows


def test_fig05a_kv_runtime(run_once):
    rows = run_once(_run_kv)
    print()
    print(
        write_result(
            "fig05a",
            rows,
            title="Fig 5a: runtime (s) on key-value histories",
            notes="Claim: Chronos fastest; Emme-SI pays for the whole-history graph.",
        )
    )
    last = rows[-1]
    assert last["Chronos"] <= last["ElleKV"], last
    assert last["Chronos"] <= last["Emme-SI"], last


def test_fig05b_list_runtime(run_once):
    rows = run_once(_run_list)
    print()
    print(
        write_result(
            "fig05b",
            rows,
            title="Fig 5b: runtime (s) on list histories",
            notes="Claim: Chronos beats ElleList; both near-linear.",
        )
    )
    last = rows[-1]
    assert last["Chronos"] <= last["ElleList"], last
