"""Fig 24 (appendix) — offline checking across application workloads.

Paper claim: the offline checker handles TPC-C (large composite-key
space) as easily as RUBiS and Twitter, because it maintains a single
global frontier instead of a versioned one; loading dominates.
"""

import time

from repro.bench import (
    cached_rubis_history,
    cached_tpcc_history,
    cached_twitter_history,
    pick,
    write_result,
)
from repro.core.chronos import Chronos
from repro.histories.serialization import load_history, save_history
from repro.histories.stats import HistoryStats


def _run(tmp_path):
    n = pick(2_000, 10_000, 100_000)
    datasets = [
        ("TPCC", cached_tpcc_history(n, seed=2424)),
        ("RUBiS", cached_rubis_history(n, seed=2425)),
        ("Twitter", cached_twitter_history(n, seed=2426)),
    ]
    rows = []
    for name, history in datasets:
        path = tmp_path / f"{name}.jsonl"
        save_history(history, path)
        t0 = time.perf_counter()
        loaded = load_history(path)
        loading = time.perf_counter() - t0
        checker = Chronos()
        result = checker.check(loaded)
        assert result.is_valid, (name, result.summary())
        stats = HistoryStats.of(history)
        rows.append(
            {
                "workload": name,
                "#keys": stats.n_keys,
                "loading": round(loading, 4),
                "sorting": round(checker.report.sort_seconds, 4),
                "checking": round(checker.report.check_seconds, 4),
            }
        )
    return rows


def test_fig24_offline_workloads(run_once, tmp_path):
    rows = run_once(_run, tmp_path)
    print()
    print(
        write_result(
            "fig24",
            rows,
            title="Fig 24: Chronos stage times (s) per application workload",
            notes="Claim: offline checking shrugs off TPC-C's huge composite "
            "keyspace; a single global frontier suffices.",
        )
    )
    tpcc = next(row for row in rows if row["workload"] == "TPCC")
    others = [row for row in rows if row["workload"] != "TPCC"]
    # TPC-C has by far the most keys yet comparable checking time.
    assert tpcc["#keys"] > max(row["#keys"] for row in others)
    assert tpcc["checking"] <= max(row["checking"] for row in others) * 4 + 0.2
