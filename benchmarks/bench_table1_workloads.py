"""Table I — the default workload parameter space.

Materializes the generator at the Table I default point and at one value
per parameter axis, verifying the produced histories actually carry the
requested characteristics (sessions, ops/txn, read ratio, key bound) —
the precondition for every other figure.
"""

from repro.bench import format_table, pick, write_result
from repro.core.chronos import Chronos
from repro.histories.stats import HistoryStats
from repro.workloads.generator import generate_default_history
from repro.workloads.spec import PARAMETER_GRID, WorkloadSpec


def _run():
    base_txns = pick(1_000, 5_000, 100_000)
    rows = []
    variations = [
        {},
        {"n_sessions": 10},
        {"n_sessions": 200},
        {"ops_per_txn": 5},
        {"read_ratio": 0.9},
        {"n_keys": 200},
        {"distribution": "uniform"},
        {"distribution": "hotspot"},
    ]
    for overrides in variations:
        spec = WorkloadSpec(
            n_transactions=base_txns,
            n_sessions=min(24, overrides.get("n_sessions", 24)),
            **{k: v for k, v in overrides.items() if k != "n_sessions"},
        )
        history = generate_default_history(spec)
        stats = HistoryStats.of(history)
        verdict = Chronos().check(history)
        rows.append(
            {
                "variation": ",".join(f"{k}={v}" for k, v in overrides.items()) or "default",
                "#txns": stats.n_transactions,
                "#sess": stats.n_sessions,
                "ops/txn": round(stats.ops_per_txn, 2),
                "%reads": round(stats.read_ratio, 3),
                "#keys<=": stats.n_keys,
                "valid_SI": verdict.is_valid,
            }
        )
    return rows


def test_table1_parameter_space(run_once):
    rows = run_once(_run)
    print()
    print(write_result("table1", rows, title="Table I: default workload grid"))

    # The grid values are exactly the paper's.
    assert PARAMETER_GRID["n_transactions"] == (5_000, 100_000, 200_000, 500_000, 1_000_000)
    assert PARAMETER_GRID["distribution"] == ("uniform", "zipfian", "hotspot")

    for row in rows:
        assert row["valid_SI"], f"engine produced an invalid history: {row}"
        assert abs(row["ops/txn"] - (5 if "ops_per_txn=5" in row["variation"] else 15)) < 0.01
    default = rows[0]
    assert 0.40 <= default["%reads"] <= 0.60
