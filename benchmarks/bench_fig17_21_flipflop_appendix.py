"""Figs 17–21 (appendix) — flip-flop statistics across delay settings.

- Fig 17: flip-flop histograms for mu in {50..500} at sigma=10;
- Fig 18: flip-flop histograms for sigma in {1..50} at mu=100;
- Fig 19: number of unique transactions involved, per mu and per sigma;
- Fig 20/21: rectify-time histograms across the same grids.

Paper claims: 20–40% of transactions flip, 99% flip once or twice, and
95% of transient wrong verdicts rectify quickly; sigma drives all of it,
mu barely matters.
"""

from repro.bench import cached_default_history, pick, write_result
from repro.core.aion import Aion, AionConfig
from repro.online.clock import SimClock
from repro.online.collector import HistoryCollector
from repro.online.delays import NormalDelay
from repro.online.runner import OnlineRunner


def _stats_for(history, mean_ms, std_ms, seed):
    schedule = HistoryCollector(
        batch_size=500,
        arrival_tps=100_000,
        delay_model=NormalDelay(mean_ms, std_ms),
        seed=seed,
    ).schedule(history)
    clock = SimClock()
    checker = Aion(AionConfig(timeout=5.0), clock=clock)
    OnlineRunner(checker, clock).run_tracking(schedule)
    stats = checker.flipflop_stats
    flips = stats.flip_histogram()
    rectify = stats.rectify_histogram()
    summary = {
        "flips=1": flips["1"],
        "flips=2": flips["2"],
        "flips=3": flips["3"],
        "flips=4+": flips["4+"],
        "txns": len(stats.flipped_tids),
        "rectify<10ms": rectify["0-1ms"] + rectify["1-2ms"] + rectify["2-10ms"],
        "rectify>=10ms": rectify["10-99ms"] + rectify["100-999ms"] + rectify["1000+ms"],
    }
    checker.close()
    return summary


def _run():
    n = pick(2_000, 10_000, 10_000)
    history = cached_default_history(
        n_sessions=24, n_transactions=n, ops_per_txn=8, n_keys=1000, seed=1717
    )
    mu_rows = []
    for mu in (50, 100, 200, 300, 500):
        mu_rows.append({"mu_ms": mu, **_stats_for(history, mu, 10.0, seed=18)})
    sigma_rows = []
    for sigma in (1, 10, 20, 40, 50):
        sigma_rows.append({"sigma_ms": sigma, **_stats_for(history, 100.0, sigma, seed=19)})
    return mu_rows, sigma_rows


def test_fig17_21_appendix_flipflops(run_once):
    mu_rows, sigma_rows = run_once(_run)
    print()
    print(
        write_result(
            "fig17_19_20",
            mu_rows,
            title="Figs 17/19a/20: flip-flop + rectify stats vs delay mean",
            notes="Claim: flat in the mean.",
        )
    )
    print()
    print(
        write_result(
            "fig18_19_21",
            sigma_rows,
            title="Figs 18/19b/21: flip-flop + rectify stats vs delay stddev",
            notes="Claim: grows with the stddev; most pairs flip once or twice.",
        )
    )
    # Fig 19b: unique transactions involved grow with sigma.
    assert sigma_rows[-1]["txns"] > sigma_rows[0]["txns"], sigma_rows
    # 99%-style claim: pairs with 1-2 flips dominate at the default point.
    default = next(row for row in mu_rows if row["mu_ms"] == 100)
    total_pairs = default["flips=1"] + default["flips=2"] + default["flips=3"] + default["flips=4+"]
    if total_pairs:
        assert (default["flips=1"] + default["flips=2"]) / total_pairs >= 0.9
    # Fig 20/21: at the paper's default N(100, 10^2) point, most
    # transient verdicts rectify fast; wider sigmas shift the histogram
    # right (reported, not asserted — the paper observes the same drift).
    default_sigma = next(row for row in sigma_rows if row["sigma_ms"] == 10)
    total = default_sigma["rectify<10ms"] + default_sigma["rectify>=10ms"]
    if total > 20:
        assert default_sigma["rectify<10ms"] / total >= 0.5, default_sigma
