"""Fig 7 — maximum memory usage of the five SI checkers.

Paper claims: Chronos's peak memory grows linearly with #txns and stays
lowest; PolySI/Viper/Emme-SI need far more for their polygraph / SSG
structures, ElleKV for its dependency graphs.  Memory is measured here
as the real allocation peak of the checking run (tracemalloc).
"""

from repro.baselines.elle import ElleKV
from repro.baselines.emme import EmmeSi
from repro.baselines.polysi import PolySi
from repro.baselines.viper import Viper
from repro.bench import cached_default_history, peak_alloc_mb, pick, write_result
from repro.core.chronos import Chronos


def _run_txn_sweep():
    rows = []
    for n in pick([500, 1_000, 2_000], [5_000, 20_000, 50_000], [50_000, 200_000, 1_000_000]):
        history = cached_default_history(
            n_sessions=16, n_transactions=n, ops_per_txn=15, n_keys=1000, seed=707
        )
        row = {"#txns": n}
        for name, factory in [("ElleKV", ElleKV), ("Emme-SI", EmmeSi), ("Chronos", Chronos)]:
            _, peak = peak_alloc_mb(lambda f=factory: f().check(history))
            row[name] = round(peak, 2)
        rows.append(row)
    return rows


def _run_blackbox():
    # Black-box checkers only at a small size (their search explodes);
    # Chronos measured on the same history for the direct comparison.
    n = pick(100, 200, 500)
    small = cached_default_history(
        n_sessions=8,
        n_transactions=n,
        ops_per_txn=8,
        n_keys=500,
        distribution="uniform",
        seed=708,
    )
    row = {"#txns": n}
    for name, factory in [("PolySI", PolySi), ("Viper", Viper), ("Chronos", Chronos)]:
        _, peak = peak_alloc_mb(lambda f=factory: f().check(small))
        row[name] = round(peak, 2)
    return [row]


def _run_dist_sweep():
    rows = []
    n = pick(1_500, 20_000, 100_000)
    for dist in ("uniform", "zipfian", "hotspot"):
        history = cached_default_history(
            n_sessions=16, n_transactions=n, ops_per_txn=15, n_keys=1000,
            distribution=dist, seed=709,
        )
        row = {"distribution": dist}
        for name, factory in [("ElleKV", ElleKV), ("Emme-SI", EmmeSi), ("Chronos", Chronos)]:
            _, peak = peak_alloc_mb(lambda f=factory: f().check(history))
            row[name] = round(peak, 2)
        rows.append(row)
    return rows


def test_fig07a_memory_vs_txns(run_once):
    rows = run_once(_run_txn_sweep)
    print()
    print(
        write_result(
            "fig07a",
            rows,
            title="Fig 7a: peak checking memory (MiB) vs #txns",
            notes="Claim: Chronos lowest; graph/SSG-based checkers higher.",
        )
    )
    last = rows[-1]
    assert last["Chronos"] <= last["Emme-SI"], last
    assert last["Chronos"] <= last["ElleKV"] * 1.2, last
    # Linear-ish growth for Chronos.
    ratio = rows[-1]["Chronos"] / max(rows[0]["Chronos"], 1e-6)
    size_ratio = rows[-1]["#txns"] / rows[0]["#txns"]
    assert ratio < size_ratio * 3, (ratio, size_ratio)

    blackbox = _run_blackbox()
    print()
    print(
        write_result(
            "fig07a_blackbox",
            blackbox,
            title="Fig 7a (inset): black-box checker memory (MiB), small history",
            notes="Claim: the polygraph/search structures dwarf Chronos.",
        )
    )
    row = blackbox[0]
    assert row["Chronos"] <= row["PolySI"], row
    assert row["Chronos"] <= row["Viper"], row


def test_fig07b_memory_vs_distribution(run_once):
    rows = run_once(_run_dist_sweep)
    print()
    print(
        write_result(
            "fig07b",
            rows,
            title="Fig 7b: peak checking memory (MiB) vs key distribution",
            notes="Claim: stable across distributions.",
        )
    )
    peaks = [row["Chronos"] for row in rows]
    assert max(peaks) <= max(min(peaks) * 2.0, min(peaks) + 16), peaks
