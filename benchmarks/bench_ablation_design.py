"""Ablations of the design choices DESIGN.md calls out (beyond the paper).

1. **Step-③ re-check optimizations** (Algorithm 3): re-checking only the
   affected snapshot range vs. naively re-evaluating every pending read
   of each written key.  The paper asserts the optimizations matter; the
   ablation quantifies it on a hot-key (zipfian) workload where pending
   reads pile up on popular keys.
2. **GC recency margin**: the watermark slack that keeps slightly-late
   arrivals from touching spilled segments.  margin 0 forces a reload
   storm under asynchrony; a modest margin restores throughput.

Both ablations also assert verdict equality — an optimization that
changed verdicts would be a bug, not a trade-off.
"""

from repro.bench import cached_default_history, pick, write_result
from repro.core.aion import Aion, AionConfig
from repro.core.chronos import Chronos
from repro.core.reference import normalize_violations
from repro.online.clock import SimClock
from repro.online.collector import HistoryCollector
from repro.online.delays import NormalDelay
from repro.online.runner import GcPolicy, OnlineRunner


def _schedule(history, seed=42):
    return HistoryCollector(
        batch_size=500, arrival_tps=10_000, delay_model=NormalDelay(100, 10), seed=seed
    ).schedule(history)


def _run_recheck_ablation():
    n = pick(3_000, 15_000, 100_000)
    history = cached_default_history(
        n_sessions=24, n_transactions=n, ops_per_txn=8, n_keys=200,
        distribution="zipfian", seed=4242,
    )
    schedule = _schedule(history)
    offline = normalize_violations(Chronos().check(history))
    rows = []
    for optimized in (True, False):
        clock = SimClock()
        checker = Aion(
            AionConfig(timeout=float("inf"), optimized_recheck=optimized), clock=clock
        )
        report = OnlineRunner(checker, clock).run_capacity(schedule)
        verdicts = normalize_violations(report.result)
        rows.append(
            {
                "recheck": "optimized (paper)" if optimized else "naive (ablation)",
                "tps": round(report.overall_tps),
                "verdicts_match_offline": verdicts == offline,
            }
        )
        checker.close()
    return rows


def _run_gc_margin_ablation():
    n = pick(3_000, 15_000, 100_000)
    history = cached_default_history(
        n_sessions=24, n_transactions=n, ops_per_txn=8, n_keys=1000, seed=4243
    )
    schedule = _schedule(history, seed=43)
    offline = normalize_violations(Chronos().check(history))
    rows = []
    threshold = max(500, n // 10)
    for margin in (1, threshold // 4, threshold // 2):
        clock = SimClock()
        checker = Aion(AionConfig(timeout=float("inf")), clock=clock)
        runner = OnlineRunner(
            checker, clock, gc_policy=GcPolicy.CHECKING_GC, gc_threshold=threshold
        )
        # Patch the margin the runner passes to suggest_gc_ts.
        original = checker.suggest_gc_ts
        checker.suggest_gc_ts = lambda keep_recent=margin, _o=original: _o(keep_recent)  # type: ignore[method-assign]
        report = runner.run_capacity(schedule)
        store = checker.spill_store
        rows.append(
            {
                "keep_recent": margin,
                "tps": round(report.overall_tps),
                "gc_cycles": report.n_gc_cycles,
                "reloads": store.reload_count if store is not None else 0,
                "verdicts_match_offline": normalize_violations(report.result) == offline,
            }
        )
        checker.close()
    return rows


def test_ablation_step3_recheck(run_once):
    rows = run_once(_run_recheck_ablation)
    print()
    print(
        write_result(
            "ablation_recheck",
            rows,
            title="Ablation: Algorithm 3 step-③ re-check optimizations",
            notes="Claim: range-bounded re-checking is faster than naive "
            "per-key re-evaluation, with identical verdicts.",
        )
    )
    by = {row["recheck"]: row for row in rows}
    assert all(row["verdicts_match_offline"] for row in rows), rows
    assert by["optimized (paper)"]["tps"] >= by["naive (ablation)"]["tps"], by


def test_ablation_gc_margin(run_once):
    rows = run_once(_run_gc_margin_ablation)
    print()
    print(
        write_result(
            "ablation_gc_margin",
            rows,
            title="Ablation: GC recency margin vs reload storms",
            notes="Claim: a zero margin forces spilled-segment reloads under "
            "asynchrony; a modest margin avoids them. Verdicts unchanged.",
        )
    )
    assert all(row["verdicts_match_offline"] for row in rows), rows
    # The tightest margin reloads at least as much as the widest.
    assert rows[0]["reloads"] >= rows[-1]["reloads"], rows
