"""Fig 6 — Chronos runtime under GC strategies × workload parameters.

Paper claims: runtime grows almost linearly with #txns (a) and #ops/txn
(b), stays stable across #keys (c) and key distribution (d); more
frequent GC makes checking slower (gc-10k > gc-20k > gc-50k > gc-∞).
"""

import time

from repro.bench import cached_default_history, pick, write_result
from repro.core.chronos import Chronos, GcMode


def _check_seconds(history, gc_every):
    checker = Chronos(gc_every=gc_every, gc_mode=GcMode.FULL)
    t0 = time.perf_counter()
    result = checker.check(history)
    assert result.is_valid
    return time.perf_counter() - t0


_GC_LABELS = {None: "gc-inf"}


def _gc_settings():
    # Scaled analogue of gc-10k / 20k / 50k / ∞.
    small, mid, large = pick((200, 500, 2000), (2000, 5000, 20000), (10_000, 20_000, 50_000))
    return [(small, f"gc-{small}"), (mid, f"gc-{mid}"), (large, f"gc-{large}"), (None, "gc-inf")]


def _sweep_txns():
    rows = []
    for n in pick([1_000, 2_000, 4_000], [10_000, 50_000, 100_000], [100_000, 500_000, 1_000_000]):
        history = cached_default_history(
            n_sessions=24, n_transactions=n, ops_per_txn=15, n_keys=1000, seed=606
        )
        row = {"#txns": n}
        for every, label in _gc_settings():
            row[label] = round(_check_seconds(history, every), 4)
        rows.append(row)
    return rows


def _sweep_ops():
    rows = []
    n = pick(1_500, 20_000, 100_000)
    for ops in (5, 15, 30):
        history = cached_default_history(
            n_sessions=24, n_transactions=n, ops_per_txn=ops, n_keys=1000, seed=607
        )
        row = {"#ops/txn": ops}
        for every, label in _gc_settings():
            row[label] = round(_check_seconds(history, every), 4)
        rows.append(row)
    return rows


def _sweep_keys():
    rows = []
    n = pick(1_500, 20_000, 100_000)
    for keys in (200, 1000, 5000):
        history = cached_default_history(
            n_sessions=24, n_transactions=n, ops_per_txn=15, n_keys=keys, seed=608
        )
        row = {"#keys": keys}
        for every, label in _gc_settings():
            row[label] = round(_check_seconds(history, every), 4)
        rows.append(row)
    return rows


def _sweep_dist():
    rows = []
    n = pick(1_500, 20_000, 100_000)
    for dist in ("uniform", "zipfian", "hotspot"):
        history = cached_default_history(
            n_sessions=24, n_transactions=n, ops_per_txn=15, n_keys=1000,
            distribution=dist, seed=609,
        )
        row = {"distribution": dist}
        for every, label in _gc_settings():
            row[label] = round(_check_seconds(history, every), 4)
        rows.append(row)
    return rows


def test_fig06a_txns(run_once):
    rows = run_once(_sweep_txns)
    print()
    print(write_result("fig06a", rows, title="Fig 6a: Chronos runtime (s) vs #txns × GC"))
    inf_label = "gc-inf"
    # Near-linear growth without GC: ratio within 4x of size ratio.
    size_ratio = rows[-1]["#txns"] / rows[0]["#txns"]
    growth = rows[-1][inf_label] / max(rows[0][inf_label], 1e-9)
    assert growth < size_ratio * 4, (growth, size_ratio)
    # More frequent GC is never faster than gc-inf at the largest size.
    frequent_label = [label for _, label in _gc_settings()][0]
    assert rows[-1][frequent_label] >= rows[-1][inf_label] * 0.8


def test_fig06b_ops(run_once):
    rows = run_once(_sweep_ops)
    print()
    print(write_result("fig06b", rows, title="Fig 6b: Chronos runtime (s) vs #ops/txn × GC"))
    assert rows[-1]["gc-inf"] > rows[0]["gc-inf"] * 0.9  # grows with ops


def test_fig06c_keys(run_once):
    rows = run_once(_sweep_keys)
    print()
    print(write_result("fig06c", rows, title="Fig 6c: Chronos runtime (s) vs #keys × GC"))
    times = [row["gc-inf"] for row in rows]
    assert max(times) <= max(min(times) * 3.0, min(times) + 0.25), times  # stable


def test_fig06d_distribution(run_once):
    rows = run_once(_sweep_dist)
    print()
    print(write_result("fig06d", rows, title="Fig 6d: Chronos runtime (s) vs distribution × GC"))
    times = [row["gc-inf"] for row in rows]
    assert max(times) <= max(min(times) * 3.0, min(times) + 0.25), times  # stable
