"""Fig 25 (appendix) — online SER checking of non-conforming histories.

The paper feeds an *SI-level* history (500K transactions) to Aion-SER:
it detects all 11 839 violations at a speed comparable to violation-free
checking, the count is validated against Chronos-SER, and Cobra — by
contrast — terminates at the first violation.
"""

from repro.baselines.cobra import CobraChecker, CobraConfig
from repro.bench import cached_default_history, pick, write_result
from repro.core.aion_ser import AionSer
from repro.core.aion import AionConfig
from repro.core.chronos_ser import ChronosSer
from repro.core.reference import normalize_violations
from repro.online.clock import SimClock
from repro.online.collector import HistoryCollector
from repro.online.delays import NormalDelay
from repro.online.runner import GcPolicy, OnlineRunner


def _run():
    n = pick(4_000, 20_000, 500_000)
    # An SI history checked for SER: plenty of stale-snapshot reads.
    history = cached_default_history(
        n_sessions=24, n_transactions=n, ops_per_txn=8, n_keys=1000, seed=2525
    )
    schedule = HistoryCollector(
        batch_size=500, arrival_tps=10_000, delay_model=NormalDelay(100, 10), seed=21
    ).schedule(history)

    clock = SimClock()
    checker = AionSer(AionConfig(timeout=float("inf")), clock=clock)
    report = OnlineRunner(
        checker, clock, gc_policy=GcPolicy.CHECKING_GC, gc_threshold=max(1000, n // 5)
    ).run_capacity(schedule)
    aion_violations = normalize_violations(report.result)
    checker.close()

    offline = normalize_violations(ChronosSer().check(history))

    cobra = CobraChecker(CobraConfig(fence_every=20, round_size=2400))
    processed_by_cobra = 0
    for _, txn in schedule:
        cobra.receive(txn)
        processed_by_cobra += 1
        if cobra.stopped:
            break
    cobra.finalize()

    return {
        "n": n,
        "aion_tps": round(report.overall_tps),
        "aion_violations": len(aion_violations),
        "chronos_ser_violations": len(offline),
        "match": aion_violations == offline,
        "cobra_processed": processed_by_cobra,
        "cobra_stopped": cobra.stopped,
    }


def test_fig25_nonconforming(run_once):
    outcome = run_once(_run)
    rows = [
        {"metric": "history size", "value": outcome["n"]},
        {"metric": "Aion-SER throughput (TPS)", "value": outcome["aion_tps"]},
        {"metric": "Aion-SER violations", "value": outcome["aion_violations"]},
        {"metric": "Chronos-SER violations", "value": outcome["chronos_ser_violations"]},
        {"metric": "violation sets identical", "value": outcome["match"]},
        {"metric": "Cobra processed before stop", "value": outcome["cobra_processed"]},
        {"metric": "Cobra stopped at first violation", "value": outcome["cobra_stopped"]},
    ]
    print()
    print(
        write_result(
            "fig25",
            rows,
            title="Fig 25: online SER checking of an SI (non-conforming) history",
            notes="Claim: Aion-SER reports every violation and keeps going; "
            "the count matches Chronos-SER; Cobra stops at the first.",
        )
    )
    assert outcome["aion_violations"] > 0
    assert outcome["match"], "Aion-SER and Chronos-SER verdicts diverge"
    assert outcome["cobra_stopped"]
    assert outcome["cobra_processed"] < outcome["n"]
