"""Timestamp oracles (Appendix A/B of the paper).

Two timestamping regimes exist in production systems:

- **Centralized** (TiDB's Placement Driver, Dgraph's Zero group): one
  oracle hands out strictly increasing timestamps, so for any
  transactions Ti, Tj: Ti commits before Tj starts ⇒
  ``Ti.commit_ts < Tj.start_ts``, and commit order equals commit-ts
  order — the guarantees Definitions 5/6 rely on.
- **Decentralized** (YugabyteDB): each node runs a hybrid logical clock
  (HLC) on a loosely synchronized physical clock.  Timestamps remain
  unique (node id in the low bits) and per-node monotonic, but
  cross-node skew can reorder them relative to real time — the origin of
  the clock-skew anomalies §V-D reproduces.

All oracles deal in integer timestamps; the simulated physical clock is
an integer microsecond counter advanced by the workload driver.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol, Sequence

__all__ = [
    "TimestampOracle",
    "CentralizedOracle",
    "HybridLogicalClock",
    "DecentralizedOracle",
]


class TimestampOracle(Protocol):
    """Anything that can issue a timestamp for a node."""

    def next_ts(self, node_id: int = 0) -> int:
        """Return a fresh timestamp, unique across the whole system."""
        ...


class CentralizedOracle:
    """Strictly increasing, globally unique timestamps.

    ``start`` is the first timestamp to hand out (the initial transaction
    conventionally owns timestamp 0, so generation starts at 1).
    """

    def __init__(self, start: int = 1) -> None:
        self._next = start
        self.issued = 0

    def next_ts(self, node_id: int = 0) -> int:
        ts = self._next
        self._next += 1
        self.issued += 1
        return ts

    def peek(self) -> int:
        """The timestamp the next request would receive."""
        return self._next


class HybridLogicalClock:
    """One node's HLC: ``ts = physical * capacity + logical``.

    ``physical_clock`` returns the node's (possibly skewed) physical time.
    The logical component breaks ties when the physical clock stalls, and
    :meth:`observe` implements the HLC merge rule so causally related
    events stay ordered even across skewed nodes.
    """

    def __init__(
        self,
        node_id: int,
        physical_clock: Callable[[], int],
        *,
        n_nodes: int = 1,
        logical_bits: int = 12,
    ) -> None:
        self.node_id = node_id
        self._clock = physical_clock
        self._n_nodes = max(1, n_nodes)
        self._capacity = 1 << logical_bits
        self._last_physical = 0
        self._logical = 0

    def next_ts(self, node_id: int = 0) -> int:
        physical = self._clock()
        if physical > self._last_physical:
            self._last_physical = physical
            self._logical = 0
        else:
            self._logical += 1
        # Uniqueness across nodes: interleave the node id below the
        # logical component.
        hlc = (self._last_physical * self._capacity + self._logical)
        return hlc * self._n_nodes + self.node_id

    def observe(self, ts: int) -> None:
        """Merge a timestamp received from another node (HLC update rule)."""
        hlc = ts // self._n_nodes
        physical, logical = divmod(hlc, self._capacity)
        if physical > self._last_physical:
            self._last_physical = physical
            self._logical = logical + 1
        elif physical == self._last_physical and logical >= self._logical:
            self._logical = logical + 1


class DecentralizedOracle:
    """A cluster of per-node HLCs over one simulated physical clock.

    ``skews[i]`` is added to node ``i``'s view of the shared physical
    clock, modelling loose NTP-style synchronization.  With all skews
    zero the oracle behaves like a centralized one (up to interleaving);
    with non-zero skews it reproduces YugabyteDB-style timestamp
    inversions that the checkers must flag.
    """

    def __init__(
        self,
        n_nodes: int,
        *,
        skews: Optional[Sequence[int]] = None,
        logical_bits: int = 12,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.n_nodes = n_nodes
        self._time = 1
        skews = list(skews) if skews is not None else [0] * n_nodes
        if len(skews) != n_nodes:
            raise ValueError("skews must have one entry per node")
        self._skews = skews
        self._clocks: List[HybridLogicalClock] = [
            HybridLogicalClock(
                node,
                self._make_node_clock(node),
                n_nodes=n_nodes,
                logical_bits=logical_bits,
            )
            for node in range(n_nodes)
        ]
        self._issued: Dict[int, int] = {}

    def _make_node_clock(self, node: int) -> Callable[[], int]:
        def clock() -> int:
            return max(1, self._time + self._skews[node])

        return clock

    def tick(self, amount: int = 1) -> None:
        """Advance the shared physical clock (driver-controlled)."""
        self._time += amount

    def next_ts(self, node_id: int = 0) -> int:
        ts = self._clocks[node_id % self.n_nodes].next_ts()
        # Guarantee global uniqueness even under pathological skew.
        while ts in self._issued:
            ts = self._clocks[node_id % self.n_nodes].next_ts()
        self._issued[ts] = node_id
        return ts

    def gossip(self) -> None:
        """Exchange clocks between all nodes (bounds HLC divergence)."""
        latest = max(
            clock._last_physical * clock._capacity + clock._logical
            for clock in self._clocks
        )
        for clock in self._clocks:
            clock.observe(latest * self.n_nodes)
