"""Multi-version storage with snapshot reads.

The ``log`` of Algorithm 1, organized per key for efficient snapshot
lookups: each key holds its committed versions ordered by commit
timestamp, and a snapshot read returns the greatest version at or below
the reader's start timestamp (Definition 6).  List values are stored as
tuples and appended immutably, matching the comma-separated TEXT encoding
the paper uses on SQL databases (§IV-B).
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["MultiVersionStore", "Version"]

Version = Tuple[int, Any]  # (commit_ts, value)


class MultiVersionStore:
    """Per-key version chains ordered by commit timestamp."""

    def __init__(self) -> None:
        self._chains: Dict[str, List[Version]] = {}
        self.n_versions = 0

    def install(self, key: str, commit_ts: int, value: Any) -> None:
        """Install a committed version.

        Versions usually arrive in increasing commit-ts order (commits are
        atomic in the simulation); out-of-order installs — possible under
        a skewed decentralized oracle — are inserted at the right position
        so snapshot reads stay consistent with timestamp order.
        """
        chain = self._chains.get(key)
        if chain is None:
            chain = self._chains[key] = []
        if chain and chain[-1][0] > commit_ts:
            bisect.insort(chain, (commit_ts, value), key=lambda v: v[0])
        else:
            chain.append((commit_ts, value))
        self.n_versions += 1

    def read_at(self, key: str, ts: int) -> Optional[Version]:
        """Greatest version with ``commit_ts <= ts``; None if unborn."""
        chain = self._chains.get(key)
        if not chain:
            return None
        index = bisect.bisect_right(chain, ts, key=lambda v: v[0])
        if index == 0:
            return None
        return chain[index - 1]

    def latest(self, key: str) -> Optional[Version]:
        """The newest committed version of ``key``."""
        chain = self._chains.get(key)
        if not chain:
            return None
        return chain[-1]

    def versions_in(self, key: str, low_ts: int, high_ts: int) -> List[Version]:
        """Versions with ``low_ts < commit_ts <= high_ts``.

        This is the first-committer-wins conflict probe: a writer with
        lifetime ``[start_ts, commit_ts]`` conflicts iff some version of
        one of its keys committed inside that window.
        """
        chain = self._chains.get(key)
        if not chain:
            return []
        lo = bisect.bisect_right(chain, low_ts, key=lambda v: v[0])
        hi = bisect.bisect_right(chain, high_ts, key=lambda v: v[0])
        return chain[lo:hi]

    def keys(self) -> List[str]:
        return list(self._chains.keys())

    def __contains__(self, key: str) -> bool:
        return key in self._chains

    def __len__(self) -> int:
        return len(self._chains)
