"""The transactional engine: operational semantics of SI (Algorithm 1).

The engine executes client transactions exactly as the paper's high-level
SI implementation does:

- ``begin``   — request a start timestamp from the oracle (line 1:2);
- ``write``   — buffer the write (line 1:5);
- ``read``    — serve from the write buffer, else from the committed
  snapshot as of ``start_ts`` (line 1:8);
- ``commit``  — request a commit timestamp (line 1:10), abort if a
  concurrent transaction already committed a write to any key in the
  write set (first-committer-wins, line 1:11), else install the buffered
  writes (line 1:13).

In ``IsolationLevel.SER`` mode the engine additionally validates the read
set at commit: if any key read from the snapshot has a newer committed
version inside the transaction's lifetime the transaction aborts.  Reads
are then effectively as-of-commit, writes are atomic at commit, so every
committed execution is equivalent to the serial commit-timestamp order —
which is precisely what Chronos-SER/Aion-SER verify.

Transactions run interleaved (the workload driver advances sessions one
operation at a time), so lifetimes genuinely overlap and first-committer-
wins aborts actually occur.  Only committed transactions reach the CDC
log (§IV-B: "we consider only committed transactions for verification").
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.db.cdc import CdcRecord, ChangeLog
from repro.db.oracle import CentralizedOracle, TimestampOracle
from repro.db.storage import MultiVersionStore
from repro.histories.model import INIT_SID, INIT_TID, INIT_TS, Operation, OpKind

__all__ = ["Database", "IsolationLevel", "Session", "TxnHandle", "TransactionAborted"]


class IsolationLevel(enum.Enum):
    """The isolation level the engine enforces."""

    SI = "si"
    SER = "ser"


class TransactionAborted(Exception):
    """Raised at commit when conflict detection rejects the transaction."""

    def __init__(self, tid: int, reason: str) -> None:
        super().__init__(f"transaction {tid} aborted: {reason}")
        self.tid = tid
        self.reason = reason


class TxnHandle:
    """An in-flight transaction (client side of Algorithm 1)."""

    __slots__ = (
        "tid",
        "sid",
        "node",
        "start_ts",
        "buffer",
        "ops",
        "read_keys",
        "write_keys",
        "active",
    )

    def __init__(self, tid: int, sid: int, node: int, start_ts: int) -> None:
        self.tid = tid
        self.sid = sid
        self.node = node
        self.start_ts = start_ts
        self.buffer: Dict[str, Any] = {}
        self.ops: List[Operation] = []
        self.read_keys: Set[str] = set()
        self.write_keys: Set[str] = set()
        self.active = True


class Session:
    """A client session; transactions of a session never overlap.

    Sessions are pinned to a node (relevant under the decentralized
    oracle) and assign sequence numbers to *committed* transactions only,
    so the recorded history has contiguous ``sno`` per session.
    """

    def __init__(self, database: "Database", sid: int, node: int) -> None:
        self._database = database
        self.sid = sid
        self.node = node
        self.next_sno = 0
        self.committed = 0
        self.aborted = 0

    def begin(self) -> TxnHandle:
        return self._database.begin(self)

    def __repr__(self) -> str:
        return f"Session(sid={self.sid}, node={self.node}, committed={self.committed})"


class Database:
    """A single-process simulated MVCC database.

    Parameters
    ----------
    oracle:
        Timestamp oracle; defaults to a fresh :class:`CentralizedOracle`.
    isolation:
        ``SI`` (Algorithm 1) or ``SER`` (adds read-set validation).
    collect_history:
        When False the CDC log is not populated — the configuration used
        to measure the history-collection overhead of Fig 15.
    """

    def __init__(
        self,
        oracle: Optional[TimestampOracle] = None,
        *,
        isolation: IsolationLevel = IsolationLevel.SI,
        collect_history: bool = True,
    ) -> None:
        self.oracle: TimestampOracle = oracle if oracle is not None else CentralizedOracle()
        self.isolation = isolation
        self.collect_history = collect_history
        self.store = MultiVersionStore()
        self.cdc = ChangeLog()
        self._next_tid = INIT_TID + 1
        self._next_sid = INIT_SID + 1
        self.n_commits = 0
        self.n_aborts = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def initialize(self, keys: Any, value: Any = 0) -> None:
        """Install the initial transaction ⊥T writing ``value`` to ``keys``.

        ⊥T owns tid/sid/timestamp 0 and precedes everything (§II-B).
        """
        ops = []
        for key in keys:
            self.store.install(key, INIT_TS, value)
            ops.append(Operation(OpKind.WRITE, key, value))
        if self.collect_history:
            self.cdc.emit(
                CdcRecord(
                    tid=INIT_TID,
                    sid=INIT_SID,
                    sno=0,
                    start_ts=INIT_TS,
                    commit_ts=INIT_TS,
                    ops=tuple(ops),
                )
            )

    def session(self, node: Optional[int] = None) -> Session:
        """Open a new client session, optionally pinned to a node."""
        sid = self._next_sid
        self._next_sid += 1
        n_nodes = getattr(self.oracle, "n_nodes", 1)
        return Session(self, sid, node if node is not None else sid % n_nodes)

    # ------------------------------------------------------------------
    # Transaction lifecycle (Algorithm 1)
    # ------------------------------------------------------------------

    def begin(self, session: Session) -> TxnHandle:
        tid = self._next_tid
        self._next_tid += 1
        start_ts = self.oracle.next_ts(session.node)
        return TxnHandle(tid, session.sid, session.node, start_ts)

    def read(self, txn: TxnHandle, key: str) -> Any:
        """Read a register key (buffer first, else snapshot)."""
        self._require_active(txn)
        if key in txn.buffer:
            value = txn.buffer[key]
        else:
            version = self.store.read_at(key, txn.start_ts)
            value = version[1] if version is not None else None
            txn.read_keys.add(key)
        txn.ops.append(Operation(OpKind.READ, key, value))
        return value

    def write(self, txn: TxnHandle, key: str, value: Any) -> None:
        """Buffer a register write."""
        self._require_active(txn)
        txn.buffer[key] = value
        txn.write_keys.add(key)
        txn.ops.append(Operation(OpKind.WRITE, key, value))

    def append(self, txn: TxnHandle, key: str, element: Any) -> None:
        """Append to a list key (read-modify-write on the snapshot)."""
        self._require_active(txn)
        if key in txn.buffer:
            base = txn.buffer[key]
        else:
            version = self.store.read_at(key, txn.start_ts)
            base = version[1] if version is not None else ()
        if not isinstance(base, tuple):
            base = (base,)
        txn.buffer[key] = base + (element,)
        txn.write_keys.add(key)
        txn.ops.append(Operation(OpKind.APPEND, key, element))

    def read_list(self, txn: TxnHandle, key: str) -> Tuple[Any, ...]:
        """Read a list key in full."""
        self._require_active(txn)
        if key in txn.buffer:
            value = txn.buffer[key]
        else:
            version = self.store.read_at(key, txn.start_ts)
            value = version[1] if version is not None else ()
            txn.read_keys.add(key)
        if not isinstance(value, tuple):
            value = (value,)
        txn.ops.append(Operation(OpKind.READ_LIST, key, value))
        return value

    def commit(self, txn: TxnHandle, session: Session) -> int:
        """Attempt to commit; returns the commit timestamp.

        Raises :class:`TransactionAborted` when first-committer-wins (or,
        in SER mode, read validation) rejects the transaction.
        """
        self._require_active(txn)
        txn.active = False

        if not txn.write_keys:
            # Read-only: no conflict possible; commit at the snapshot
            # (Eq. 1 allows commit_ts == start_ts).
            commit_ts = txn.start_ts
            self._record(txn, session, commit_ts)
            return commit_ts

        commit_ts = self.oracle.next_ts(session.node)
        for key in txn.write_keys:
            lo, hi = sorted((txn.start_ts, commit_ts))
            if self.store.versions_in(key, lo, hi):
                self.n_aborts += 1
                session.aborted += 1
                raise TransactionAborted(txn.tid, f"write-write conflict on {key!r}")
        if self.isolation is IsolationLevel.SER:
            for key in txn.read_keys:
                lo, hi = sorted((txn.start_ts, commit_ts))
                if self.store.versions_in(key, lo, hi):
                    self.n_aborts += 1
                    session.aborted += 1
                    raise TransactionAborted(txn.tid, f"read validation failed on {key!r}")

        for key, value in txn.buffer.items():
            self.store.install(key, commit_ts, value)
        self._record(txn, session, commit_ts)
        return commit_ts

    def abort(self, txn: TxnHandle, session: Session) -> None:
        """Client-initiated abort; the transaction leaves no trace."""
        if txn.active:
            txn.active = False
            self.n_aborts += 1
            session.aborted += 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _record(self, txn: TxnHandle, session: Session, commit_ts: int) -> None:
        self.n_commits += 1
        session.committed += 1
        sno = session.next_sno
        session.next_sno += 1
        if self.collect_history:
            self.cdc.emit(
                CdcRecord(
                    tid=txn.tid,
                    sid=txn.sid,
                    sno=sno,
                    start_ts=txn.start_ts,
                    commit_ts=commit_ts,
                    ops=tuple(txn.ops),
                )
            )

    @staticmethod
    def _require_active(txn: TxnHandle) -> None:
        if not txn.active:
            raise RuntimeError(f"transaction {txn.tid} is no longer active")
