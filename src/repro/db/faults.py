"""Fault injection for the violation-detection experiments (§V-D).

Two levels of fault are provided:

- **Engine-level**: :class:`SkewedOracle` wraps a timestamp oracle and
  occasionally shifts issued timestamps into the past, reproducing the
  clock-skew bug class the paper found in YugabyteDB v2.17.1.0 — the
  database still *executes* correctly in real time, but the recorded
  timestamps no longer justify the observed values, which the
  timestamp-based checkers flag (and black-box checkers may not).
- **History-level**: :class:`HistoryFaultInjector` mutates a correct
  history in targeted ways, one axiom per fault, returning ground-truth
  :class:`FaultLabel` records so tests and benchmarks can assert that
  each injected fault class is detected by the matching axiom.
- **Stream-level**: :class:`LiveFaultInjector` applies the same
  axiom-targeted mutations to transaction batches *in flight* between a
  live engine's CDC feed and the checker daemon — the chaos campaign's
  ground truth (see :mod:`repro.chaos`).

History-level injection first rescales all timestamps by a constant
factor, opening integer gaps so timestamps can be perturbed without
colliding; rescaling preserves order and therefore every verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import List, Optional, Tuple

from repro.core.violations import Axiom
from repro.db.oracle import TimestampOracle
from repro.histories.model import History, INIT_TID, Operation, OpKind, Transaction

__all__ = ["SkewedOracle", "FaultLabel", "HistoryFaultInjector", "LiveFaultInjector"]


class SkewedOracle:
    """Wraps an oracle; with probability ``p`` shifts a timestamp back.

    Inner timestamps are multiplied by ``stride`` so the timeline has
    free slots, then a skewed timestamp lands ``1..max_skew`` inner ticks
    in the past (re-drawn upward on collision).  Timestamps stay unique
    but lose monotonicity, breaking the guarantee Definitions 5/6 rely
    on — the database still executes correctly in real time, so the
    recorded history no longer justifies the observed values.
    """

    def __init__(
        self,
        inner: TimestampOracle,
        *,
        probability: float = 0.05,
        max_skew: int = 50,
        stride: int = 16,
        rng: Optional[Random] = None,
    ) -> None:
        if stride < 2:
            raise ValueError("stride must be >= 2 to leave room for skew")
        self._inner = inner
        self._probability = probability
        self._max_skew = max_skew
        self._stride = stride
        self._rng = rng if rng is not None else Random(0xC10C)
        self._issued: set[int] = set()
        self.n_skewed = 0

    @property
    def probability(self) -> float:
        """Per-timestamp skew probability — writable, so a chaos
        schedule can switch skew on for a burst window and back off for
        clean windows on the same oracle."""
        return self._probability

    @probability.setter
    def probability(self, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {value!r}")
        self._probability = value

    def next_ts(self, node_id: int = 0) -> int:
        ts = self._inner.next_ts(node_id) * self._stride
        if self._rng.random() < self._probability:
            skew = self._rng.randint(1, self._max_skew) * self._stride
            candidate = max(1, ts - skew)
            while candidate in self._issued:
                candidate += 1
            if candidate != ts:
                self.n_skewed += 1
            ts = candidate
        self._issued.add(ts)
        return ts


@dataclass(frozen=True)
class FaultLabel:
    """Ground truth for one injected fault."""

    axiom: Axiom
    tids: Tuple[int, ...]
    key: str = ""

    def describe(self) -> str:
        return f"injected {self.axiom.value} fault on txns {self.tids} key={self.key!r}"


class HistoryFaultInjector:
    """Injects labelled, axiom-targeted faults into a correct history."""

    #: Gap opened between consecutive timestamps by rescaling.
    SCALE = 1000

    def __init__(self, history: History, *, seed: int = 0xFA17) -> None:
        self._rng = Random(seed)
        self._txns: List[Transaction] = [
            _rescale(txn, self.SCALE) for txn in history.transactions
        ]
        self.labels: List[FaultLabel] = []

    # ------------------------------------------------------------------

    def build(self) -> History:
        """The mutated history with all requested faults applied."""
        return History(self._txns)

    def inject_ext(self) -> Optional[FaultLabel]:
        """Corrupt one external read so it cannot match any frontier."""
        candidates = [
            i
            for i, txn in enumerate(self._txns)
            if txn.tid != INIT_TID and txn.external_reads
        ]
        if not candidates:
            return None
        index = self._rng.choice(candidates)
        txn = self._txns[index]
        key = self._rng.choice(sorted(txn.external_reads))
        new_ops = []
        corrupted = False
        for op in txn.ops:
            if not corrupted and op.kind is OpKind.READ and op.key == key:
                new_ops.append(Operation(OpKind.READ, key, _poison(op.value)))
                corrupted = True
            elif not corrupted and op.kind is OpKind.READ_LIST and op.key == key:
                new_ops.append(Operation(OpKind.READ_LIST, key, op.value + (_poison(0),)))
                corrupted = True
            else:
                new_ops.append(op)
        if not corrupted:
            return None
        self._txns[index] = _replace_ops(txn, new_ops)
        return self._label(Axiom.EXT, (txn.tid,), key)

    def inject_int(self) -> Optional[FaultLabel]:
        """Append an internal read that contradicts the txn's own write."""
        candidates = [
            i for i, txn in enumerate(self._txns) if txn.tid != INIT_TID and txn.last_writes
        ]
        if not candidates:
            return None
        index = self._rng.choice(candidates)
        txn = self._txns[index]
        key = self._rng.choice(sorted(txn.last_writes))
        final = txn.last_writes[key]
        bad_read_kind = OpKind.READ_LIST if isinstance(final, tuple) else OpKind.READ
        bad_value: object = _poison(0) if isinstance(final, tuple) else _poison(final)
        if bad_read_kind is OpKind.READ_LIST:
            bad_value = (bad_value,)
        new_ops = list(txn.ops) + [Operation(bad_read_kind, key, bad_value)]
        self._txns[index] = _replace_ops(txn, new_ops)
        return self._label(Axiom.INT, (txn.tid,), key)

    def inject_session(self) -> Optional[FaultLabel]:
        """Swap the sequence numbers of two adjacent txns in a session."""
        by_sid: dict[int, List[int]] = {}
        for i, txn in enumerate(self._txns):
            if txn.tid != INIT_TID:
                by_sid.setdefault(txn.sid, []).append(i)
        eligible = [ids for ids in by_sid.values() if len(ids) >= 2]
        if not eligible:
            return None
        ids = self._rng.choice(eligible)
        pos = self._rng.randrange(len(ids) - 1)
        i, j = ids[pos], ids[pos + 1]
        a, b = self._txns[i], self._txns[j]
        self._txns[i] = _replace_sno(a, b.sno)
        self._txns[j] = _replace_sno(b, a.sno)
        return self._label(Axiom.SESSION, (a.tid, b.tid))

    def inject_noconflict(self) -> Optional[FaultLabel]:
        """Make two sequential writers of one key temporally overlap."""
        last_writer: dict[str, int] = {}
        pairs: List[Tuple[int, int, str]] = []
        order = sorted(
            range(len(self._txns)), key=lambda i: self._txns[i].commit_ts
        )
        for i in order:
            txn = self._txns[i]
            if txn.tid == INIT_TID:
                continue
            for key in txn.write_keys:
                if key in last_writer:
                    pairs.append((last_writer[key], i, key))
                last_writer[key] = i
        if not pairs:
            return None
        i, j, key = self._rng.choice(pairs)
        earlier, later = self._txns[i], self._txns[j]
        # Pull the later writer's start just below the earlier's commit;
        # the opened SCALE gaps guarantee a fresh unique timestamp.
        new_start = earlier.commit_ts - 1
        if new_start <= 0 or new_start >= later.commit_ts:
            return None
        self._txns[j] = Transaction(
            tid=later.tid,
            sid=later.sid,
            sno=later.sno,
            ops=later.ops,
            start_ts=new_start,
            commit_ts=later.commit_ts,
        )
        return self._label(Axiom.NOCONFLICT, (earlier.tid, later.tid), key)

    def inject_ts_order(self) -> Optional[FaultLabel]:
        """Swap one writer's start and commit timestamps (Eq. 1)."""
        candidates = [
            i
            for i, txn in enumerate(self._txns)
            if txn.tid != INIT_TID and txn.start_ts < txn.commit_ts
        ]
        if not candidates:
            return None
        index = self._rng.choice(candidates)
        txn = self._txns[index]
        self._txns[index] = Transaction(
            tid=txn.tid,
            sid=txn.sid,
            sno=txn.sno,
            ops=txn.ops,
            start_ts=txn.commit_ts,
            commit_ts=txn.start_ts,
        )
        return self._label(Axiom.TS_ORDER, (txn.tid,))

    def inject_mix(self, n_faults: int) -> List[FaultLabel]:
        """Inject ``n_faults`` faults cycling through all axiom classes."""
        injectors = [
            self.inject_ext,
            self.inject_int,
            self.inject_session,
            self.inject_noconflict,
            self.inject_ts_order,
        ]
        applied: List[FaultLabel] = []
        attempts = 0
        while len(applied) < n_faults and attempts < n_faults * 10:
            injector = injectors[attempts % len(injectors)]
            label = injector()
            if label is not None:
                applied.append(label)
            attempts += 1
        return applied

    # ------------------------------------------------------------------

    def _label(self, axiom: Axiom, tids: Tuple[int, ...], key: str = "") -> FaultLabel:
        label = FaultLabel(axiom, tids, key)
        self.labels.append(label)
        return label


class LiveFaultInjector:
    """Streaming sibling of :class:`HistoryFaultInjector`.

    Mutates transaction *batches in flight* between the engine's CDC
    feed and the wire, so a chaos campaign can corrupt a live stream the
    daemon is already checking.  Unlike the offline injector there is no
    timestamp rescaling pass — the campaign's oracle already strides its
    timeline (see :class:`SkewedOracle`), leaving the integer gaps the
    ``noconflict`` and ``ts_order`` mutations need.

    Every successful injection returns a ground-truth
    :class:`FaultLabel` (also appended to :attr:`labels`); ``None``
    means the batch offered no eligible target and nothing was touched.
    Call :meth:`observe` with each batch *after* injection so the
    cross-batch last-writer map matches what the daemon actually saw.
    """

    #: Injectable fault classes, in the cycling order of schedules.
    CLASSES = ("ext", "int", "session", "noconflict", "ts_order")

    def __init__(self, *, seed: int = 0xFA17) -> None:
        self._rng = Random(seed)
        self.labels: List[FaultLabel] = []
        #: key -> (commit_ts, tid) of the latest observed writer.
        self._last_commit: dict[str, Tuple[int, int]] = {}

    def observe(self, txns: List[Transaction]) -> None:
        """Fold a (post-injection) batch into the last-writer map."""
        for txn in txns:
            for key in txn.write_keys:
                seen = self._last_commit.get(key)
                if seen is None or txn.commit_ts > seen[0]:
                    self._last_commit[key] = (txn.commit_ts, txn.tid)

    def inject(self, kind: str, batch: List[Transaction]) -> Optional[FaultLabel]:
        """Apply one fault of ``kind`` (see :data:`CLASSES`) to ``batch``."""
        if kind not in self.CLASSES:
            raise ValueError(f"unknown live fault class {kind!r}")
        return getattr(self, f"inject_{kind}")(batch)

    def inject_ext(self, batch: List[Transaction]) -> Optional[FaultLabel]:
        """Corrupt one external read so no frontier can justify it."""
        candidates = [
            i
            for i, txn in enumerate(batch)
            if txn.tid != INIT_TID and txn.external_reads
        ]
        if not candidates:
            return None
        index = self._rng.choice(candidates)
        txn = batch[index]
        key = self._rng.choice(sorted(txn.external_reads))
        new_ops = []
        corrupted = False
        for op in txn.ops:
            if not corrupted and op.kind is OpKind.READ and op.key == key:
                new_ops.append(Operation(OpKind.READ, key, _poison(op.value)))
                corrupted = True
            elif not corrupted and op.kind is OpKind.READ_LIST and op.key == key:
                new_ops.append(Operation(OpKind.READ_LIST, key, op.value + (_poison(0),)))
                corrupted = True
            else:
                new_ops.append(op)
        if not corrupted:
            return None
        batch[index] = _replace_ops(txn, new_ops)
        return self._label(Axiom.EXT, (txn.tid,), key)

    def inject_int(self, batch: List[Transaction]) -> Optional[FaultLabel]:
        """Append an internal read contradicting the txn's own write."""
        candidates = [
            i for i, txn in enumerate(batch) if txn.tid != INIT_TID and txn.last_writes
        ]
        if not candidates:
            return None
        index = self._rng.choice(candidates)
        txn = batch[index]
        key = self._rng.choice(sorted(txn.last_writes))
        final = txn.last_writes[key]
        bad_read_kind = OpKind.READ_LIST if isinstance(final, tuple) else OpKind.READ
        bad_value: object = _poison(0) if isinstance(final, tuple) else _poison(final)
        if bad_read_kind is OpKind.READ_LIST:
            bad_value = (bad_value,)
        batch[index] = _replace_ops(txn, list(txn.ops) + [Operation(bad_read_kind, key, bad_value)])
        return self._label(Axiom.INT, (txn.tid,), key)

    def inject_session(self, batch: List[Transaction]) -> Optional[FaultLabel]:
        """Swap sequence numbers of two same-session txns in the batch."""
        by_sid: dict[int, List[int]] = {}
        for i, txn in enumerate(batch):
            if txn.tid != INIT_TID:
                by_sid.setdefault(txn.sid, []).append(i)
        eligible = [ids for ids in by_sid.values() if len(ids) >= 2]
        if not eligible:
            return None
        ids = self._rng.choice(eligible)
        pos = self._rng.randrange(len(ids) - 1)
        i, j = ids[pos], ids[pos + 1]
        a, b = batch[i], batch[j]
        batch[i] = _replace_sno(a, b.sno)
        batch[j] = _replace_sno(b, a.sno)
        return self._label(Axiom.SESSION, (a.tid, b.tid))

    def inject_noconflict(self, batch: List[Transaction]) -> Optional[FaultLabel]:
        """Overlap a batch writer with the key's previous writer."""
        options: List[Tuple[int, str, int, int]] = []
        for i, txn in enumerate(batch):
            if txn.tid == INIT_TID:
                continue
            for key in txn.write_keys:
                seen = self._last_commit.get(key)
                if seen is None:
                    continue
                earlier_commit, earlier_tid = seen
                new_start = earlier_commit - 1
                if 0 < new_start < txn.commit_ts and earlier_commit < txn.commit_ts:
                    options.append((i, key, new_start, earlier_tid))
        if not options:
            return None
        index, key, new_start, earlier_tid = self._rng.choice(options)
        txn = batch[index]
        batch[index] = Transaction(
            tid=txn.tid,
            sid=txn.sid,
            sno=txn.sno,
            ops=txn.ops,
            start_ts=new_start,
            commit_ts=txn.commit_ts,
        )
        return self._label(Axiom.NOCONFLICT, (earlier_tid, txn.tid), key)

    def inject_ts_order(self, batch: List[Transaction]) -> Optional[FaultLabel]:
        """Swap one writer's start and commit timestamps (Eq. 1)."""
        candidates = [
            i
            for i, txn in enumerate(batch)
            if txn.tid != INIT_TID and txn.start_ts < txn.commit_ts
        ]
        if not candidates:
            return None
        index = self._rng.choice(candidates)
        txn = batch[index]
        batch[index] = Transaction(
            tid=txn.tid,
            sid=txn.sid,
            sno=txn.sno,
            ops=txn.ops,
            start_ts=txn.commit_ts,
            commit_ts=txn.start_ts,
        )
        return self._label(Axiom.TS_ORDER, (txn.tid,))

    def _label(self, axiom: Axiom, tids: Tuple[int, ...], key: str = "") -> FaultLabel:
        label = FaultLabel(axiom, tids, key)
        self.labels.append(label)
        return label


def _rescale(txn: Transaction, scale: int) -> Transaction:
    return Transaction(
        tid=txn.tid,
        sid=txn.sid,
        sno=txn.sno,
        ops=txn.ops,
        start_ts=txn.start_ts * scale,
        commit_ts=txn.commit_ts * scale,
    )


def _replace_ops(txn: Transaction, ops: List[Operation]) -> Transaction:
    return Transaction(
        tid=txn.tid,
        sid=txn.sid,
        sno=txn.sno,
        ops=ops,
        start_ts=txn.start_ts,
        commit_ts=txn.commit_ts,
    )


def _replace_sno(txn: Transaction, sno: int) -> Transaction:
    return Transaction(
        tid=txn.tid,
        sid=txn.sid,
        sno=sno,
        ops=txn.ops,
        start_ts=txn.start_ts,
        commit_ts=txn.commit_ts,
    )


def _poison(value: object) -> int:
    """A value guaranteed not to occur in generated histories."""
    base = value if isinstance(value, int) else 0
    return base + 987_654_321
