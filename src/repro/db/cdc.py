"""Change data capture: where the checkers' input comes from.

§IV-C of the paper extracts transaction timestamps from TiDB's CDC
component, YugabyteDB's write-ahead log, and Dgraph's HTTP responses.
The simulated database emits an equivalent stream: one
:class:`CdcRecord` per committed transaction, carrying the session
identity, the client-visible operations (reads with the values actually
returned), and the oracle's start/commit timestamps.

Subscribers receive records synchronously at commit time — the hook the
online collector (:mod:`repro.online.collector`) uses to tail the
database.  :meth:`ChangeLog.wal_lines` renders the log in a textual WAL
format, and :func:`parse_wal` reads it back; the offline "loading" stage
measured in Fig 8/9/24 parses exactly this kind of file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, List, Tuple, Union

from repro.histories.model import History, Operation, Transaction
from repro.histories.serialization import txn_from_dict, txn_to_dict

__all__ = ["CdcRecord", "ChangeLog", "WalTailer", "parse_wal", "iter_wal_file"]


@dataclass(frozen=True)
class CdcRecord:
    """One committed transaction as captured from the database."""

    tid: int
    sid: int
    sno: int
    start_ts: int
    commit_ts: int
    ops: Tuple[Operation, ...]

    def to_transaction(self) -> Transaction:
        return Transaction(
            tid=self.tid,
            sid=self.sid,
            sno=self.sno,
            ops=self.ops,
            start_ts=self.start_ts,
            commit_ts=self.commit_ts,
        )


class ChangeLog:
    """An append-only log of committed transactions."""

    def __init__(self) -> None:
        self._records: List[CdcRecord] = []
        self._subscribers: List[Callable[[CdcRecord], None]] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def subscribe(self, callback: Callable[[CdcRecord], None]) -> None:
        """Register a tailer invoked synchronously on each commit."""
        self._subscribers.append(callback)

    def emit(self, record: CdcRecord) -> None:
        self._records.append(record)
        for subscriber in self._subscribers:
            subscriber(record)

    def to_history(self) -> History:
        """Materialize the captured history (commit order)."""
        return History(record.to_transaction() for record in self._records)

    def wal_lines(self) -> Iterable[str]:
        """Render the log as text lines, one committed transaction each."""
        for record in self._records:
            yield "COMMIT " + json.dumps(
                txn_to_dict(record.to_transaction()), separators=(",", ":")
            )

    def save_wal(self, path: Union[str, Path]) -> int:
        """Write the textual WAL to ``path``; returns the line count.

        The file is what a real deployment's log shipper would hand the
        checker — ``python -m repro replay --wal <file>`` streams it into
        a running daemon via :func:`iter_wal_file`.
        """
        path = Path(path)
        count = 0
        with path.open("w", encoding="utf-8") as handle:
            for line in self.wal_lines():
                handle.write(line)
                handle.write("\n")
                count += 1
        return count


class WalTailer:
    """Incrementally tail a textual WAL file being appended to.

    The live-feed source for the chaos campaign, shaped like tailing a
    SQLite WAL (or a shipped log segment): a writer appends ``COMMIT``
    lines while the tailer :meth:`poll`\\ s for new complete lines from
    its byte :attr:`offset` onward.  A partially written trailing line
    is left in the file for the next poll (the offset only ever advances
    past complete, newline-terminated lines), so writer and tailer need
    no coordination beyond append-only writes.  A missing file reads as
    empty — the tailer may be armed before the first commit.

    ``offset`` round-trips: a tailer constructed with a previous
    tailer's offset resumes exactly where it left off, which is how a
    restarted feed avoids re-reading (and re-submitting) history.
    """

    def __init__(self, path: Union[str, Path], *, offset: int = 0) -> None:
        self.path = Path(path)
        self.offset = offset

    def poll(self) -> List[Transaction]:
        """All complete transactions appended since the last poll."""
        try:
            with self.path.open("rb") as handle:
                handle.seek(self.offset)
                chunk = handle.read()
        except FileNotFoundError:
            return []
        if not chunk:
            return []
        complete = chunk.rfind(b"\n") + 1
        if complete == 0:
            return []  # only a torn tail so far
        self.offset += complete
        lines = chunk[:complete].decode("utf-8").splitlines()
        return list(_iter_commit_lines(lines))


def _iter_commit_lines(lines: Iterable[str]) -> Iterator[Transaction]:
    """Decode ``COMMIT`` lines; skip everything else (a real WAL
    interleaves other record types the checker ignores)."""
    for line in lines:
        line = line.strip()
        if not line or not line.startswith("COMMIT "):
            continue
        yield txn_from_dict(json.loads(line[len("COMMIT "):]))


def parse_wal(lines: Iterable[str]) -> History:
    """Parse the textual WAL format back into a history."""
    return History(_iter_commit_lines(lines))


def iter_wal_file(path: Union[str, Path]) -> Iterator[Transaction]:
    """Stream committed transactions from a WAL file written by
    :meth:`ChangeLog.save_wal`, without materializing the history."""
    with Path(path).open("r", encoding="utf-8") as handle:
        yield from _iter_commit_lines(handle)
