"""A simulated transactional MVCC database (the paper's substrate).

The paper evaluates against TiDB, YugabyteDB and Dgraph; the checkers,
however, consume nothing but the history extracted from the database's
logs.  This package supplies a faithful in-process substitute:

- :mod:`repro.db.oracle` — timestamp oracles: a centralized strictly
  increasing oracle (TiDB's PD / Dgraph's Zero) and a decentralized
  hybrid-logical-clock oracle with configurable skew (YugabyteDB);
- :mod:`repro.db.storage` — multi-version storage with snapshot reads;
- :mod:`repro.db.engine` — the operational semantics of SI from
  Algorithm 1 (snapshot reads as of ``start_ts``, write buffering,
  first-committer-wins), plus a SER mode that additionally validates
  read sets at commit so that committed executions are equivalent to the
  serial commit-timestamp order;
- :mod:`repro.db.cdc` — the change-data-capture log from which
  timestamps and operations are extracted (§IV-C);
- :mod:`repro.db.faults` — fault injection, both engine-level (clock
  skew, disabled conflict detection) and history-level mutations with
  ground-truth labels, used by the §V-D violation-detection experiments.
"""

from repro.db.cdc import ChangeLog
from repro.db.engine import Database, IsolationLevel, TransactionAborted
from repro.db.faults import FaultLabel, HistoryFaultInjector, SkewedOracle
from repro.db.oracle import CentralizedOracle, DecentralizedOracle, HybridLogicalClock
from repro.db.storage import MultiVersionStore

__all__ = [
    "CentralizedOracle",
    "ChangeLog",
    "Database",
    "DecentralizedOracle",
    "FaultLabel",
    "HistoryFaultInjector",
    "HybridLogicalClock",
    "IsolationLevel",
    "MultiVersionStore",
    "SkewedOracle",
    "TransactionAborted",
]
