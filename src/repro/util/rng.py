"""Deterministic random-stream helpers.

Every randomized component in the repository (workload generators, delay
models, fault injectors) takes an explicit seed and derives child streams
with :func:`derive_rng`, so an experiment is fully reproduced by its seed —
a requirement for the per-figure benchmarks to be re-runnable.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

__all__ = ["make_rng", "derive_rng"]


def make_rng(seed: Union[int, str]) -> random.Random:
    """Create a :class:`random.Random` from an int or string seed."""
    if isinstance(seed, str):
        digest = hashlib.sha256(seed.encode("utf-8")).digest()
        seed = int.from_bytes(digest[:8], "big")
    return random.Random(seed)


def derive_rng(parent_seed: Union[int, str], *labels: Union[int, str]) -> random.Random:
    """Derive an independent child stream from a parent seed and labels.

    Children with different labels are statistically independent, and the
    derivation is stable across runs and platforms:

    >>> a = derive_rng(42, "sessions", 3)
    >>> b = derive_rng(42, "sessions", 3)
    >>> a.random() == b.random()
    True
    """
    hasher = hashlib.sha256()
    hasher.update(str(parent_seed).encode("utf-8"))
    for label in labels:
        hasher.update(b"\x1f")
        hasher.update(str(label).encode("utf-8"))
    return random.Random(int.from_bytes(hasher.digest()[:8], "big"))
