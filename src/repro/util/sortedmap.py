"""A skiplist-backed sorted map with floor/ceiling queries.

Aion (Algorithm 3 in the paper) must insert transactions into an already
sorted timeline and answer "latest version before timestamp ``ts``" queries
against its versioned ``frontier_ts`` / ``ongoing_ts`` structures.  The
paper suggests a balanced binary search tree; a skiplist offers the same
expected ``O(log n)`` bounds with a considerably simpler implementation and
no rebalancing, which keeps the hot path short in pure Python.

The map stores unique, mutually comparable keys.  Beyond the usual mapping
operations it supports:

- :meth:`SortedMap.floor_item` / :meth:`SortedMap.ceiling_item` — greatest
  key ``<= k`` / least key ``>= k``;
- :meth:`SortedMap.lower_item` / :meth:`SortedMap.higher_item` — strict
  variants;
- :meth:`SortedMap.irange` — ordered iteration over a key range, the
  primitive behind Aion's re-checking sweeps;
- :meth:`SortedMap.pop_below` — bulk removal used by garbage collection.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Iterator, Optional, Tuple

__all__ = ["SortedMap"]

_MAX_LEVEL = 32
_P = 0.5


class _Node:
    """A skiplist tower holding one key/value pair."""

    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Any, value: Any, level: int) -> None:
        self.key = key
        self.value = value
        self.forward: list[Optional[_Node]] = [None] * level


class SortedMap:
    """A mutable mapping whose keys are kept in sorted order.

    The implementation is a classic Pugh skiplist.  All single-item
    operations (get, set, delete, floor, ceiling) run in expected
    ``O(log n)``; in-order iteration is ``O(n)``.

    >>> m = SortedMap()
    >>> m[10] = "a"; m[20] = "b"; m[30] = "c"
    >>> m.floor_item(25)
    (20, 'b')
    >>> list(m.irange(15, 30))
    [(20, 'b'), (30, 'c')]
    """

    __slots__ = ("_head", "_level", "_len", "_rng")

    def __init__(self, items: Optional[Iterable[Tuple[Any, Any]]] = None, *, seed: int = 0x5EED) -> None:
        self._head = _Node(None, None, _MAX_LEVEL)
        self._level = 1
        self._len = 0
        # A private RNG keeps tower heights deterministic for a given
        # insertion sequence, which makes benchmarks reproducible.
        self._rng = random.Random(seed)
        if items is not None:
            for key, value in items:
                self[key] = value

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def __contains__(self, key: Any) -> bool:
        node = self._find_equal(key)
        return node is not None

    def __getitem__(self, key: Any) -> Any:
        node = self._find_equal(key)
        if node is None:
            raise KeyError(key)
        return node.value

    def get(self, key: Any, default: Any = None) -> Any:
        node = self._find_equal(key)
        return default if node is None else node.value

    def __setitem__(self, key: Any, value: Any) -> None:
        update: list[_Node] = [self._head] * _MAX_LEVEL
        node = self._head
        for level in range(self._level - 1, -1, -1):
            nxt = node.forward[level]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[level]
            update[level] = node
        candidate = node.forward[0]
        if candidate is not None and candidate.key == key:
            candidate.value = value
            return
        height = self._random_level()
        if height > self._level:
            self._level = height
        new_node = _Node(key, value, height)
        for level in range(height):
            new_node.forward[level] = update[level].forward[level]
            update[level].forward[level] = new_node
        self._len += 1

    def set_and_higher(self, key: Any, value: Any) -> Tuple[bool, Optional[Tuple[Any, Any]]]:
        """Insert (or overwrite) ``key`` and return its successor in one descent.

        Returns ``(was_present, higher_item)`` where ``was_present`` tells
        whether ``key`` already existed and ``higher_item`` is the item
        with the least key ``> key`` (or None).  Aion's step ③ needs both
        the insertion and the next-version lookup at the same point of the
        timeline; fusing them halves the skiplist descents on the ingest
        hot path.
        """
        update: list[_Node] = [self._head] * _MAX_LEVEL
        node = self._head
        for level in range(self._level - 1, -1, -1):
            nxt = node.forward[level]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[level]
            update[level] = node
        candidate = node.forward[0]
        if candidate is not None and candidate.key == key:
            candidate.value = value
            successor = candidate.forward[0]
            return True, None if successor is None else (successor.key, successor.value)
        height = self._random_level()
        if height > self._level:
            self._level = height
        new_node = _Node(key, value, height)
        for level in range(height):
            new_node.forward[level] = update[level].forward[level]
            update[level].forward[level] = new_node
        self._len += 1
        successor = new_node.forward[0]
        return False, None if successor is None else (successor.key, successor.value)

    def __delitem__(self, key: Any) -> None:
        update: list[_Node] = [self._head] * _MAX_LEVEL
        node = self._head
        for level in range(self._level - 1, -1, -1):
            nxt = node.forward[level]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[level]
            update[level] = node
        target = node.forward[0]
        if target is None or target.key != key:
            raise KeyError(key)
        for level in range(len(target.forward)):
            if update[level].forward[level] is target:
                update[level].forward[level] = target.forward[level]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._len -= 1

    def pop(self, key: Any, *default: Any) -> Any:
        node = self._find_equal(key)
        if node is None:
            if default:
                return default[0]
            raise KeyError(key)
        value = node.value
        del self[key]
        return value

    def setdefault(self, key: Any, default: Any) -> Any:
        node = self._find_equal(key)
        if node is not None:
            return node.value
        self[key] = default
        return default

    def clear(self) -> None:
        self._head = _Node(None, None, _MAX_LEVEL)
        self._level = 1
        self._len = 0

    # ------------------------------------------------------------------
    # Ordered queries
    # ------------------------------------------------------------------

    def min_item(self) -> Tuple[Any, Any]:
        """Return the smallest (key, value) pair; raise KeyError if empty."""
        first = self._head.forward[0]
        if first is None:
            raise KeyError("min_item(): map is empty")
        return first.key, first.value

    def max_item(self) -> Tuple[Any, Any]:
        """Return the largest (key, value) pair; raise KeyError if empty."""
        node = self._head
        for level in range(self._level - 1, -1, -1):
            nxt = node.forward[level]
            while nxt is not None:
                node = nxt
                nxt = node.forward[level]
        if node is self._head:
            raise KeyError("max_item(): map is empty")
        return node.key, node.value

    def floor_item(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Return the item with the greatest key ``<= key``, or None."""
        node = self._predecessor(key)
        candidate = node.forward[0]
        if candidate is not None and candidate.key == key:
            return candidate.key, candidate.value
        if node is self._head:
            return None
        return node.key, node.value

    def lower_item(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Return the item with the greatest key ``< key``, or None."""
        node = self._predecessor(key)
        if node is self._head:
            return None
        return node.key, node.value

    def ceiling_item(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Return the item with the least key ``>= key``, or None."""
        node = self._predecessor(key).forward[0]
        if node is None:
            return None
        return node.key, node.value

    def higher_item(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Return the item with the least key ``> key``, or None."""
        node = self._predecessor(key).forward[0]
        if node is not None and node.key == key:
            node = node.forward[0]
        if node is None:
            return None
        return node.key, node.value

    def irange(
        self,
        low: Any = None,
        high: Any = None,
        *,
        inclusive: Tuple[bool, bool] = (True, True),
    ) -> Iterator[Tuple[Any, Any]]:
        """Iterate (key, value) pairs with ``low <= key <= high`` in order.

        ``low=None`` / ``high=None`` leave that side unbounded; the
        ``inclusive`` pair controls closed/open endpoints, mirroring
        ``sortedcontainers.SortedDict.irange``.
        """
        if low is None:
            node = self._head.forward[0]
        else:
            node = self._predecessor(low).forward[0]
            if node is not None and not inclusive[0] and node.key == low:
                node = node.forward[0]
        while node is not None:
            if high is not None:
                if node.key > high:
                    return
                if not inclusive[1] and node.key == high:
                    return
            yield node.key, node.value
            node = node.forward[0]

    def pop_below(self, key: Any, *, inclusive: bool = True) -> list[Tuple[Any, Any]]:
        """Remove and return every item with key ``<= key`` (or ``< key``).

        This is the garbage-collection primitive: Aion periodically evicts
        all versions below the GC-safe timestamp in one sweep, which this
        method performs in ``O(removed + log n)`` by splicing the skiplist
        rather than deleting keys one at a time.
        """
        removed: list[Tuple[Any, Any]] = []
        node = self._head.forward[0]
        while node is not None:
            if node.key > key or (not inclusive and node.key == key):
                break
            removed.append((node.key, node.value))
            node = node.forward[0]
        if not removed:
            return removed
        boundary = removed[-1][0]
        # Splice every level past the last removed node.
        walk = self._head
        for level in range(self._level - 1, -1, -1):
            nxt = walk.forward[level]
            while nxt is not None and (nxt.key < boundary or nxt.key == boundary):
                nxt = nxt.forward[level]
            self._head.forward[level] = nxt
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._len -= len(removed)
        return removed

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        node = self._head.forward[0]
        while node is not None:
            yield node.key
            node = node.forward[0]

    def keys(self) -> Iterator[Any]:
        return iter(self)

    def values(self) -> Iterator[Any]:
        node = self._head.forward[0]
        while node is not None:
            yield node.value
            node = node.forward[0]

    def items(self) -> Iterator[Tuple[Any, Any]]:
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def __repr__(self) -> str:
        preview = ", ".join(f"{k!r}: {v!r}" for k, v in list(self.items())[:8])
        suffix = ", ..." if len(self) > 8 else ""
        return f"SortedMap({{{preview}{suffix}}})"

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < _P:
            level += 1
        return level

    def _predecessor(self, key: Any) -> _Node:
        """Return the last node with ``node.key < key`` (head if none)."""
        node = self._head
        for level in range(self._level - 1, -1, -1):
            nxt = node.forward[level]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[level]
        return node

    def _find_equal(self, key: Any) -> Optional[_Node]:
        node = self._predecessor(key).forward[0]
        if node is not None and node.key == key:
            return node
        return None
