"""A two-level bisect-backed sorted map with floor/ceiling queries.

Aion (Algorithm 3 in the paper) must insert transactions into an already
sorted timeline and answer "latest version before timestamp ``ts``" queries
against its versioned ``frontier_ts`` / ``ongoing_ts`` structures.  The
paper suggests a balanced binary search tree; this implementation uses the
flat layout popularized by ``sortedcontainers`` instead — a list of
bounded, individually sorted key chunks plus a ``maxes`` index holding
each chunk's greatest key — because in CPython the constant factor is the
whole game: every operation bottoms out in C-speed :func:`bisect.bisect`
calls and ``list`` splices over contiguous pointer arrays, where a linked
structure (the previous generation of this module was a Pugh skiplist)
pays a Python-level object dereference per visited node.

Chunks split at ``2 * _LOAD`` entries, keeping every descent a pair of
bisects (one over ``maxes``, one inside a chunk); a chunk that empties is
dropped.  Deletions never split, so the chunk count is bounded by the
insert history and lookups stay ``O(log n)``.

The map stores unique, mutually comparable keys.  Beyond the usual mapping
operations it supports:

- :meth:`SortedMap.floor_item` / :meth:`SortedMap.ceiling_item` — greatest
  key ``<= k`` / least key ``>= k``;
- :meth:`SortedMap.lower_item` / :meth:`SortedMap.higher_item` — strict
  variants;
- :meth:`SortedMap.irange` — ordered iteration over a key range, the
  primitive behind Aion's re-checking sweeps;
- :meth:`SortedMap.pop_below` — bulk removal used by garbage collection,
  which splices whole chunks instead of deleting keys one at a time;
- :meth:`SortedMap.set_item` — single-descent insert reporting whether
  the key was already present;
- :meth:`SortedMap.set_and_higher` — fused insert + successor lookup for
  Aion's step ③.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterable, Iterator, Optional, Tuple

__all__ = ["SortedMap"]

#: Chunks split once they exceed ``2 * _LOAD`` entries.  1024 keeps the
#: common per-key maps (a handful of versions) in a single plain list
#: while bounding splice cost for the large global maps.
_LOAD = 1024
_SPLIT = 2 * _LOAD


class SortedMap:
    """A mutable mapping whose keys are kept in sorted order.

    Keys live in ``_keys`` (a list of sorted chunks) with values in the
    parallel ``_vals`` chunks; ``_maxes[i]`` caches ``_keys[i][-1]``.
    All single-item operations (get, set, delete, floor, ceiling) run in
    ``O(log n)`` with C-speed constants; in-order iteration is ``O(n)``.

    >>> m = SortedMap()
    >>> m[10] = "a"; m[20] = "b"; m[30] = "c"
    >>> m.floor_item(25)
    (20, 'b')
    >>> list(m.irange(15, 30))
    [(20, 'b'), (30, 'c')]
    """

    __slots__ = ("_keys", "_vals", "_maxes", "_len")

    def __init__(self, items: Optional[Iterable[Tuple[Any, Any]]] = None, *, seed: int = 0) -> None:
        # ``seed`` is accepted for compatibility with the skiplist-era
        # constructor; the flat layout is deterministic without one.
        self._keys: list[list] = []
        self._vals: list[list] = []
        self._maxes: list = []
        self._len = 0
        if items is not None:
            for key, value in items:
                self[key] = value

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def __contains__(self, key: Any) -> bool:
        maxes = self._maxes
        if not maxes:
            return False
        ci = bisect_left(maxes, key)
        if ci == len(maxes):
            return False
        chunk = self._keys[ci]
        j = bisect_left(chunk, key)
        return chunk[j] == key

    def __getitem__(self, key: Any) -> Any:
        maxes = self._maxes
        if maxes:
            ci = bisect_left(maxes, key)
            if ci != len(maxes):
                chunk = self._keys[ci]
                j = bisect_left(chunk, key)
                if chunk[j] == key:
                    return self._vals[ci][j]
        raise KeyError(key)

    def get(self, key: Any, default: Any = None) -> Any:
        maxes = self._maxes
        if not maxes:
            return default
        ci = bisect_left(maxes, key)
        if ci == len(maxes):
            return default
        chunk = self._keys[ci]
        j = bisect_left(chunk, key)
        if chunk[j] == key:
            return self._vals[ci][j]
        return default

    def set_item(self, key: Any, value: Any) -> bool:
        """Insert (or overwrite) ``key`` in one descent.

        Returns ``was_present`` — whether the key already existed.  The
        versioned frontier needs exactly this to maintain its version
        count without a separate ``key in map`` probe.  Subscript
        assignment is this same method (the return value is ignored).
        """
        maxes = self._maxes
        if not maxes:
            self._keys.append([key])
            self._vals.append([value])
            maxes.append(key)
            self._len = 1
            return False
        ci = bisect_left(maxes, key)
        if ci == len(maxes):
            # Greater than every stored key: append to the last chunk.
            ci -= 1
            chunk = self._keys[ci]
            chunk.append(key)
            self._vals[ci].append(value)
            maxes[ci] = key
        else:
            chunk = self._keys[ci]
            j = bisect_left(chunk, key)
            if chunk[j] == key:
                self._vals[ci][j] = value
                return True
            chunk.insert(j, key)
            self._vals[ci].insert(j, value)
        self._len += 1
        if len(chunk) > _SPLIT:
            self._split(ci)
        return False

    __setitem__ = set_item

    def set_and_higher(self, key: Any, value: Any) -> Tuple[bool, Optional[Tuple[Any, Any]]]:
        """Insert (or overwrite) ``key`` and return its successor in one descent.

        Returns ``(was_present, higher_item)`` where ``was_present`` tells
        whether ``key`` already existed and ``higher_item`` is the item
        with the least key ``> key`` (or None).  Aion's step ③ needs both
        the insertion and the next-version lookup at the same point of the
        timeline; fusing them halves the descents on the ingest hot path.
        """
        maxes = self._maxes
        if not maxes:
            self._keys.append([key])
            self._vals.append([value])
            maxes.append(key)
            self._len = 1
            return False, None
        ci = bisect_left(maxes, key)
        if ci == len(maxes):
            # New global maximum: no successor.
            ci -= 1
            chunk = self._keys[ci]
            chunk.append(key)
            self._vals[ci].append(value)
            maxes[ci] = key
            self._len += 1
            if len(chunk) > _SPLIT:
                self._split(ci)
            return False, None
        chunk = self._keys[ci]
        vals = self._vals[ci]
        j = bisect_left(chunk, key)
        if chunk[j] == key:
            vals[j] = value
            was_present = True
        else:
            chunk.insert(j, key)
            vals.insert(j, value)
            self._len += 1
            was_present = False
        nxt = j + 1
        if nxt < len(chunk):
            successor = (chunk[nxt], vals[nxt])
        elif ci + 1 < len(self._keys):
            successor = (self._keys[ci + 1][0], self._vals[ci + 1][0])
        else:
            successor = None
        if len(chunk) > _SPLIT:
            self._split(ci)
        return was_present, successor

    def __delitem__(self, key: Any) -> None:
        maxes = self._maxes
        if maxes:
            ci = bisect_left(maxes, key)
            if ci != len(maxes):
                chunk = self._keys[ci]
                j = bisect_left(chunk, key)
                if chunk[j] == key:
                    del chunk[j]
                    del self._vals[ci][j]
                    self._len -= 1
                    if not chunk:
                        del self._keys[ci]
                        del self._vals[ci]
                        del maxes[ci]
                    elif j == len(chunk):
                        maxes[ci] = chunk[-1]
                    return
        raise KeyError(key)

    def pop(self, key: Any, *default: Any) -> Any:
        maxes = self._maxes
        if maxes:
            ci = bisect_left(maxes, key)
            if ci != len(maxes):
                chunk = self._keys[ci]
                j = bisect_left(chunk, key)
                if chunk[j] == key:
                    value = self._vals[ci][j]
                    del chunk[j]
                    del self._vals[ci][j]
                    self._len -= 1
                    if not chunk:
                        del self._keys[ci]
                        del self._vals[ci]
                        del maxes[ci]
                    elif j == len(chunk):
                        maxes[ci] = chunk[-1]
                    return value
        if default:
            return default[0]
        raise KeyError(key)

    def setdefault(self, key: Any, default: Any) -> Any:
        """Return ``map[key]``, inserting ``default`` first if absent.

        A single descent either way — the external-read index relies on
        this to append to a per-snapshot reader list without paying a
        second chunk search on the miss path.
        """
        maxes = self._maxes
        if not maxes:
            self._keys.append([key])
            self._vals.append([default])
            maxes.append(key)
            self._len = 1
            return default
        ci = bisect_left(maxes, key)
        if ci == len(maxes):
            ci -= 1
            chunk = self._keys[ci]
            chunk.append(key)
            self._vals[ci].append(default)
            maxes[ci] = key
        else:
            chunk = self._keys[ci]
            j = bisect_left(chunk, key)
            if chunk[j] == key:
                return self._vals[ci][j]
            chunk.insert(j, key)
            self._vals[ci].insert(j, default)
        self._len += 1
        if len(chunk) > _SPLIT:
            self._split(ci)
        return default

    def clear(self) -> None:
        self._keys = []
        self._vals = []
        self._maxes = []
        self._len = 0

    # ------------------------------------------------------------------
    # Ordered queries
    # ------------------------------------------------------------------

    def min_item(self) -> Tuple[Any, Any]:
        """Return the smallest (key, value) pair; raise KeyError if empty."""
        if not self._maxes:
            raise KeyError("min_item(): map is empty")
        return self._keys[0][0], self._vals[0][0]

    def max_item(self) -> Tuple[Any, Any]:
        """Return the largest (key, value) pair; raise KeyError if empty."""
        if not self._maxes:
            raise KeyError("max_item(): map is empty")
        return self._keys[-1][-1], self._vals[-1][-1]

    def floor_item(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Return the item with the greatest key ``<= key``, or None."""
        maxes = self._maxes
        if not maxes:
            return None
        ci = bisect_left(maxes, key)
        if ci == len(maxes):
            return self._keys[-1][-1], self._vals[-1][-1]
        chunk = self._keys[ci]
        j = bisect_right(chunk, key) - 1
        if j >= 0:
            return chunk[j], self._vals[ci][j]
        if ci:
            return self._keys[ci - 1][-1], self._vals[ci - 1][-1]
        return None

    def lower_item(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Return the item with the greatest key ``< key``, or None."""
        maxes = self._maxes
        if not maxes:
            return None
        ci = bisect_left(maxes, key)
        if ci == len(maxes):
            return self._keys[-1][-1], self._vals[-1][-1]
        chunk = self._keys[ci]
        j = bisect_left(chunk, key) - 1
        if j >= 0:
            return chunk[j], self._vals[ci][j]
        if ci:
            return self._keys[ci - 1][-1], self._vals[ci - 1][-1]
        return None

    def ceiling_item(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Return the item with the least key ``>= key``, or None."""
        maxes = self._maxes
        if not maxes:
            return None
        ci = bisect_left(maxes, key)
        if ci == len(maxes):
            return None
        chunk = self._keys[ci]
        j = bisect_left(chunk, key)
        return chunk[j], self._vals[ci][j]

    def higher_item(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Return the item with the least key ``> key``, or None."""
        maxes = self._maxes
        if not maxes:
            return None
        ci = bisect_right(maxes, key)
        if ci == len(maxes):
            return None
        chunk = self._keys[ci]
        j = bisect_right(chunk, key)
        return chunk[j], self._vals[ci][j]

    def irange(
        self,
        low: Any = None,
        high: Any = None,
        *,
        inclusive: Tuple[bool, bool] = (True, True),
    ) -> Iterator[Tuple[Any, Any]]:
        """Iterate (key, value) pairs with ``low <= key <= high`` in order.

        ``low=None`` / ``high=None`` leave that side unbounded; the
        ``inclusive`` pair controls closed/open endpoints, mirroring
        ``sortedcontainers.SortedDict.irange``.  Both endpoints are
        located by bisection, so a narrow sweep inside a large map costs
        ``O(log n + yielded)``.
        """
        maxes = self._maxes
        if not maxes:
            return
        key_chunks = self._keys
        val_chunks = self._vals
        n_chunks = len(maxes)
        if low is None:
            ci, j = 0, 0
        else:
            ci = bisect_left(maxes, low)
            if ci == n_chunks:
                return
            chunk = key_chunks[ci]
            j = bisect_left(chunk, low) if inclusive[0] else bisect_right(chunk, low)
            if j == len(chunk):
                ci += 1
                j = 0
                if ci == n_chunks:
                    return
        if high is None:
            ce, je = n_chunks - 1, len(key_chunks[-1])
        else:
            ce = bisect_left(maxes, high)
            if ce == n_chunks:
                ce, je = n_chunks - 1, len(key_chunks[-1])
            else:
                chunk = key_chunks[ce]
                je = bisect_right(chunk, high) if inclusive[1] else bisect_left(chunk, high)
        if ci > ce or (ci == ce and j >= je):
            return  # empty range (including low > high)
        while True:
            keys = key_chunks[ci]
            vals = val_chunks[ci]
            end = je if ci == ce else len(keys)
            while j < end:
                yield keys[j], vals[j]
                j += 1
            if ci >= ce:
                return
            ci += 1
            j = 0

    def range_lists(
        self,
        low: Any = None,
        high: Any = None,
        *,
        inclusive: Tuple[bool, bool] = (True, True),
    ) -> Optional[Tuple[list, list]]:
        """List-returning :meth:`irange`: parallel key/value slices.

        Returns ``(keys, values)`` for the range, or ``None`` when it is
        empty.  The batch kernel's re-check sweep issues one narrow range
        query per written key; materializing the (usually tiny) answer
        with two bisects and a C-speed slice beats driving a generator
        frame per yielded item.
        """
        maxes = self._maxes
        if not maxes:
            return None
        key_chunks = self._keys
        val_chunks = self._vals
        n_chunks = len(maxes)
        if low is None:
            ci, j = 0, 0
        else:
            ci = bisect_left(maxes, low)
            if ci == n_chunks:
                return None
            chunk = key_chunks[ci]
            j = bisect_left(chunk, low) if inclusive[0] else bisect_right(chunk, low)
            if j == len(chunk):
                ci += 1
                j = 0
                if ci == n_chunks:
                    return None
        if high is None:
            ce, je = n_chunks - 1, len(key_chunks[-1])
        else:
            ce = bisect_left(maxes, high)
            if ce == n_chunks:
                ce, je = n_chunks - 1, len(key_chunks[-1])
            else:
                chunk = key_chunks[ce]
                je = bisect_right(chunk, high) if inclusive[1] else bisect_left(chunk, high)
        if ci > ce or (ci == ce and j >= je):
            return None  # empty range (including low > high)
        if ci == ce:
            return key_chunks[ci][j:je], val_chunks[ci][j:je]
        keys_out = key_chunks[ci][j:]
        vals_out = val_chunks[ci][j:]
        for mid in range(ci + 1, ce):
            keys_out += key_chunks[mid]
            vals_out += val_chunks[mid]
        keys_out += key_chunks[ce][:je]
        vals_out += val_chunks[ce][:je]
        return keys_out, vals_out

    def pop_below(self, key: Any, *, inclusive: bool = True) -> list[Tuple[Any, Any]]:
        """Remove and return every item with key ``<= key`` (or ``< key``).

        This is the garbage-collection primitive: Aion periodically evicts
        all versions below the GC-safe timestamp in one sweep, which this
        method performs in ``O(removed + log n)`` by dropping whole chunks
        rather than deleting keys one at a time.
        """
        maxes = self._maxes
        if not maxes:
            return []
        key_chunks = self._keys
        val_chunks = self._vals
        # Chunks whose max falls inside the cut are removed wholesale.
        ci = bisect_right(maxes, key) if inclusive else bisect_left(maxes, key)
        removed: list[Tuple[Any, Any]] = []
        for full in range(ci):
            removed.extend(zip(key_chunks[full], val_chunks[full]))
        if ci:
            del key_chunks[:ci]
            del val_chunks[:ci]
            del maxes[:ci]
        if key_chunks:
            chunk = key_chunks[0]
            j = bisect_right(chunk, key) if inclusive else bisect_left(chunk, key)
            if j:
                removed.extend(zip(chunk[:j], val_chunks[0][:j]))
                del chunk[:j]
                del val_chunks[0][:j]
        self._len -= len(removed)
        return removed

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        for chunk in self._keys:
            yield from chunk

    def keys(self) -> Iterator[Any]:
        return iter(self)

    def values(self) -> Iterator[Any]:
        for chunk in self._vals:
            yield from chunk

    def items(self) -> Iterator[Tuple[Any, Any]]:
        for ci, chunk in enumerate(self._keys):
            vals = self._vals[ci]
            for j, key in enumerate(chunk):
                yield key, vals[j]

    def __repr__(self) -> str:
        preview = ", ".join(f"{k!r}: {v!r}" for k, v in list(self.items())[:8])
        suffix = ", ..." if len(self) > 8 else ""
        return f"SortedMap({{{preview}{suffix}}})"

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @classmethod
    def _from_sorted(cls, keys: list, vals: list) -> "SortedMap":
        """Build a map from already-sorted parallel key/value lists.

        The lists are sliced straight into chunks with no per-key
        descent — the ``O(n)`` promotion path for containers that
        outgrow the versioned frontier's small-key representation.
        """
        m = cls()
        if keys:
            for lo in range(0, len(keys), _LOAD):
                m._keys.append(keys[lo : lo + _LOAD])
                m._vals.append(vals[lo : lo + _LOAD])
                m._maxes.append(m._keys[-1][-1])
            m._len = len(keys)
        return m

    def _split(self, ci: int) -> None:
        """Split the oversized chunk at ``ci`` into two halves."""
        keys = self._keys[ci]
        vals = self._vals[ci]
        half = len(keys) >> 1
        self._keys[ci] = keys[:half]
        self._vals[ci] = vals[:half]
        self._keys.insert(ci + 1, keys[half:])
        self._vals.insert(ci + 1, vals[half:])
        # The right half keeps the old max; the left half's max is the
        # last key it retained.
        self._maxes.insert(ci, keys[half - 1])
