"""Per-key interval index with overlap queries.

The NOCONFLICT axiom concerns *temporally overlapping* writers of a key:
two transactions conflict when both write some key ``k`` and their
``[start_ts, commit_ts]`` intervals intersect.  Offline, Chronos detects
this with a running ``ongoing`` set; online, Aion must answer the
retroactive query "which writer intervals of ``k`` overlap this new
interval?" — the role of :class:`IntervalIndex`.

The index keeps intervals sorted by start point in a
:class:`~repro.util.sortedmap.SortedMap` and maintains the running maximum
end point of each prefix, so an overlap query inspects only candidate
intervals whose start precedes the query's end and prunes with the prefix
maximum, giving ``O(log n + answer)`` behaviour on the non-adversarial
timelines produced by databases (writer intervals are short relative to
history length).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional

from repro.util.sortedmap import SortedMap

__all__ = ["Interval", "IntervalIndex"]


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[start, end]`` tagged with an owner payload."""

    start: int
    end: int
    owner: Any = None

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval end {self.end} precedes start {self.start}")

    def overlaps(self, other: "Interval") -> bool:
        """True when the closed intervals share at least one point."""
        return self.start <= other.end and other.start <= self.end

    def contains_point(self, point: int) -> bool:
        return self.start <= point <= self.end


class IntervalIndex:
    """A dynamic set of intervals supporting overlap queries and GC.

    Intervals are keyed by ``(start, owner)`` so multiple intervals may
    share a start point.  The index additionally tracks, for every entry,
    the maximum ``end`` over all entries at or before it (a monotone
    "reach" value), letting :meth:`overlapping` stop early.
    """

    __slots__ = ("_by_start", "_max_end")

    def __init__(self) -> None:
        self._by_start: SortedMap = SortedMap()
        self._max_end: int | None = None

    def __len__(self) -> int:
        return len(self._by_start)

    def __iter__(self) -> Iterator[Interval]:
        for _, interval in self._by_start.items():
            yield interval

    def add(self, interval: Interval) -> None:
        """Insert an interval; duplicate (start, owner) pairs overwrite."""
        self._by_start[(interval.start, interval.owner)] = interval
        if self._max_end is None or interval.end > self._max_end:
            self._max_end = interval.end

    def remove(self, interval: Interval) -> None:
        """Remove an interval previously added; KeyError if absent."""
        del self._by_start[(interval.start, interval.owner)]
        # _max_end is a conservative upper bound; shrinking it lazily keeps
        # removal O(log n) at the cost of slightly wider scans afterwards.
        if not self._by_start:
            self._max_end = None

    def overlapping(self, query: Interval) -> List[Interval]:
        """Return all stored intervals overlapping ``query`` (closed ends).

        The owner of ``query`` is *not* excluded; callers filter self-hits.
        """
        if self._max_end is not None and self._max_end < query.start:
            return []
        hits: List[Interval] = []
        # Candidates must start at or before query.end.
        for _, interval in self._by_start.irange(None, (query.end, _OWNER_MAX)):
            if interval.end >= query.start:
                hits.append(interval)
        return hits

    def first_start_after(self, point: int) -> Optional[Interval]:
        """Return the interval with the least start strictly after ``point``."""
        item = self._by_start.higher_item((point, _OWNER_MAX))
        return None if item is None else item[1]

    def pop_ending_before(self, point: int) -> List[Interval]:
        """Remove and return intervals wholly before ``point`` (end < point).

        Garbage collection: once the GC-safe timestamp passes an interval's
        end, no future transaction can overlap it.
        """
        doomed = [iv for iv in self if iv.end < point]
        for interval in doomed:
            del self._by_start[(interval.start, interval.owner)]
        if not self._by_start:
            self._max_end = None
        return doomed


class _OwnerMax:
    """Sentinel comparing greater than every owner, for range endpoints."""

    __slots__ = ()

    def __lt__(self, other: Any) -> bool:
        return False

    def __gt__(self, other: Any) -> bool:
        return other is not self

    def __eq__(self, other: Any) -> bool:
        return other is self

    def __hash__(self) -> int:
        return 0x0FFEE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<owner-max>"


_OWNER_MAX = _OwnerMax()
