"""Per-key interval index with reach-pruned overlap queries.

The NOCONFLICT axiom concerns *temporally overlapping* writers of a key:
two transactions conflict when both write some key ``k`` and their
``[start_ts, commit_ts]`` intervals intersect.  Offline, Chronos detects
this with a running ``ongoing`` set; online, Aion must answer the
retroactive query "which writer intervals of ``k`` overlap this new
interval?" — the role of :class:`IntervalIndex`.

The index shares the two-level flat layout of
:class:`~repro.util.sortedmap.SortedMap`, taken one step further into
columnar form: interval *keys* ``(start, owner)`` sorted in bounded
chunks with a ``maxes`` index, a parallel per-chunk ``ends`` array of
plain ``int`` end points, and — per chunk — a parallel *reach* array
holding the running prefix maximum of those end points.  No
:class:`Interval` objects live inside the index: the batch kernel's
fused :meth:`IntervalIndex.overlap_add` runs entirely over contiguous
int arrays (an attribute dereference per examined entry was a measurable
share of step ② when chunks held interval objects), and ``Interval``
records are materialized only at the object-API boundaries
(:meth:`IntervalIndex.overlapping`, :meth:`IntervalIndex.pop_ending_before`,
iteration).

Reach arrays bound what an overlap query must examine:

- a chunk whose total reach (``reach[-1]``) falls short of the query's
  start cannot contain an overlap and is skipped with a single ``O(1)``
  probe of its last reach entry;
- inside a surviving chunk, the nondecreasing reach array is bisected
  for the *floor bound* — the first entry whose prefix already reaches
  the query — so the dead prefix of old, short intervals is never
  touched entry by entry.

A query therefore costs ``O(answer + chunks-below-the-start-bound)``:
one cheap probe per chunk plus only the entries that actually overlap
(the paper-suggested ``O(log n + answer)`` augmented tree trades those
per-chunk probes for per-node Python overhead, a bad trade in CPython
as long as GC keeps the per-key chunk count small).

A long-running checker accumulates exactly that dead prefix (writer
intervals are short relative to history length), which the previous
generation of this module walked on every query; the ``scan_steps`` /
``gc_scan_steps`` counters exist so benchmarks and CI can gate on the
number of entries actually examined.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterator, List, Optional, Tuple

__all__ = ["Interval", "IntervalIndex"]

#: Chunk split threshold.  Smaller than SortedMap's: each split recomputes
#: the reach arrays of both halves, and overlap scans are densest near the
#: active window, so shorter chunks prune at a finer grain.
_LOAD = 512
_SPLIT = 2 * _LOAD


class Interval:
    """A closed interval ``[start, end]`` tagged with an owner payload.

    A plain ``__slots__`` record rather than a dataclass: the checker
    constructs one per writer interval on the batch hot path, where the
    dataclass ``__init__``/``__post_init__`` machinery is measurable.
    Ordering and hashing follow the former ``(start, end, owner)`` field
    tuple exactly.
    """

    __slots__ = ("start", "end", "owner")

    def __init__(self, start: int, end: int, owner: Any = None) -> None:
        if end < start:
            raise ValueError(f"interval end {end} precedes start {start}")
        self.start = start
        self.end = end
        self.owner = owner

    def overlaps(self, other: "Interval") -> bool:
        """True when the closed intervals share at least one point."""
        return self.start <= other.end and other.start <= self.end

    def contains_point(self, point: int) -> bool:
        return self.start <= point <= self.end

    def __eq__(self, other: Any) -> bool:
        if type(other) is not Interval:
            return NotImplemented
        return (
            self.start == other.start
            and self.end == other.end
            and self.owner == other.owner
        )

    def __lt__(self, other: "Interval") -> bool:
        if type(other) is not Interval:
            return NotImplemented
        return (self.start, self.end, self.owner) < (other.start, other.end, other.owner)

    def __le__(self, other: "Interval") -> bool:
        if type(other) is not Interval:
            return NotImplemented
        return (self.start, self.end, self.owner) <= (other.start, other.end, other.owner)

    def __gt__(self, other: "Interval") -> bool:
        if type(other) is not Interval:
            return NotImplemented
        return (self.start, self.end, self.owner) > (other.start, other.end, other.owner)

    def __ge__(self, other: "Interval") -> bool:
        if type(other) is not Interval:
            return NotImplemented
        return (self.start, self.end, self.owner) >= (other.start, other.end, other.owner)

    def __hash__(self) -> int:
        return hash((self.start, self.end, self.owner))

    def __repr__(self) -> str:
        return f"Interval(start={self.start!r}, end={self.end!r}, owner={self.owner!r})"


class IntervalIndex:
    """A dynamic set of intervals supporting overlap queries and GC.

    Intervals are keyed by ``(start, owner)`` so multiple intervals may
    share a start point; duplicate keys overwrite.  End points live in
    the columnar ``_ends`` chunks parallel to the key chunks;
    ``_reach[ci][j]`` is ``max(_ends[ci][0..j])`` — the per-entry
    prefix-max "reach" maintained incrementally per chunk (an insert or
    delete at position ``j`` recomputes the suffix from ``j``, which is
    ``O(1)`` for the common append-at-the-end arrival pattern).
    """

    __slots__ = ("_keys", "_ends", "_reach", "_maxes", "_len", "scan_steps", "gc_scan_steps")

    def __init__(self) -> None:
        self._keys: List[list] = []   # chunks of (start, owner) keys
        self._ends: List[List[int]] = []  # per-chunk interval end points
        self._reach: List[List[int]] = []  # per-chunk prefix maxima of ends
        self._maxes: list = []
        self._len = 0
        #: Work performed by :meth:`overlapping`: one step per interval
        #: entry examined plus one per chunk probed (monotone counter;
        #: deterministic, used by the op-count regression gate).
        self.scan_steps = 0
        #: Surviving entries examined by :meth:`pop_ending_before`.
        self.gc_scan_steps = 0

    def __len__(self) -> int:
        return self._len

    def __iter__(self) -> Iterator[Interval]:
        for ci, chunk in enumerate(self._keys):
            ends = self._ends[ci]
            for j, (start, owner) in enumerate(chunk):
                yield Interval(start, ends[j], owner)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, interval: Interval) -> None:
        """Insert an interval; duplicate (start, owner) pairs overwrite."""
        self.insert(interval.start, interval.end, interval.owner)

    def insert(self, start: int, end: int, owner: Any) -> None:
        """Columnar :meth:`add`: insert ``[start, end]`` owned by ``owner``
        without constructing an :class:`Interval` record."""
        key = (start, owner)
        maxes = self._maxes
        if not maxes:
            self._keys.append([key])
            self._ends.append([end])
            self._reach.append([end])
            maxes.append(key)
            self._len = 1
            return
        ci = bisect_left(maxes, key)
        if ci == len(maxes):
            # New greatest start: append to the last chunk.
            ci -= 1
            chunk = self._keys[ci]
            chunk.append(key)
            self._ends[ci].append(end)
            reach = self._reach[ci]
            prev = reach[-1]
            reach.append(prev if prev >= end else end)
            maxes[ci] = key
        else:
            chunk = self._keys[ci]
            j = bisect_left(chunk, key)
            if chunk[j] == key:
                self._ends[ci][j] = end
                self._fix_reach(ci, j)
                return
            chunk.insert(j, key)
            self._ends[ci].insert(j, end)
            self._reach[ci].insert(j, 0)  # placeholder, fixed below
            self._fix_reach(ci, j)
        self._len += 1
        if len(chunk) > _SPLIT:
            self._split(ci)

    def remove(self, interval: Interval) -> None:
        """Remove an interval previously added; KeyError if absent."""
        key = (interval.start, interval.owner)
        maxes = self._maxes
        if maxes:
            ci = bisect_left(maxes, key)
            if ci != len(maxes):
                chunk = self._keys[ci]
                j = bisect_left(chunk, key)
                if chunk[j] == key:
                    del chunk[j]
                    del self._ends[ci][j]
                    del self._reach[ci][j]
                    self._len -= 1
                    if not chunk:
                        del self._keys[ci]
                        del self._ends[ci]
                        del self._reach[ci]
                        del maxes[ci]
                    else:
                        if j == len(chunk):
                            maxes[ci] = chunk[-1]
                        self._fix_reach(ci, j)
                    return
        raise KeyError(key)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def overlapping(self, query: Interval) -> List[Interval]:
        """Return all stored intervals overlapping ``query`` (closed ends).

        The owner of ``query`` is *not* excluded; callers filter self-hits.

        Candidates start at or before ``query.end``; among those, the
        reach arrays prune every entry whose prefix cannot reach back to
        ``query.start`` — whole chunks in ``O(1)``, the dead prefix of
        the first surviving chunk by bisection.
        """
        maxes = self._maxes
        if not maxes:
            return []
        q_start = query.start
        q_end = query.end
        bound = (q_end, _OWNER_MAX)
        key_chunks = self._keys
        # Chunks fully below the start bound, plus one partial chunk.
        full = bisect_left(maxes, bound)
        n_chunks = len(maxes)
        hits: List[Interval] = []
        scanned = full  # one probe per chunk header examined below
        for ci in range(full):
            reach = self._reach[ci]
            if reach[-1] < q_start:
                continue  # nothing in this chunk reaches the query
            chunk = key_chunks[ci]
            ends = self._ends[ci]
            j = bisect_left(reach, q_start)
            scanned += len(ends) - j
            for i in range(j, len(ends)):
                end = ends[i]
                if end >= q_start:
                    start, owner = chunk[i]
                    hits.append(Interval(start, end, owner))
        if full < n_chunks:
            chunk = key_chunks[full]
            j_hi = bisect_right(chunk, bound)
            scanned += 1
            if j_hi:
                reach = self._reach[full]
                ends = self._ends[full]
                j = bisect_left(reach, q_start, 0, j_hi)
                scanned += j_hi - j
                for i in range(j, j_hi):
                    end = ends[i]
                    if end >= q_start:
                        start, owner = chunk[i]
                        hits.append(Interval(start, end, owner))
        self.scan_steps += scanned
        return hits

    def overlap_add(self, start: int, end: int, owner: Any) -> List[Tuple[Any, int]]:
        """Query-then-insert fused for the checker's step ②.

        Returns ``(owner, end)`` pairs of the stored intervals overlapping
        ``[start, end]`` — excluding intervals owned by ``owner`` itself —
        then inserts the interval.  One call replaces the overlap query,
        the self-hit filter, and the insert that every written key
        performs per transaction, and the scan runs over the columnar int
        arrays only; ``scan_steps`` accounting is identical to
        :meth:`overlapping`.
        """
        maxes = self._maxes
        hits: List[Tuple[Any, int]] = []
        if maxes:
            bound = (end, _OWNER_MAX)
            full = bisect_left(maxes, bound)
            n_chunks = len(maxes)
            scanned = full
            for ci in range(full):
                reach = self._reach[ci]
                if reach[-1] < start:
                    continue
                chunk = self._keys[ci]
                ends = self._ends[ci]
                j = bisect_left(reach, start)
                scanned += len(ends) - j
                for i in range(j, len(ends)):
                    hit_end = ends[i]
                    if hit_end >= start:
                        hit_owner = chunk[i][1]
                        if hit_owner != owner:
                            hits.append((hit_owner, hit_end))
            if full < n_chunks:
                chunk = self._keys[full]
                j_hi = bisect_right(chunk, bound)
                scanned += 1
                if j_hi:
                    reach = self._reach[full]
                    ends = self._ends[full]
                    j = bisect_left(reach, start, 0, j_hi)
                    scanned += j_hi - j
                    for i in range(j, j_hi):
                        hit_end = ends[i]
                        if hit_end >= start:
                            hit_owner = chunk[i][1]
                            if hit_owner != owner:
                                hits.append((hit_owner, hit_end))
            self.scan_steps += scanned
        self.insert(start, end, owner)
        return hits

    def first_start_after(self, point: int) -> Optional[Interval]:
        """Return the interval with the least start strictly after ``point``."""
        maxes = self._maxes
        if not maxes:
            return None
        bound = (point, _OWNER_MAX)
        ci = bisect_right(maxes, bound)
        if ci == len(maxes):
            return None
        j = bisect_right(self._keys[ci], bound)
        start, owner = self._keys[ci][j]
        return Interval(start, self._ends[ci][j], owner)

    def pop_ending_before(self, point: int) -> List[Interval]:
        """Remove and return intervals wholly before ``point`` (end < point).

        Garbage collection: once the GC-safe timestamp passes an interval's
        end, no future transaction can overlap it.  Because ``end >=
        start``, every interval starting at or after ``point`` survives,
        so the sweep stops at the first chunk with no starts below
        ``point``; a chunk whose total reach is below ``point`` is dropped
        wholesale without examining its entries.
        """
        maxes = self._maxes
        if not maxes:
            return []
        doomed: List[Interval] = []
        examined = 0
        low_bound = (point,)  # sorts before every (point, owner) key
        ci = 0
        while ci < len(self._keys):
            chunk = self._keys[ci]
            if chunk[0] >= low_bound:
                break  # all remaining starts >= point -> all survive
            reach = self._reach[ci]
            ends = self._ends[ci]
            if reach[-1] < point:
                # Every interval in the chunk ends below the watermark
                # (and therefore also starts below it): drop the chunk
                # wholesale without examining entries.
                doomed.extend(
                    Interval(key[0], ends[j], key[1]) for j, key in enumerate(chunk)
                )
                del self._keys[ci]
                del self._ends[ci]
                del self._reach[ci]
                del maxes[ci]
                continue
            # Mixed chunk: filter in place.  Only starts below the
            # watermark are candidates; later entries survive untouched.
            j_hi = bisect_left(chunk, low_bound)
            dead = [j for j in range(j_hi) if ends[j] < point]
            examined += j_hi - len(dead)
            if dead:
                doomed.extend(
                    Interval(chunk[j][0], ends[j], chunk[j][1]) for j in dead
                )
                for j in reversed(dead):
                    del chunk[j]
                    del ends[j]
                    del reach[j]
                if not chunk:
                    del self._keys[ci]
                    del self._ends[ci]
                    del self._reach[ci]
                    del maxes[ci]
                    continue
                maxes[ci] = chunk[-1]
                self._fix_reach(ci, 0)
            ci += 1
        self._len -= len(doomed)
        self.gc_scan_steps += examined
        return doomed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _fix_reach(self, ci: int, j: int) -> None:
        """Recompute the reach suffix of chunk ``ci`` from position ``j``."""
        ends = self._ends[ci]
        reach = self._reach[ci]
        running = reach[j - 1] if j else ends[0]
        if not j:
            reach[0] = running
            j = 1
        for i in range(j, len(ends)):
            end = ends[i]
            if end > running:
                running = end
            reach[i] = running

    def _split(self, ci: int) -> None:
        keys = self._keys[ci]
        ends = self._ends[ci]
        reach = self._reach[ci]
        half = len(keys) >> 1
        self._keys[ci] = keys[:half]
        self._ends[ci] = ends[:half]
        self._keys.insert(ci + 1, keys[half:])
        self._ends.insert(ci + 1, ends[half:])
        self._maxes.insert(ci, keys[half - 1])
        # The left half keeps its prefix of the existing reach array
        # verbatim; only the right half's maxima start over.
        right: List[int] = []
        running = None
        for end in self._ends[ci + 1]:
            running = end if running is None or end > running else running
            right.append(running)
        self._reach[ci] = reach[:half]
        self._reach.insert(ci + 1, right)


class _OwnerMax:
    """Sentinel comparing greater than every owner, for range endpoints."""

    __slots__ = ()

    def __lt__(self, other: Any) -> bool:
        return False

    def __gt__(self, other: Any) -> bool:
        return other is not self

    def __eq__(self, other: Any) -> bool:
        return other is self

    def __hash__(self) -> int:
        return 0x0FFEE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<owner-max>"


_OWNER_MAX = _OwnerMax()
