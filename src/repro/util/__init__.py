"""Utility layer: sorted containers, sizing, randomness, intervals.

These modules have no dependencies on the rest of :mod:`repro` and provide
the data-structure substrate the checkers are built on:

- :mod:`repro.util.sortedmap` — a two-level bisect-backed sorted map with floor /
  ceiling queries, used for Aion's timestamp-versioned structures and the
  incremental event timeline.
- :mod:`repro.util.intervals` — a per-key interval index with overlap
  queries, used for NOCONFLICT re-checking.
- :mod:`repro.util.sizeof` — recursive deep-size estimation, used by the
  memory figures (Fig 7, 10, 16).
- :mod:`repro.util.rng` — deterministic random-stream helpers shared by the
  workload generators and delay models.
"""

from repro.util.intervals import Interval, IntervalIndex
from repro.util.rng import derive_rng, make_rng
from repro.util.sizeof import deep_sizeof
from repro.util.sortedmap import SortedMap

__all__ = [
    "Interval",
    "IntervalIndex",
    "SortedMap",
    "deep_sizeof",
    "derive_rng",
    "make_rng",
]
