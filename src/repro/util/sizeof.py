"""Recursive deep-size estimation for memory experiments.

The paper's memory figures (Fig 7, Fig 10, Fig 16) profile the JVM heap.
Python has no free equivalent, so the benchmark harness samples
:func:`deep_sizeof` over the checker's live structures instead: a
``sys.getsizeof`` walk with cycle protection that understands the
container types the checkers actually use (dict, list, set, tuple,
objects with ``__dict__`` or ``__slots__``, and the project's own
:class:`~repro.util.sortedmap.SortedMap`).

The walk is iterative — checker structures include pointer chains tens
of thousands of nodes long (skiplist levels), far beyond the interpreter
recursion limit.  The estimate is deliberately simple: shared objects
are counted once thanks to the memo, and interpreter overhead is
excluded, which is exactly what is needed to compare *relative* memory
between checkers and to observe sawtooth GC behaviour over time.
"""

from __future__ import annotations

import sys
from typing import Any, Iterable, List, Optional, Set

__all__ = ["deep_sizeof"]

_ATOMIC = (str, bytes, bytearray, int, float, complex, bool, type(None))


def deep_sizeof(obj: Any, *, _seen: Optional[Set[int]] = None) -> int:
    """Return an estimate of the total bytes reachable from ``obj``.

    Objects already visited (by identity) are counted once, so aliased
    subtrees — e.g. transactions shared between the timeline and per-key
    indexes — do not inflate the estimate.
    """
    seen = _seen if _seen is not None else set()
    total = 0
    stack: List[Any] = [obj]
    while stack:
        current = stack.pop()
        current_id = id(current)
        if current_id in seen:
            continue
        seen.add(current_id)
        try:
            total += sys.getsizeof(current)
        except TypeError:  # pragma: no cover - exotic objects without sizeof
            pass

        if isinstance(current, _ATOMIC):
            continue
        if isinstance(current, dict):
            stack.extend(current.keys())
            stack.extend(current.values())
            continue
        if isinstance(current, (list, tuple, set, frozenset)):
            stack.extend(current)
            continue

        # Generic objects: follow __dict__ and __slots__.
        obj_dict = getattr(current, "__dict__", None)
        if obj_dict is not None:
            stack.append(obj_dict)
        for slot in _all_slots(type(current)):
            try:
                stack.append(getattr(current, slot))
            except AttributeError:
                continue
    return total


def _all_slots(cls: type) -> Iterable[str]:
    for klass in cls.__mro__:
        slots = getattr(klass, "__slots__", ())
        if isinstance(slots, str):
            yield slots
        else:
            yield from slots
