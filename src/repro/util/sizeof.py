"""Recursive deep-size estimation for memory experiments.

The paper's memory figures (Fig 7, Fig 10, Fig 16) profile the JVM heap.
Python has no free equivalent, so the benchmark harness samples
:func:`deep_sizeof` over the checker's live structures instead: a
``sys.getsizeof`` walk with cycle protection that understands the
container types the checkers actually use (dict, list, set, tuple,
objects with ``__dict__`` or ``__slots__``, and the project's own
chunked containers — :class:`~repro.util.sortedmap.SortedMap` and
:class:`~repro.util.intervals.IntervalIndex`).

The walk is iterative — checker structures can hold pointer chains far
beyond the interpreter recursion limit.  The two-level chunked
containers get a dedicated fast path: their backbone lists (key chunks,
value chunks, the ``maxes`` index, interval ``reach`` arrays) are
accounted per chunk, and scalar keys (timestamps, `(ts, tid)` tuples)
are sized inline instead of round-tripping through the generic
memoized stack.  Memory sampling runs *inside* capped-memory
experiments, so the sampler must stay cheap relative to the checker.

The flat layouts the batch kernel introduced (PR 6) get the same
treatment: the versioned structures' adaptive small-key representation
(``(ts_list, payload_list)`` parallel lists), their lazy GC min-heaps of
``(commit_ts, key)`` entries, and :class:`~repro.util.intervals.Interval`
``__slots__`` records are all sized inline — a checker under a memory
cap holds millions of these, and pushing each through the memoized
stack made the sampler a profile line of its own.  The versioned
structures live a layer above this module, so they contribute their fast
paths through :func:`register_sizer` instead of being imported here
(keeping the util layer dependency-free, and letting the module that
owns a layout own its accounting).

Accounting tolerance: the fast paths do not identity-memoize scalar
keys, so a small interned int appearing as both a key and a value can
be counted twice where the skiplist-era walk counted it once; ``maxes``
entries alias chunk keys and heap-entry keys alias index keys, so
neither is re-counted.  Both effects are bounded by a few machine words
per entry — well within the run-to-run noise of the memory figures, and
the relative comparisons (checker vs checker, sawtooth over time) the
figures make are unaffected.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Dict, Iterable, List, Optional, Set

from repro.util.intervals import Interval, IntervalIndex
from repro.util.sortedmap import SortedMap

__all__ = ["deep_sizeof", "register_sizer"]

_ATOMIC = (str, bytes, bytearray, int, float, complex, bool, type(None))

#: Exact-type dispatch table of inline fast paths.  A sizer receives
#: ``(obj, stack)`` — the object to account and the walk's work stack —
#: and returns the bytes it counted *beyond* ``sys.getsizeof(obj)``
#: (already added by the walk); rich sub-objects it does not size inline
#: go onto ``stack`` for the generic memoized walk.
_SIZERS: Dict[type, Callable[[Any, List[Any]], int]] = {}


def register_sizer(cls: type, sizer: Callable[[Any, List[Any]], int]) -> None:
    """Register an inline fast path for instances of exactly ``cls``."""
    _SIZERS[cls] = sizer


def deep_sizeof(obj: Any, *, _seen: Optional[Set[int]] = None) -> int:
    """Return an estimate of the total bytes reachable from ``obj``.

    Objects already visited (by identity) are counted once, so aliased
    subtrees — e.g. transactions shared between the timeline and per-key
    indexes — do not inflate the estimate.
    """
    seen = _seen if _seen is not None else set()
    total = 0
    stack: List[Any] = [obj]
    while stack:
        current = stack.pop()
        current_id = id(current)
        if current_id in seen:
            continue
        seen.add(current_id)
        try:
            total += sys.getsizeof(current)
        except TypeError:  # pragma: no cover - exotic objects without sizeof
            pass

        if isinstance(current, _ATOMIC):
            continue
        if isinstance(current, dict):
            stack.extend(current.keys())
            stack.extend(current.values())
            continue
        if isinstance(current, (list, tuple, set, frozenset)):
            stack.extend(current)
            continue
        sizer = _SIZERS.get(type(current))
        if sizer is not None:
            total += sizer(current, stack)
            continue
        if isinstance(current, SortedMap):
            total += _chunked_bytes(
                current._keys, current._vals, current._maxes, None, stack
            )
            continue
        if isinstance(current, IntervalIndex):
            # Columnar layout: keys are (start, owner) tuples, ends and
            # reach are parallel plain-int chunks sized inline.
            total += sys.getsizeof(current._keys) + sys.getsizeof(current._maxes)
            for chunk in current._keys:
                total += sys.getsizeof(chunk)
                for key in chunk:
                    total += (
                        sys.getsizeof(key)
                        + sys.getsizeof(key[0])
                        + sys.getsizeof(key[1])
                    )
            for column in (current._ends, current._reach):
                total += sys.getsizeof(column)
                for chunk in column:
                    total += sys.getsizeof(chunk) + sum(map(sys.getsizeof, chunk))
            continue

        # Generic objects: follow __dict__ and __slots__.
        obj_dict = getattr(current, "__dict__", None)
        if obj_dict is not None:
            stack.append(obj_dict)
        for slot in _all_slots(type(current)):
            try:
                stack.append(getattr(current, slot))
            except AttributeError:
                continue
    return total


def _chunked_bytes(
    key_chunks: List[list],
    val_chunks: List[list],
    maxes: list,
    reach_chunks: Optional[List[list]],
    stack: List[Any],
) -> int:
    """Per-chunk accounting for the two-level chunked containers.

    Keys are sized inline (no memoization — see the module docstring for
    the tolerance argument); values are rich objects and go through the
    generic memoized walk via ``stack``.  ``maxes`` entries alias chunk
    keys, so only the index list itself is counted.
    """
    getsizeof = sys.getsizeof
    total = getsizeof(key_chunks) + getsizeof(val_chunks) + getsizeof(maxes)
    for chunk in key_chunks:
        total += getsizeof(chunk)
        for key in chunk:
            if type(key) is tuple:
                total += getsizeof(key)
                for part in key:
                    total += getsizeof(part)
            else:
                total += getsizeof(key)
    for chunk in val_chunks:
        total += getsizeof(chunk)
        stack.extend(chunk)
    if reach_chunks is not None:
        total += getsizeof(reach_chunks)
        for chunk in reach_chunks:
            # Reach entries are plain ints; one getsizeof per entry.
            total += getsizeof(chunk) + sum(map(getsizeof, chunk))
    return total


def _all_slots(cls: type) -> Iterable[str]:
    for klass in cls.__mro__:
        slots = getattr(klass, "__slots__", ())
        if isinstance(slots, str):
            yield slots
        else:
            yield from slots


def _interval_bytes(interval: Interval, stack: List[Any]) -> int:
    """Inline the three scalar fields instead of three stack round trips.

    NOCONFLICT state holds one Interval per resident write; the fields
    are timestamps and a tid, all sized directly (no memoization — the
    tolerance argument in the module docstring applies).
    """
    getsizeof = sys.getsizeof
    return (
        getsizeof(interval.start)
        + getsizeof(interval.end)
        + getsizeof(interval.owner)
    )


register_sizer(Interval, _interval_bytes)
