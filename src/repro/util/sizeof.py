"""Recursive deep-size estimation for memory experiments.

The paper's memory figures (Fig 7, Fig 10, Fig 16) profile the JVM heap.
Python has no free equivalent, so the benchmark harness samples
:func:`deep_sizeof` over the checker's live structures instead: a
``sys.getsizeof`` walk with cycle protection that understands the
container types the checkers actually use (dict, list, set, tuple,
objects with ``__dict__`` or ``__slots__``, and the project's own
chunked containers — :class:`~repro.util.sortedmap.SortedMap` and
:class:`~repro.util.intervals.IntervalIndex`).

The walk is iterative — checker structures can hold pointer chains far
beyond the interpreter recursion limit.  The two-level chunked
containers get a dedicated fast path: their backbone lists (key chunks,
value chunks, the ``maxes`` index, interval ``reach`` arrays) are
accounted per chunk, and scalar keys (timestamps, `(ts, tid)` tuples)
are sized inline instead of round-tripping through the generic
memoized stack.  Memory sampling runs *inside* capped-memory
experiments, so the sampler must stay cheap relative to the checker.

Accounting tolerance: the fast path does not identity-memoize scalar
keys, so a small interned int appearing as both a key and a value can
be counted twice where the skiplist-era walk counted it once; ``maxes``
entries alias chunk keys and are deliberately *not* re-counted.  Both
effects are bounded by a few machine words per entry — well within the
run-to-run noise of the memory figures, and the relative comparisons
(checker vs checker, sawtooth over time) the figures make are
unaffected.
"""

from __future__ import annotations

import sys
from typing import Any, Iterable, List, Optional, Set

from repro.util.intervals import IntervalIndex
from repro.util.sortedmap import SortedMap

__all__ = ["deep_sizeof"]

_ATOMIC = (str, bytes, bytearray, int, float, complex, bool, type(None))


def deep_sizeof(obj: Any, *, _seen: Optional[Set[int]] = None) -> int:
    """Return an estimate of the total bytes reachable from ``obj``.

    Objects already visited (by identity) are counted once, so aliased
    subtrees — e.g. transactions shared between the timeline and per-key
    indexes — do not inflate the estimate.
    """
    seen = _seen if _seen is not None else set()
    total = 0
    stack: List[Any] = [obj]
    while stack:
        current = stack.pop()
        current_id = id(current)
        if current_id in seen:
            continue
        seen.add(current_id)
        try:
            total += sys.getsizeof(current)
        except TypeError:  # pragma: no cover - exotic objects without sizeof
            pass

        if isinstance(current, _ATOMIC):
            continue
        if isinstance(current, dict):
            stack.extend(current.keys())
            stack.extend(current.values())
            continue
        if isinstance(current, (list, tuple, set, frozenset)):
            stack.extend(current)
            continue
        if isinstance(current, SortedMap):
            total += _chunked_bytes(
                current._keys, current._vals, current._maxes, None, stack
            )
            continue
        if isinstance(current, IntervalIndex):
            total += _chunked_bytes(
                current._keys, current._vals, current._maxes, current._reach, stack
            )
            continue

        # Generic objects: follow __dict__ and __slots__.
        obj_dict = getattr(current, "__dict__", None)
        if obj_dict is not None:
            stack.append(obj_dict)
        for slot in _all_slots(type(current)):
            try:
                stack.append(getattr(current, slot))
            except AttributeError:
                continue
    return total


def _chunked_bytes(
    key_chunks: List[list],
    val_chunks: List[list],
    maxes: list,
    reach_chunks: Optional[List[list]],
    stack: List[Any],
) -> int:
    """Per-chunk accounting for the two-level chunked containers.

    Keys are sized inline (no memoization — see the module docstring for
    the tolerance argument); values are rich objects and go through the
    generic memoized walk via ``stack``.  ``maxes`` entries alias chunk
    keys, so only the index list itself is counted.
    """
    getsizeof = sys.getsizeof
    total = getsizeof(key_chunks) + getsizeof(val_chunks) + getsizeof(maxes)
    for chunk in key_chunks:
        total += getsizeof(chunk)
        for key in chunk:
            if type(key) is tuple:
                total += getsizeof(key)
                for part in key:
                    total += getsizeof(part)
            else:
                total += getsizeof(key)
    for chunk in val_chunks:
        total += getsizeof(chunk)
        stack.extend(chunk)
    if reach_chunks is not None:
        total += getsizeof(reach_chunks)
        for chunk in reach_chunks:
            # Reach entries are plain ints; one getsizeof per entry.
            total += getsizeof(chunk) + sum(map(getsizeof, chunk))
    return total


def _all_slots(cls: type) -> Iterable[str]:
    for klass in cls.__mro__:
        slots = getattr(klass, "__slots__", ())
        if isinstance(slots, str):
            yield slots
        else:
            yield from slots
