"""List (append) workloads for list-history checking (Fig 5b).

List histories replace writes with appends of unique elements and reads
with whole-list reads — the data type Elle handles best (the full version
order is recoverable from list prefixes), implemented on SQL databases as
comma-separated TEXT columns with ``INSERT ... ON DUPLICATE KEY UPDATE``
(§IV-B).  Appends are writers under first-committer-wins, so concurrent
appends to one key conflict and retry, exactly like register writes.
"""

from __future__ import annotations

import itertools
from random import Random
from typing import Optional

from repro.db.engine import Database
from repro.db.oracle import TimestampOracle
from repro.histories.model import History
from repro.util.rng import derive_rng
from repro.workloads.distributions import make_chooser
from repro.workloads.driver import InterleavedDriver, TxnProgram
from repro.workloads.spec import WorkloadSpec

__all__ = ["generate_list_history"]


def generate_list_history(
    spec: WorkloadSpec,
    *,
    oracle: Optional[TimestampOracle] = None,
) -> History:
    """Generate a list history for a Table I parameter point.

    ``read_ratio`` governs the fraction of whole-list reads; the rest are
    appends of globally unique elements.  Lists start empty: ⊥T writes
    the empty tuple to every key.
    """
    database = Database(oracle, isolation=spec.isolation)
    for key in spec.keys:
        database.store.install(key, 0, ())
    from repro.db.cdc import CdcRecord
    from repro.histories.model import INIT_SID, INIT_TID, INIT_TS, Operation, OpKind

    database.cdc.emit(
        CdcRecord(
            tid=INIT_TID,
            sid=INIT_SID,
            sno=0,
            start_ts=INIT_TS,
            commit_ts=INIT_TS,
            ops=tuple(Operation(OpKind.WRITE, key, ()) for key in spec.keys),
        )
    )

    chooser = make_chooser(spec.distribution, spec.n_keys)
    elements = itertools.count(1)

    def factory(_sid: int, rng: Random) -> TxnProgram:
        program = TxnProgram()
        for _ in range(spec.ops_per_txn):
            key = spec.key_name(chooser.choose(rng))
            if rng.random() < spec.read_ratio:
                program.read_list(key)
            else:
                program.append(key, next(elements))
        return program

    driver = InterleavedDriver(
        database,
        spec.n_sessions,
        seed=derive_rng(spec.seed, "list-driver").randrange(2**63),
    )
    driver.run(factory, spec.n_transactions)
    return database.cdc.to_history()
