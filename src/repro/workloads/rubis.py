"""The RUBiS auction workload (§V-A1).

"RUBiS emulates an auction platform similar to eBay, allowing users to
create accounts, list items, place bids, and leave comments.  We
initialized the marketplace with 200 users and 800 items."

Unlike Twitter, the key population is (mostly) fixed up front — users and
items are pre-created and transactions update them in place — so
``frontier_ts`` stays small and Aion checks RUBiS faster than Twitter
(Fig 12c/d, 23).

Schema (key-value):

- ``user:{u}:rating`` / ``user:{u}:balance``   — account state;
- ``item:{i}:price`` / ``item:{i}:bids`` / ``item:{i}:top_bidder``
  — auction state, contended read-modify-write on popular items;
- ``item:{i}:comments``                        — comment counter.
"""

from __future__ import annotations

import itertools
from random import Random
from typing import List, Optional

from repro.db.engine import Database, IsolationLevel
from repro.db.oracle import TimestampOracle
from repro.histories.model import History
from repro.util.rng import derive_rng
from repro.workloads.distributions import ZipfianKeys
from repro.workloads.driver import InterleavedDriver, TxnProgram

__all__ = ["RubisWorkload", "generate_rubis_history"]

#: Operation mix: view item, place bid, comment, check account, sell item.
_VIEW, _BID, _COMMENT, _ACCOUNT = 0.40, 0.30, 0.10, 0.15


class RubisWorkload:
    """Program factory for the auction site."""

    def __init__(self, n_users: int = 200, n_items: int = 800, *, seed: int = 2025) -> None:
        self.n_users = n_users
        self.n_items = n_items
        self._values = itertools.count(1)
        # Popular items attract most bids (zipfian item popularity).
        self._item_popularity = ZipfianKeys(n_items)

    def initial_keys(self) -> List[str]:
        keys: List[str] = []
        for user in range(self.n_users):
            keys.append(f"user:{user}:rating")
            keys.append(f"user:{user}:balance")
        for item in range(self.n_items):
            keys.append(f"item:{item}:price")
            keys.append(f"item:{item}:bids")
            keys.append(f"item:{item}:top_bidder")
            keys.append(f"item:{item}:comments")
        return keys

    def make_program(self, _sid: int, rng: Random) -> TxnProgram:
        draw = rng.random()
        if draw < _VIEW:
            return self._view_item(rng)
        if draw < _VIEW + _BID:
            return self._place_bid(rng)
        if draw < _VIEW + _BID + _COMMENT:
            return self._comment(rng)
        if draw < _VIEW + _BID + _COMMENT + _ACCOUNT:
            return self._check_account(rng)
        return self._sell_item(rng)

    # ------------------------------------------------------------------

    def _pick_item(self, rng: Random) -> int:
        return self._item_popularity.choose(rng)

    def _view_item(self, rng: Random) -> TxnProgram:
        item = self._pick_item(rng)
        return (
            TxnProgram()
            .read(f"item:{item}:price")
            .read(f"item:{item}:bids")
            .read(f"item:{item}:top_bidder")
        )

    def _place_bid(self, rng: Random) -> TxnProgram:
        item = self._pick_item(rng)
        user = rng.randrange(self.n_users)
        return (
            TxnProgram()
            .read(f"item:{item}:price")
            .read(f"item:{item}:bids")
            .write(f"item:{item}:price", next(self._values))
            .write(f"item:{item}:bids", next(self._values))
            .write(f"item:{item}:top_bidder", user)
        )

    def _comment(self, rng: Random) -> TxnProgram:
        item = self._pick_item(rng)
        user = rng.randrange(self.n_users)
        return (
            TxnProgram()
            .read(f"item:{item}:comments")
            .write(f"item:{item}:comments", next(self._values))
            .read(f"user:{user}:rating")
            .write(f"user:{user}:rating", next(self._values))
        )

    def _check_account(self, rng: Random) -> TxnProgram:
        user = rng.randrange(self.n_users)
        return TxnProgram().read(f"user:{user}:balance").read(f"user:{user}:rating")

    def _sell_item(self, rng: Random) -> TxnProgram:
        item = self._pick_item(rng)
        user = rng.randrange(self.n_users)
        return (
            TxnProgram()
            .read(f"user:{user}:balance")
            .write(f"item:{item}:price", next(self._values))
            .write(f"user:{user}:balance", next(self._values))
        )


def generate_rubis_history(
    n_transactions: int,
    *,
    n_users: int = 200,
    n_items: int = 800,
    n_sessions: int = 24,
    seed: int = 2025,
    oracle: Optional[TimestampOracle] = None,
    isolation: IsolationLevel = IsolationLevel.SI,
) -> History:
    """Run the auction site and return the captured history."""
    workload = RubisWorkload(n_users, n_items, seed=seed)
    database = Database(oracle, isolation=isolation)
    database.initialize(workload.initial_keys(), 0)
    driver = InterleavedDriver(
        database,
        n_sessions,
        seed=derive_rng(seed, "rubis").randrange(2**63),
    )
    driver.run(workload.make_program, n_transactions)
    return database.cdc.to_history()
