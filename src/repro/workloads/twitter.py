"""The Twitter-clone workload (§V-A1).

"A simple clone of Twitter: users create new tweets, follow/unfollow
other accounts, and view a timeline of recent tweets from those they
follow.  We involved 500 users, each posting tweets of 140 words."

The schema is key-value:

- ``tweet:{id}``             — tweet content (a fresh key per post);
- ``user:{u}:last``          — the user's most recent tweet id key;
- ``user:{u}:count``         — posting counter (read-modify-write);
- ``follow:{u}:{v}``         — follow-edge marker.

Because every post mints a *new* ``tweet:`` key, the key population
grows with the history — the property §VI-B points to when Aion's
throughput drops on Twitter relative to RUBiS (``frontier_ts`` must
track many more keys).  Timeline transactions read followees' ``last``
pointers and then the referenced tweets; a pointer may be unborn or
point at a tweet whose writer is still invisible to the snapshot, which
the checkers handle through the ``None``/⊥v convention.
"""

from __future__ import annotations

import itertools
from random import Random
from typing import List, Optional

from repro.db.engine import Database, IsolationLevel
from repro.db.oracle import TimestampOracle
from repro.histories.model import History
from repro.util.rng import derive_rng
from repro.workloads.driver import InterleavedDriver, TxnProgram

__all__ = ["TwitterWorkload", "generate_twitter_history"]

#: Operation mix (weights): post, follow, unfollow, timeline.
_POST, _FOLLOW, _UNFOLLOW, _TIMELINE = 0.45, 0.10, 0.05, 0.40


class TwitterWorkload:
    """Program factory over evolving application state."""

    def __init__(self, n_users: int = 500, *, timeline_size: int = 5, seed: int = 2025) -> None:
        self.n_users = n_users
        self.timeline_size = timeline_size
        self._tweet_ids = itertools.count(1)
        self._values = itertools.count(1)
        #: tweets known to exist at generation time, per user.
        self._tweets_by_user: List[List[int]] = [[] for _ in range(n_users)]
        self._seed = seed

    def initial_keys(self) -> List[str]:
        keys = []
        for user in range(self.n_users):
            keys.append(f"user:{user}:last")
            keys.append(f"user:{user}:count")
        return keys

    def make_program(self, _sid: int, rng: Random) -> TxnProgram:
        user = rng.randrange(self.n_users)
        draw = rng.random()
        if draw < _POST:
            return self._post(user)
        if draw < _POST + _FOLLOW:
            return self._follow(user, rng, unfollow=False)
        if draw < _POST + _FOLLOW + _UNFOLLOW:
            return self._follow(user, rng, unfollow=True)
        return self._timeline(user, rng)

    # ------------------------------------------------------------------

    def _post(self, user: int) -> TxnProgram:
        tweet_id = next(self._tweet_ids)
        self._tweets_by_user[user].append(tweet_id)
        program = TxnProgram()
        # 140 "words" condensed into one content value; the content is a
        # unique int (checkers compare values, not prose).
        program.write(f"tweet:{tweet_id}", next(self._values))
        program.read(f"user:{user}:count")
        program.write(f"user:{user}:count", next(self._values))
        program.write(f"user:{user}:last", tweet_id)
        return program

    def _follow(self, user: int, rng: Random, *, unfollow: bool) -> TxnProgram:
        other = rng.randrange(self.n_users)
        program = TxnProgram()
        program.read(f"user:{other}:count")
        program.write(f"follow:{user}:{other}", 0 if unfollow else next(self._values))
        return program

    def _timeline(self, user: int, rng: Random) -> TxnProgram:
        program = TxnProgram()
        for _ in range(self.timeline_size):
            other = rng.randrange(self.n_users)
            program.read(f"user:{other}:last")
            tweets = self._tweets_by_user[other]
            if tweets:
                program.read(f"tweet:{rng.choice(tweets)}")
        if len(program) == 0:
            program.read(f"user:{user}:last")
        return program


def generate_twitter_history(
    n_transactions: int,
    *,
    n_users: int = 500,
    n_sessions: int = 24,
    seed: int = 2025,
    oracle: Optional[TimestampOracle] = None,
    isolation: IsolationLevel = IsolationLevel.SI,
) -> History:
    """Run the Twitter clone and return the captured history."""
    workload = TwitterWorkload(n_users, seed=seed)
    database = Database(oracle, isolation=isolation)
    database.initialize(workload.initial_keys(), 0)
    driver = InterleavedDriver(
        database,
        n_sessions,
        seed=derive_rng(seed, "twitter").randrange(2**63),
    )
    driver.run(workload.make_program, n_transactions)
    return database.cdc.to_history()
