"""Key-access distributions: uniform, zipfian, hotspot (Table I).

Each chooser maps a :class:`random.Random` stream onto key indexes.  The
zipfian chooser uses the standard YCSB-style exponent (0.99) and a
precomputed cumulative distribution (O(log n) sampling via bisect); the
hotspot chooser sends 80% of accesses to the first 20% of the keyspace.
"""

from __future__ import annotations

import bisect
from random import Random
from typing import List, Protocol

__all__ = ["KeyChooser", "UniformKeys", "ZipfianKeys", "HotspotKeys", "make_chooser"]


class KeyChooser(Protocol):
    """Samples key indexes in ``[0, n_keys)``."""

    def choose(self, rng: Random) -> int:
        ...


class UniformKeys:
    """Every key equally likely."""

    def __init__(self, n_keys: int) -> None:
        if n_keys < 1:
            raise ValueError("n_keys must be >= 1")
        self.n_keys = n_keys

    def choose(self, rng: Random) -> int:
        return rng.randrange(self.n_keys)


class ZipfianKeys:
    """Zipf-distributed popularity: P(i) ∝ 1 / (i + 1)^theta."""

    def __init__(self, n_keys: int, theta: float = 0.99) -> None:
        if n_keys < 1:
            raise ValueError("n_keys must be >= 1")
        if theta <= 0:
            raise ValueError("theta must be positive")
        self.n_keys = n_keys
        self.theta = theta
        weights = [1.0 / (i + 1) ** theta for i in range(n_keys)]
        total = sum(weights)
        cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        cumulative[-1] = 1.0
        self._cdf = cumulative

    def choose(self, rng: Random) -> int:
        return bisect.bisect_left(self._cdf, rng.random())


class HotspotKeys:
    """A hot fraction of the keyspace receives most accesses.

    Defaults follow the paper: 80% of operations target the hottest 20%
    of keys.
    """

    def __init__(self, n_keys: int, hot_fraction: float = 0.2, hot_probability: float = 0.8) -> None:
        if n_keys < 1:
            raise ValueError("n_keys must be >= 1")
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0.0 <= hot_probability <= 1.0:
            raise ValueError("hot_probability must be in [0, 1]")
        self.n_keys = n_keys
        self.hot_count = max(1, int(n_keys * hot_fraction))
        self.hot_probability = hot_probability

    def choose(self, rng: Random) -> int:
        if rng.random() < self.hot_probability:
            return rng.randrange(self.hot_count)
        if self.hot_count >= self.n_keys:
            return rng.randrange(self.n_keys)
        return rng.randrange(self.hot_count, self.n_keys)


def make_chooser(distribution: str, n_keys: int) -> KeyChooser:
    """Build the chooser named by a Table I distribution value."""
    if distribution == "uniform":
        return UniformKeys(n_keys)
    if distribution == "zipfian":
        return ZipfianKeys(n_keys)
    if distribution == "hotspot":
        return HotspotKeys(n_keys)
    raise ValueError(f"unknown distribution {distribution!r}")
