"""A TPC-C-style workload with composite primary keys (appendix, Fig 24).

The paper evaluates TPC-C offline only: "TPC-C involves numerous tables,
most of which use composite primary keys, resulting in a very large range
of primary-key values" — maintaining a versioned frontier per key online
is expensive, while the offline checker's single global frontier handles
it easily.  This module reproduces that key structure: nine logical
tables keyed by composite identifiers, and the five standard transaction
profiles in the standard mix.

Only the data access pattern matters to the checkers (keys touched, reads
vs writes); business logic is reduced to unique-value writes.
"""

from __future__ import annotations

import itertools
from random import Random
from typing import List, Optional

from repro.db.engine import Database, IsolationLevel
from repro.db.oracle import TimestampOracle
from repro.histories.model import History
from repro.util.rng import derive_rng
from repro.workloads.driver import InterleavedDriver, TxnProgram

__all__ = ["TpccWorkload", "generate_tpcc_history"]

#: Standard TPC-C mix: new-order 45%, payment 43%, order-status 4%,
#: delivery 4%, stock-level 4%.
_NEW_ORDER, _PAYMENT, _ORDER_STATUS, _DELIVERY = 0.45, 0.43, 0.04, 0.04

_DISTRICTS_PER_WAREHOUSE = 10
_CUSTOMERS_PER_DISTRICT = 30
_ITEMS = 1000


class TpccWorkload:
    """Program factory over the TPC-C schema."""

    def __init__(self, n_warehouses: int = 2, *, seed: int = 2025) -> None:
        self.n_warehouses = n_warehouses
        self._values = itertools.count(1)
        self._order_ids = itertools.count(1)
        #: orders known to exist, per (warehouse, district).
        self._orders: dict[tuple, List[int]] = {}

    # ------------------------------------------------------------------

    def initial_keys(self) -> List[str]:
        keys: List[str] = []
        for w in range(self.n_warehouses):
            keys.append(f"warehouse:{w}:ytd")
            for d in range(_DISTRICTS_PER_WAREHOUSE):
                keys.append(f"district:{w}:{d}:ytd")
                keys.append(f"district:{w}:{d}:next_oid")
                for c in range(_CUSTOMERS_PER_DISTRICT):
                    keys.append(f"customer:{w}:{d}:{c}:balance")
                    keys.append(f"customer:{w}:{d}:{c}:ytd")
            for i in range(_ITEMS):
                keys.append(f"stock:{w}:{i}:qty")
        return keys

    def make_program(self, _sid: int, rng: Random) -> TxnProgram:
        draw = rng.random()
        if draw < _NEW_ORDER:
            return self._new_order(rng)
        if draw < _NEW_ORDER + _PAYMENT:
            return self._payment(rng)
        if draw < _NEW_ORDER + _PAYMENT + _ORDER_STATUS:
            return self._order_status(rng)
        if draw < _NEW_ORDER + _PAYMENT + _ORDER_STATUS + _DELIVERY:
            return self._delivery(rng)
        return self._stock_level(rng)

    # ------------------------------------------------------------------

    def _pick_wd(self, rng: Random) -> tuple:
        return rng.randrange(self.n_warehouses), rng.randrange(_DISTRICTS_PER_WAREHOUSE)

    def _new_order(self, rng: Random) -> TxnProgram:
        w, d = self._pick_wd(rng)
        c = rng.randrange(_CUSTOMERS_PER_DISTRICT)
        oid = next(self._order_ids)
        self._orders.setdefault((w, d), []).append(oid)
        program = (
            TxnProgram()
            .read(f"district:{w}:{d}:next_oid")
            .write(f"district:{w}:{d}:next_oid", next(self._values))
            .read(f"customer:{w}:{d}:{c}:balance")
            .write(f"order:{w}:{d}:{oid}:status", next(self._values))
        )
        for line in range(rng.randint(2, 6)):
            item = rng.randrange(_ITEMS)
            program.read(f"stock:{w}:{item}:qty")
            program.write(f"stock:{w}:{item}:qty", next(self._values))
            program.write(f"orderline:{w}:{d}:{oid}:{line}", next(self._values))
        return program

    def _payment(self, rng: Random) -> TxnProgram:
        w, d = self._pick_wd(rng)
        c = rng.randrange(_CUSTOMERS_PER_DISTRICT)
        return (
            TxnProgram()
            .read(f"warehouse:{w}:ytd")
            .write(f"warehouse:{w}:ytd", next(self._values))
            .read(f"district:{w}:{d}:ytd")
            .write(f"district:{w}:{d}:ytd", next(self._values))
            .read(f"customer:{w}:{d}:{c}:balance")
            .write(f"customer:{w}:{d}:{c}:balance", next(self._values))
            .write(f"history:{w}:{d}:{c}:{next(self._values)}", next(self._values))
        )

    def _order_status(self, rng: Random) -> TxnProgram:
        w, d = self._pick_wd(rng)
        c = rng.randrange(_CUSTOMERS_PER_DISTRICT)
        program = TxnProgram().read(f"customer:{w}:{d}:{c}:balance")
        orders = self._orders.get((w, d), [])
        if orders:
            oid = rng.choice(orders)
            program.read(f"order:{w}:{d}:{oid}:status")
        return program

    def _delivery(self, rng: Random) -> TxnProgram:
        w, d = self._pick_wd(rng)
        program = TxnProgram()
        orders = self._orders.get((w, d), [])
        if orders:
            oid = orders[rng.randrange(len(orders))]
            c = rng.randrange(_CUSTOMERS_PER_DISTRICT)
            program.read(f"order:{w}:{d}:{oid}:status")
            program.write(f"order:{w}:{d}:{oid}:status", next(self._values))
            program.read(f"customer:{w}:{d}:{c}:balance")
            program.write(f"customer:{w}:{d}:{c}:balance", next(self._values))
        else:
            program.read(f"district:{w}:{d}:next_oid")
        return program

    def _stock_level(self, rng: Random) -> TxnProgram:
        w, d = self._pick_wd(rng)
        program = TxnProgram().read(f"district:{w}:{d}:next_oid")
        for _ in range(rng.randint(3, 8)):
            program.read(f"stock:{w}:{rng.randrange(_ITEMS)}:qty")
        return program


def generate_tpcc_history(
    n_transactions: int,
    *,
    n_warehouses: int = 2,
    n_sessions: int = 24,
    seed: int = 2025,
    oracle: Optional[TimestampOracle] = None,
    isolation: IsolationLevel = IsolationLevel.SI,
) -> History:
    """Run the TPC-C mix and return the captured history."""
    workload = TpccWorkload(n_warehouses, seed=seed)
    database = Database(oracle, isolation=isolation)
    database.initialize(workload.initial_keys(), 0)
    driver = InterleavedDriver(
        database,
        n_sessions,
        seed=derive_rng(seed, "tpcc").randrange(2**63),
    )
    driver.run(workload.make_program, n_transactions)
    return database.cdc.to_history()
