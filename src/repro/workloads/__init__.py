"""Workload generators (§V-A1 and §VI-A).

- :mod:`repro.workloads.spec` — the Table I parameter space and defaults;
- :mod:`repro.workloads.generator` — the default key-value workload:
  interleaved sessions issuing read/write transactions over a keyspace
  with uniform / zipfian / hotspot access;
- :mod:`repro.workloads.list_workload` — list (append) histories;
- :mod:`repro.workloads.twitter` — the Twitter clone (500 users posting,
  following, reading timelines; key count grows with history length);
- :mod:`repro.workloads.rubis` — the RUBiS auction site (200 users, 800
  items; bounded key population);
- :mod:`repro.workloads.tpcc` — a TPC-C-style workload with composite
  primary keys across nine tables (used offline, Fig 24).

All generators run their transactions through :class:`repro.db.Database`
(so the histories are produced by an actual SI/SER engine, not sampled),
take explicit seeds, and return :class:`repro.histories.History`.
"""

from repro.workloads.distributions import HotspotKeys, KeyChooser, UniformKeys, ZipfianKeys
from repro.workloads.driver import InterleavedDriver, TxnProgram
from repro.workloads.generator import generate_default_history
from repro.workloads.list_workload import generate_list_history
from repro.workloads.rubis import generate_rubis_history
from repro.workloads.spec import PARAMETER_GRID, WorkloadSpec
from repro.workloads.tpcc import generate_tpcc_history
from repro.workloads.twitter import generate_twitter_history

__all__ = [
    "HotspotKeys",
    "InterleavedDriver",
    "KeyChooser",
    "PARAMETER_GRID",
    "TxnProgram",
    "UniformKeys",
    "WorkloadSpec",
    "ZipfianKeys",
    "generate_default_history",
    "generate_list_history",
    "generate_rubis_history",
    "generate_tpcc_history",
    "generate_twitter_history",
]
