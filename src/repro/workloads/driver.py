"""The interleaved workload driver.

Realistic histories need genuinely overlapping transaction lifetimes —
otherwise first-committer-wins never fires, every SI history is trivially
serializable, and the NOCONFLICT / write-skew machinery goes untested.
The driver therefore advances sessions *one operation at a time* in a
randomized interleaving: at each step one active session either begins a
transaction, executes its next operation, or commits.  Aborted
transactions are retried with a freshly generated program, and only
committed transactions count toward the target (§IV-B).

Workloads describe client intent as :class:`TxnProgram` — a list of steps
over keys — produced by a factory callback, which lets the application
workloads (Twitter, RUBiS, TPC-C) close over their own evolving state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.db.engine import Database, Session, TransactionAborted, TxnHandle

__all__ = ["TxnProgram", "Step", "InterleavedDriver"]

# One client step: ("r", key) | ("w", key, value) | ("a", key, element)
# | ("rl", key).
Step = Tuple[Any, ...]


@dataclass
class TxnProgram:
    """A client-side transaction plan."""

    steps: List[Step] = field(default_factory=list)

    def read(self, key: str) -> "TxnProgram":
        self.steps.append(("r", key))
        return self

    def write(self, key: str, value: Any) -> "TxnProgram":
        self.steps.append(("w", key, value))
        return self

    def append(self, key: str, element: Any) -> "TxnProgram":
        self.steps.append(("a", key, element))
        return self

    def read_list(self, key: str) -> "TxnProgram":
        self.steps.append(("rl", key))
        return self

    def __len__(self) -> int:
        return len(self.steps)


ProgramFactory = Callable[[int, Random], TxnProgram]


class _SessionState:
    __slots__ = ("session", "txn", "program", "position")

    def __init__(self, session: Session) -> None:
        self.session = session
        self.txn: Optional[TxnHandle] = None
        self.program: Optional[TxnProgram] = None
        self.position = 0


class InterleavedDriver:
    """Runs transaction programs over a database with interleaving.

    Parameters
    ----------
    database:
        The target :class:`~repro.db.Database`.
    n_sessions:
        Number of concurrent client sessions.
    seed:
        Drives both the interleaving and the per-program randomness.
    tick_oracle:
        When the database uses a :class:`~repro.db.DecentralizedOracle`,
        advance its physical clock every this many steps (None = never).
    max_retries:
        Abort-retry budget per committed transaction slot; exceeding it
        raises, which would indicate a pathologically contended workload.
    """

    def __init__(
        self,
        database: Database,
        n_sessions: int,
        *,
        seed: int = 0,
        tick_oracle: Optional[int] = None,
        max_retries: int = 200,
    ) -> None:
        if n_sessions < 1:
            raise ValueError("n_sessions must be >= 1")
        self._db = database
        self._rng = Random(seed)
        self._states = [_SessionState(database.session()) for _ in range(n_sessions)]
        self._tick_every = tick_oracle
        self._max_retries = max_retries
        self.n_committed = 0
        self.n_aborted = 0
        self.n_steps = 0

    @property
    def sessions(self) -> Sequence[Session]:
        return [state.session for state in self._states]

    def run(self, factory: ProgramFactory, n_transactions: int) -> int:
        """Execute until ``n_transactions`` commits; returns abort count.

        ``factory(session_index, rng)`` must return a fresh program each
        call; it is invoked again after an abort (retry with new intent,
        the common client pattern).
        """
        remaining = n_transactions
        retries = 0
        # Sessions with work left; sessions are recycled round-robin into
        # the pool so commits spread evenly.
        while remaining > 0 or any(state.txn is not None for state in self._states):
            state = self._rng.choice(self._states)
            self.n_steps += 1
            if self._tick_every is not None and self.n_steps % self._tick_every == 0:
                tick = getattr(self._db.oracle, "tick", None)
                if tick is not None:
                    tick()

            if state.txn is None:
                if remaining <= 0:
                    continue
                remaining -= 1
                state.program = factory(state.session.sid, self._rng)
                state.txn = state.session.begin()
                state.position = 0
                continue

            program = state.program
            assert program is not None
            if state.position < len(program.steps):
                self._execute_step(state.txn, program.steps[state.position])
                state.position += 1
                continue

            try:
                self._db.commit(state.txn, state.session)
                self.n_committed += 1
                retries = 0
            except TransactionAborted:
                self.n_aborted += 1
                retries += 1
                if retries > self._max_retries:
                    raise RuntimeError(
                        "retry budget exhausted: workload is livelocked on conflicts"
                    )
                remaining += 1  # the slot must still produce a commit
            state.txn = None
            state.program = None
        return self.n_aborted

    def _execute_step(self, txn: TxnHandle, step: Step) -> None:
        kind = step[0]
        if kind == "r":
            self._db.read(txn, step[1])
        elif kind == "w":
            self._db.write(txn, step[1], step[2])
        elif kind == "a":
            self._db.append(txn, step[1], step[2])
        elif kind == "rl":
            self._db.read_list(txn, step[1])
        else:
            raise ValueError(f"unknown step kind {kind!r}")
