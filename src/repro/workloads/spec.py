"""The default workload parameter space (Table I).

==============================  ==============================  =========
Parameter                       Values                          Default
==============================  ==============================  =========
Number of sessions (#sess)      10, 20, 50, 100, 200            50
Number of transactions (#txns)  5K, 100K, 200K, 500K, 1000K     100K
Operations per txn (#ops/txn)   5, 15, 30, 50, 100              15
Ratio of read operations        10%–90%                         50%
Number of keys (#keys)          200–5000                        1000
Key-access distribution         uniform, zipfian, hotspot       zipfian
==============================  ==============================  =========

"Hotspot" means 80% of operations target 20% of the keys (§V-A1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.db.engine import IsolationLevel

__all__ = ["WorkloadSpec", "PARAMETER_GRID"]


#: The exact value grids of Table I.
PARAMETER_GRID: Dict[str, Tuple] = {
    "n_sessions": (10, 20, 50, 100, 200),
    "n_transactions": (5_000, 100_000, 200_000, 500_000, 1_000_000),
    "ops_per_txn": (5, 15, 30, 50, 100),
    "read_ratio": (0.10, 0.30, 0.50, 0.70, 0.90),
    "n_keys": (200, 500, 1000, 2000, 5000),
    "distribution": ("uniform", "zipfian", "hotspot"),
}


@dataclass(frozen=True)
class WorkloadSpec:
    """One point in the Table I parameter space."""

    n_sessions: int = 50
    n_transactions: int = 100_000
    ops_per_txn: int = 15
    read_ratio: float = 0.5
    n_keys: int = 1000
    distribution: str = "zipfian"
    isolation: IsolationLevel = IsolationLevel.SI
    seed: int = 2025

    def __post_init__(self) -> None:
        if self.n_sessions < 1:
            raise ValueError("n_sessions must be >= 1")
        if self.n_transactions < 0:
            raise ValueError("n_transactions must be >= 0")
        if self.ops_per_txn < 1:
            raise ValueError("ops_per_txn must be >= 1")
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ValueError("read_ratio must be within [0, 1]")
        if self.n_keys < 1:
            raise ValueError("n_keys must be >= 1")
        if self.distribution not in PARAMETER_GRID["distribution"]:
            raise ValueError(
                f"unknown distribution {self.distribution!r}; "
                f"expected one of {PARAMETER_GRID['distribution']}"
            )

    def scaled(self, **overrides: object) -> "WorkloadSpec":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **overrides)  # type: ignore[arg-type]

    def key_name(self, index: int) -> str:
        """Canonical key naming shared by generator and tests."""
        return f"k{index:06d}"

    @property
    def keys(self) -> Tuple[str, ...]:
        return tuple(self.key_name(i) for i in range(self.n_keys))
