"""The default key-value workload (Table I).

Each transaction performs ``ops_per_txn`` operations; every operation is
a read with probability ``read_ratio``, else a write of a globally unique
value (uniqueness is what lets the Elle-style baselines recover
write-read dependencies, §VII).  Keys are drawn from the configured
distribution.  Transactions execute interleaved across ``n_sessions``
sessions against the SI (or SER) engine, and the returned history is
whatever the CDC captured — including the initial transaction ⊥T.
"""

from __future__ import annotations

import itertools
from random import Random
from typing import Optional

from repro.db.engine import Database
from repro.db.oracle import TimestampOracle
from repro.histories.model import History
from repro.util.rng import derive_rng
from repro.workloads.distributions import make_chooser
from repro.workloads.driver import InterleavedDriver, TxnProgram
from repro.workloads.spec import WorkloadSpec

__all__ = ["generate_default_history", "build_database"]


def build_database(spec: WorkloadSpec, oracle: Optional[TimestampOracle] = None) -> Database:
    """A database initialized for ``spec`` (all keys written by ⊥T)."""
    database = Database(oracle, isolation=spec.isolation)
    database.initialize(spec.keys, 0)
    return database


def generate_default_history(
    spec: WorkloadSpec,
    *,
    oracle: Optional[TimestampOracle] = None,
    database: Optional[Database] = None,
) -> History:
    """Generate one history for a Table I parameter point.

    A caller may pass its own ``database`` (e.g. with a skewed oracle or
    ``collect_history=False``); otherwise a fresh centralized-oracle SI
    database is built.
    """
    if database is None:
        database = build_database(spec, oracle)
    chooser = make_chooser(spec.distribution, spec.n_keys)
    values = itertools.count(1)

    def factory(_sid: int, rng: Random) -> TxnProgram:
        program = TxnProgram()
        for _ in range(spec.ops_per_txn):
            key = spec.key_name(chooser.choose(rng))
            if rng.random() < spec.read_ratio:
                program.read(key)
            else:
                program.write(key, next(values))
        return program

    driver = InterleavedDriver(
        database,
        spec.n_sessions,
        seed=derive_rng(spec.seed, "driver").randrange(2**63),
        tick_oracle=8 if hasattr(database.oracle, "tick") else None,
    )
    driver.run(factory, spec.n_transactions)
    return database.cdc.to_history()
