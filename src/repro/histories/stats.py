"""Descriptive statistics of a history.

Used by the benchmark harness to confirm that generated workloads match
their Table I parameters (sessions, transactions, operations per
transaction, read ratio, key count) before timing anything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.histories.model import History, INIT_TID, OpKind

__all__ = ["HistoryStats"]


@dataclass(frozen=True)
class HistoryStats:
    """Aggregate counts over a history (initial transaction excluded)."""

    n_transactions: int
    n_sessions: int
    n_operations: int
    n_reads: int
    n_writes: int
    n_appends: int
    n_list_reads: int
    n_keys: int
    n_read_only: int

    @classmethod
    def of(cls, history: History) -> "HistoryStats":
        """Compute statistics for ``history``, ignoring ⊥T."""
        n_txn = 0
        sessions: set[int] = set()
        n_ops = n_reads = n_writes = n_appends = n_list_reads = n_read_only = 0
        keys: set[str] = set()
        for txn in history:
            if txn.tid == INIT_TID:
                continue
            n_txn += 1
            sessions.add(txn.sid)
            if txn.is_read_only:
                n_read_only += 1
            for op in txn.ops:
                n_ops += 1
                keys.add(op.key)
                if op.kind is OpKind.READ:
                    n_reads += 1
                elif op.kind is OpKind.WRITE:
                    n_writes += 1
                elif op.kind is OpKind.APPEND:
                    n_appends += 1
                else:
                    n_list_reads += 1
        return cls(
            n_transactions=n_txn,
            n_sessions=len(sessions),
            n_operations=n_ops,
            n_reads=n_reads,
            n_writes=n_writes,
            n_appends=n_appends,
            n_list_reads=n_list_reads,
            n_keys=len(keys),
            n_read_only=n_read_only,
        )

    @property
    def ops_per_txn(self) -> float:
        """Mean operations per transaction (0.0 for an empty history)."""
        if self.n_transactions == 0:
            return 0.0
        return self.n_operations / self.n_transactions

    @property
    def read_ratio(self) -> float:
        """Fraction of operations that are reads (register or list)."""
        if self.n_operations == 0:
            return 0.0
        return (self.n_reads + self.n_list_reads) / self.n_operations
