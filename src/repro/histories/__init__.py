"""Transactional history model.

A *history* is the client-visible record of a database execution: a set of
transactions, each carrying its session identity, program-ordered
operations, and — because the checkers in this project are white-box —
its start and commit timestamps extracted from the database's log/CDC.

This package is the common currency of the repository: the database
substrate (:mod:`repro.db`) produces histories, the checkers
(:mod:`repro.core`, :mod:`repro.baselines`) consume them, and
:mod:`repro.histories.serialization` moves them to and from disk.
"""

from repro.histories.anomalies import ANOMALY_CATALOG, AnomalySpec
from repro.histories.builder import HistoryBuilder
from repro.histories.model import (
    INIT_TID,
    INIT_TS,
    History,
    OpKind,
    Operation,
    Transaction,
)
from repro.histories.ops import append, read, read_list, write
from repro.histories.serialization import (
    ColumnarBatch,
    history_from_jsonl,
    history_to_jsonl,
    load_history,
    load_history_packed,
    pack_columnar,
    save_history,
    save_history_packed,
    unpack_columnar,
)
from repro.histories.stats import HistoryStats
from repro.histories.validation import ValidationIssue, validate_history

__all__ = [
    "ANOMALY_CATALOG",
    "AnomalySpec",
    "ColumnarBatch",
    "INIT_TID",
    "INIT_TS",
    "History",
    "HistoryBuilder",
    "HistoryStats",
    "OpKind",
    "Operation",
    "Transaction",
    "ValidationIssue",
    "append",
    "history_from_jsonl",
    "history_to_jsonl",
    "load_history",
    "load_history_packed",
    "pack_columnar",
    "read",
    "read_list",
    "save_history",
    "save_history_packed",
    "unpack_columnar",
    "validate_history",
    "write",
]
