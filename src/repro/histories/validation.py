"""Structural validation of histories.

Validation is distinct from isolation checking: these checks catch
*malformed inputs* (duplicate ids, reused timestamps, gapped session
sequence numbers) that would make checker output meaningless, whereas the
checkers in :mod:`repro.core` report *isolation violations* of well-formed
histories.  The collector validates incoming batches before feeding Aion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.histories.model import INIT_TID, History

__all__ = ["ValidationIssue", "validate_history"]


@dataclass(frozen=True)
class ValidationIssue:
    """One structural problem found in a history."""

    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.code}] {self.message}"


def validate_history(history: History, *, require_init: bool = True) -> List[ValidationIssue]:
    """Return all structural issues found (empty list == well-formed).

    Checks performed:

    - ``init-missing`` — the initial transaction ⊥T is absent;
    - ``ts-reuse`` — a timestamp is used by two different transactions
      (the oracle issues unique timestamps, §II-A);
    - ``ts-order`` — ``start_ts > commit_ts`` (violates Eq. 1; also
      reported by the checkers, but a malformed input deserves a
      structural flag);
    - ``sno-gap`` — session sequence numbers are not ``0, 1, 2, ...``;
    - ``empty-txn`` — a transaction with no operations.
    """
    issues: List[ValidationIssue] = []

    if require_init and history.init_transaction is None:
        issues.append(
            ValidationIssue("init-missing", "history lacks the initial transaction ⊥T (tid 0)")
        )

    ts_owner: dict[int, int] = {}
    for txn in history:
        for ts in {txn.start_ts, txn.commit_ts}:
            owner = ts_owner.get(ts)
            if owner is not None and owner != txn.tid:
                issues.append(
                    ValidationIssue(
                        "ts-reuse",
                        f"timestamp {ts} used by transactions {owner} and {txn.tid}",
                    )
                )
            ts_owner[ts] = txn.tid
        if txn.start_ts > txn.commit_ts:
            issues.append(
                ValidationIssue(
                    "ts-order",
                    f"transaction {txn.tid} has start_ts {txn.start_ts} > commit_ts {txn.commit_ts}",
                )
            )
        if not txn.ops:
            issues.append(ValidationIssue("empty-txn", f"transaction {txn.tid} has no operations"))

    for sid, txns in history.sessions.items():
        expected = 0
        for txn in txns:
            if txn.sno != expected:
                issues.append(
                    ValidationIssue(
                        "sno-gap",
                        f"session {sid}: expected sno {expected}, found {txn.sno} (tid {txn.tid})",
                    )
                )
                expected = txn.sno
            expected += 1

    return issues
