"""Core data model: operations, transactions, histories.

Definitions follow §II-B of the paper:

- a **transaction** is a pair ``(O, po)`` of operations and program order —
  here an ordered tuple of :class:`Operation`;
- a **history** is a pair ``(T, SO)`` of transactions and session order —
  here sessions are identified by ``sid`` and ordered by ``sno`` within a
  session;
- timestamps are the white-box extension (§III): every transaction carries
  ``start_ts`` and ``commit_ts`` obtained from the database's timestamp
  oracle, with ``start_ts <= commit_ts`` (Eq. 1; equality is allowed for
  read-only transactions).

Every history is expected to contain the special *initial transaction*
``⊥T`` (``tid == INIT_TID``) that writes the initial value of every key
and precedes all other transactions (§II-B).  Helper constructors in
:mod:`repro.histories.builder` and the workload generators insert it
automatically.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "INIT_TID",
    "INIT_SID",
    "INIT_TS",
    "BOTTOM",
    "OpKind",
    "Operation",
    "Transaction",
    "History",
]


class _Bottom:
    """Singleton for the unreadable initial value ⊥v.

    §II: "we assume an artificial value ⊥v ∉ V" — the value every key
    holds before the initial transaction writes it.  Defined here at the
    data-model layer so both the checkers (:mod:`repro.core.common`
    re-exports it) and the serialization codecs can reference it without
    a layering cycle.
    """

    __slots__ = ()
    _instance: Optional["_Bottom"] = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"


BOTTOM = _Bottom()

#: Transaction id reserved for the initial transaction ⊥T.
INIT_TID = 0
#: Session id reserved for the initial transaction's singleton session.
INIT_SID = 0
#: Timestamp of the initial transaction (start == commit == INIT_TS).
INIT_TS = 0

Key = str
Value = Any


class OpKind(enum.Enum):
    """The kinds of client-visible operations.

    ``READ``/``WRITE`` act on register (key-value) data; ``APPEND`` and
    ``READ_LIST`` act on list data (§IV-B: comma-separated TEXT columns in
    TiDB/YugabyteDB, implemented here natively by the storage engine).
    """

    READ = "r"
    WRITE = "w"
    APPEND = "a"
    READ_LIST = "rl"


class Operation:
    """One operation of a transaction.

    ``value`` holds the written value for :attr:`OpKind.WRITE` and
    :attr:`OpKind.APPEND`, the value *returned* for :attr:`OpKind.READ`,
    and the full tuple of elements returned for :attr:`OpKind.READ_LIST`.
    """

    __slots__ = ("kind", "key", "value")

    def __init__(self, kind: OpKind, key: Key, value: Value) -> None:
        if kind is OpKind.READ_LIST and not isinstance(value, tuple):
            value = tuple(value)
        self.kind = kind
        self.key = key
        self.value = value

    @property
    def is_read(self) -> bool:
        return self.kind in (OpKind.READ, OpKind.READ_LIST)

    @property
    def is_write(self) -> bool:
        return self.kind in (OpKind.WRITE, OpKind.APPEND)

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, Operation)
            and self.kind is other.kind
            and self.key == other.key
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.key, self.value))

    def __repr__(self) -> str:
        if self.kind is OpKind.READ:
            return f"R({self.key}, {self.value!r})"
        if self.kind is OpKind.WRITE:
            return f"W({self.key}, {self.value!r})"
        if self.kind is OpKind.APPEND:
            return f"A({self.key}, {self.value!r})"
        return f"RL({self.key}, {self.value!r})"


class Transaction:
    """A committed transaction with white-box timestamps.

    Attributes mirror §III-B1 of the paper:

    - ``tid`` — unique transaction id;
    - ``sid`` — session id; ``sno`` — sequence number within the session;
    - ``ops`` — program-ordered operations;
    - ``start_ts`` / ``commit_ts`` — oracle timestamps.

    Derived, precomputed views used on checker hot paths:

    - ``write_keys`` — set of keys written (``T.wkey`` in the paper);
    - ``last_writes`` — final value written per key (``ext_val``);
    - ``external_reads`` — first read per key *before any write/read of
      that key in the transaction*, i.e. the reads governed by EXT.

    The operation tuple and the derived views are materialized lazily
    when the transaction was built by :meth:`from_parts` from a columnar
    wire batch (the checkers' batch kernel consumes the batch's flat
    arrays directly and most such transactions never need their
    :class:`Operation` objects); transactions built through ``__init__``
    keep the eager precomputation.
    """

    __slots__ = (
        "tid",
        "sid",
        "sno",
        "start_ts",
        "commit_ts",
        "_ops",
        "_write_keys",
        "_last_writes",
        "_external_reads",
        "_src",
    )

    def __init__(
        self,
        tid: int,
        sid: int,
        sno: int,
        ops: Sequence[Operation],
        start_ts: int,
        commit_ts: int,
    ) -> None:
        self.tid = tid
        self.sid = sid
        self.sno = sno
        self._ops: Optional[Tuple[Operation, ...]] = tuple(ops)
        self.start_ts = start_ts
        self.commit_ts = commit_ts
        self._src = None
        self._compute_derived()

    @classmethod
    def from_parts(
        cls,
        tid: int,
        sid: int,
        sno: int,
        start_ts: int,
        commit_ts: int,
        src: Any,
        lo: int,
        hi: int,
    ) -> "Transaction":
        """Allocation-lean constructor for columnar batch decoding.

        ``src`` is any object exposing ``build_ops(lo, hi)`` returning
        the operation tuple — in practice a
        :class:`~repro.histories.serialization.ColumnarBatch` — and
        ``[lo, hi)`` is this transaction's slice of its flat op arrays.
        The operation tuple and derived views are materialized only on
        first access; the batch kernel reads the flat arrays instead.
        """
        txn = cls.__new__(cls)
        txn.tid = tid
        txn.sid = sid
        txn.sno = sno
        txn.start_ts = start_ts
        txn.commit_ts = commit_ts
        txn._ops = None
        txn._write_keys = None
        txn._last_writes = None
        txn._external_reads = None
        txn._src = (src, lo, hi)
        return txn

    @property
    def ops(self) -> Tuple[Operation, ...]:
        ops = self._ops
        if ops is None:
            ops = self._materialize_ops()
        return ops

    def _materialize_ops(self) -> Tuple[Operation, ...]:
        src, lo, hi = self._src
        self._ops = ops = src.build_ops(lo, hi)
        self._src = None
        return ops

    @property
    def write_keys(self) -> frozenset:
        keys = self._write_keys
        if keys is None:
            self._compute_derived()
            keys = self._write_keys
        return keys

    @property
    def last_writes(self) -> Dict[Key, Value]:
        writes = self._last_writes
        if writes is None:
            self._compute_derived()
            writes = self._last_writes
        return writes

    @property
    def external_reads(self) -> Dict[Key, Operation]:
        reads = self._external_reads
        if reads is None:
            self._compute_derived()
            reads = self._external_reads
        return reads

    def _compute_derived(self) -> None:
        write_keys: set[Key] = set()
        last_writes: Dict[Key, Value] = {}
        external_reads: Dict[Key, Operation] = {}
        touched: set[Key] = set()
        for op in self.ops:
            if op.is_write:
                write_keys.add(op.key)
                last_writes[op.key] = op.value
                touched.add(op.key)
            else:
                if op.key not in touched:
                    external_reads[op.key] = op
                    touched.add(op.key)
        self._write_keys = frozenset(write_keys)
        self._last_writes = last_writes
        self._external_reads = external_reads

    @property
    def is_read_only(self) -> bool:
        return not self.write_keys

    @property
    def interval(self) -> Tuple[int, int]:
        """The transaction's lifetime ``[start_ts, commit_ts]``."""
        return (self.start_ts, self.commit_ts)

    def overlaps(self, other: "Transaction") -> bool:
        """True when the two lifetimes intersect (concurrency test)."""
        return self.start_ts <= other.commit_ts and other.start_ts <= self.commit_ts

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Transaction) and self.tid == other.tid

    def __hash__(self) -> int:
        return hash(self.tid)

    def __repr__(self) -> str:
        return (
            f"Txn(tid={self.tid}, sid={self.sid}, sno={self.sno}, "
            f"sts={self.start_ts}, cts={self.commit_ts}, ops={len(self.ops)})"
        )


class History:
    """A set of committed transactions plus the session order.

    The transaction list is stored in arrival order (for online replay);
    :meth:`by_commit_ts` and :meth:`events` provide the timestamp-sorted
    views the offline checkers need.  Only *committed* transactions are
    recorded, following the paper (§IV-B) and prior work.
    """

    __slots__ = ("transactions", "_by_tid", "_sessions")

    def __init__(self, transactions: Iterable[Transaction]) -> None:
        self.transactions: List[Transaction] = list(transactions)
        self._by_tid: Dict[int, Transaction] = {}
        self._sessions: Optional[Dict[int, List[Transaction]]] = None
        for txn in self.transactions:
            if txn.tid in self._by_tid:
                raise ValueError(f"duplicate transaction id {txn.tid}")
            self._by_tid[txn.tid] = txn

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self.transactions)

    def __contains__(self, tid: int) -> bool:
        return tid in self._by_tid

    def get(self, tid: int) -> Transaction:
        """Return the transaction with id ``tid``; KeyError if absent."""
        return self._by_tid[tid]

    @property
    def sessions(self) -> Mapping[int, List[Transaction]]:
        """Transactions grouped by session, ordered by ``sno``."""
        if self._sessions is None:
            grouped: Dict[int, List[Transaction]] = {}
            for txn in self.transactions:
                grouped.setdefault(txn.sid, []).append(txn)
            for txns in grouped.values():
                txns.sort(key=lambda t: t.sno)
            self._sessions = grouped
        return self._sessions

    @property
    def init_transaction(self) -> Optional[Transaction]:
        """The initial transaction ⊥T, when present."""
        return self._by_tid.get(INIT_TID)

    def keys(self) -> set[Key]:
        """All keys touched by any operation in the history."""
        keys: set[Key] = set()
        for txn in self.transactions:
            for op in txn.ops:
                keys.add(op.key)
        return keys

    def op_count(self) -> int:
        """Total number of operations (``M`` in the complexity analysis)."""
        return sum(len(txn.ops) for txn in self.transactions)

    def by_commit_ts(self) -> List[Transaction]:
        """Transactions sorted by commit timestamp (the AR order, Def. 5)."""
        return sorted(self.transactions, key=lambda t: (t.commit_ts, t.tid))

    def events(self) -> List[Tuple[int, int, Transaction]]:
        """All start/commit events sorted by timestamp.

        Each event is ``(ts, phase, txn)`` with ``phase`` 0 for start and
        1 for commit.  For a read-only transaction with ``start_ts ==
        commit_ts`` the start event deliberately precedes the commit
        event; across distinct transactions timestamps are unique by
        construction of the oracle, so the phase tiebreak is only ever
        exercised within one transaction.
        """
        events: List[Tuple[int, int, Transaction]] = []
        for txn in self.transactions:
            events.append((txn.start_ts, 0, txn))
            events.append((txn.commit_ts, 1, txn))
        events.sort(key=lambda e: (e[0], e[1], e[2].tid))
        return events

    def subset(self, n: int) -> "History":
        """A prefix of the first ``n`` transactions in arrival order."""
        return History(self.transactions[:n])

    def without_init(self) -> List[Transaction]:
        """All transactions except ⊥T, in arrival order."""
        return [t for t in self.transactions if t.tid != INIT_TID]

    def __repr__(self) -> str:
        return f"History({len(self.transactions)} txns, {self.op_count()} ops)"
