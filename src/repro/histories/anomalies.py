"""A zoo of canonical isolation anomalies as concrete histories.

Each constructor returns a small, timestamped history exhibiting one
textbook anomaly (Adya/Berenson taxonomy), with ground truth recorded in
:data:`ANOMALY_CATALOG`: whether the history is admissible under SI and
under SER, and — for timestamp-based checking — which axiom flags it.

These serve three audiences:

- tests: every checker is run against the whole catalogue and must agree
  with the ground truth its checking model can see;
- documentation: each constructor's docstring explains the anomaly;
- users: a quick way to sanity-check a checker deployment end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.violations import Axiom
from repro.histories.builder import HistoryBuilder
from repro.histories.model import History
from repro.histories.ops import read, write

__all__ = [
    "ANOMALY_CATALOG",
    "AnomalySpec",
    "dirty_read",
    "fractured_read",
    "long_fork",
    "lost_update",
    "non_repeatable_read",
    "read_own_writes_violation",
    "stale_sequential_read",
    "write_skew",
]


@dataclass(frozen=True)
class AnomalySpec:
    """Ground truth for one anomaly history."""

    name: str
    build: Callable[[], History]
    si_admissible: bool
    ser_admissible: bool
    #: The axiom a timestamp-based SI checker reports (None if SI-legal).
    si_axiom: Optional[Axiom]


def dirty_read() -> History:
    """T2 reads T1's write *before* T1 commits.

    Timestamps expose it directly: T1's commit is after T2's start, so
    T1 cannot be in T2's snapshot — the read of x=1 is unjustified (EXT).
    """
    b = HistoryBuilder(keys=["x"])
    b.txn(sid=1, start=1, commit=4, ops=[write("x", 1)])
    b.txn(sid=2, start=2, commit=3, ops=[read("x", 1)])
    return b.build()


def non_repeatable_read() -> History:
    """T reads x twice and sees two different values.

    Under SI both reads come from one snapshot, so the second read
    contradicts the first (INT — it disagrees with the transaction's own
    observed state).
    """
    b = HistoryBuilder(keys=["x"])
    b.txn(sid=1, start=1, commit=2, ops=[write("x", 1)])
    b.txn(sid=2, start=3, commit=6, ops=[read("x", 1), read("x", 2)])
    b.txn(sid=3, start=4, commit=5, ops=[write("x", 2)])
    return b.build()


def lost_update() -> History:
    """Two concurrent read-modify-writes of one key both commit.

    The second committer clobbers the first's update; SI forbids this
    via first-committer-wins (NOCONFLICT).
    """
    b = HistoryBuilder(keys=["x"])
    b.txn(sid=1, start=1, commit=3, ops=[read("x", 0), write("x", 1)])
    b.txn(sid=2, start=2, commit=4, ops=[read("x", 0), write("x", 2)])
    return b.build()


def write_skew() -> History:
    """The classic SI-legal, SER-illegal anomaly.

    Two concurrent transactions each read the key the other writes.
    Both snapshots are consistent (SI holds); no serial order justifies
    both reads (SER fails).
    """
    b = HistoryBuilder(keys=["x", "y"])
    b.txn(sid=1, start=1, commit=3, ops=[read("x", 0), write("y", 1)])
    b.txn(sid=2, start=2, commit=4, ops=[read("y", 0), write("x", 2)])
    return b.build()


def long_fork() -> History:
    """Two observers disagree on the order of two independent writes.

    T3 sees x=1 but not y=2; T4 sees y=2 but not x=1.  Snapshot
    timestamps make the disagreement impossible: one of the two reads
    contradicts its snapshot (EXT).
    """
    b = HistoryBuilder(keys=["x", "y"])
    b.txn(sid=1, start=1, commit=2, ops=[write("x", 1)])
    b.txn(sid=2, start=3, commit=4, ops=[write("y", 2)])
    b.txn(sid=3, start=5, commit=6, ops=[read("x", 1), read("y", 0)])
    b.txn(sid=4, start=7, commit=8, ops=[read("x", 0), read("y", 2)])
    return b.build()


def fractured_read() -> History:
    """A reader sees half of another transaction's atomic write pair.

    T1 writes x and y together; T2's snapshot contains T1's x but not
    its y — atomic visibility is broken (EXT on the stale read).
    """
    b = HistoryBuilder(keys=["x", "y"])
    b.txn(sid=1, start=1, commit=2, ops=[write("x", 1), write("y", 1)])
    b.txn(sid=2, start=3, commit=4, ops=[read("x", 1), read("y", 0)])
    return b.build()


def read_own_writes_violation() -> History:
    """A transaction fails to observe its own earlier write (INT)."""
    b = HistoryBuilder(keys=["x"])
    b.txn(sid=1, start=1, commit=2, ops=[write("x", 5), read("x", 0)])
    return b.build()


def stale_sequential_read() -> History:
    """The Fig 11 history: sequential commits, read of an old version.

    SI-illegal under timestamp-based checking (the snapshot must contain
    the later committed write) yet accepted by black-box checkers, which
    may order the reader before the second writer.
    """
    b = HistoryBuilder(keys=["x"])
    b.txn(sid=1, start=1, commit=2, ops=[write("x", 1)])
    b.txn(sid=2, start=3, commit=4, ops=[write("x", 2)])
    b.txn(sid=3, start=5, commit=6, ops=[read("x", 1)])
    return b.build()


ANOMALY_CATALOG: Dict[str, AnomalySpec] = {
    spec.name: spec
    for spec in (
        AnomalySpec("dirty-read", dirty_read, False, False, Axiom.EXT),
        AnomalySpec("non-repeatable-read", non_repeatable_read, False, False, Axiom.INT),
        AnomalySpec("lost-update", lost_update, False, False, Axiom.NOCONFLICT),
        AnomalySpec("write-skew", write_skew, True, False, None),
        AnomalySpec("long-fork", long_fork, False, False, Axiom.EXT),
        AnomalySpec("fractured-read", fractured_read, False, False, Axiom.EXT),
        AnomalySpec(
            "read-own-writes-violation", read_own_writes_violation, False, False, Axiom.INT
        ),
        AnomalySpec("stale-sequential-read", stale_sequential_read, False, False, Axiom.EXT),
    )
}
