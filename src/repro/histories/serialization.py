"""History serialization: JSON Lines on disk, columnar packs on the wire.

Two formats share this module so WAL files, history files, and wire
traffic keep one schema:

**JSON Lines** — one JSON object per transaction::

    {"tid": 7, "sid": 2, "sno": 3, "sts": 101, "cts": 108,
     "ops": [["w", "x", 5], ["r", "y", 0], ["a", "l", 9], ["rl", "l", [1, 9]]]}

The format is append-friendly (the online collector writes it as the
database runs) and loads in a single pass — the "loading" stage measured
by the runtime-decomposition figures (Fig 8, 9, 24).

**Columnar packs** — the struct-packed batch codec now lives in
:mod:`repro.core.colpack`, the shared home of every columnar framing
(wire blobs, packed WAL files, and the sharded executor's
shared-memory lane frames); :class:`ColumnarBatch`,
:func:`pack_columnar` and :func:`unpack_columnar` are re-exported here
unchanged, and :func:`save_history_packed` / :func:`load_history_packed`
wrap them in length-prefixed file chunks.

Value fidelity of the columnar codec deliberately matches the JSONL
codec: a top-level sequence value decodes as a *shallow* tuple (nested
sequences come back as lists, exactly as a JSON array round trip
produces), dict values survive unchanged, and ``⊥v`` — which JSONL
cannot carry at all — is a strict extension.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Sequence, Union

# Re-exported for compatibility: the columnar codec moved to
# repro.core.colpack so the shard lanes can share it without importing
# the history-file machinery.
from repro.core.colpack import (
    OP_APPEND,
    OP_READ,
    OP_READ_LIST,
    OP_WRITE,
    ColumnarBatch,
    _U32,
    pack_columnar,
    unpack_columnar,
)
from repro.histories.model import History, Operation, OpKind, Transaction

__all__ = [
    "txn_to_dict",
    "txn_from_dict",
    "history_to_jsonl",
    "history_from_jsonl",
    "save_history",
    "load_history",
    "iter_history_file",
    "ColumnarBatch",
    "pack_columnar",
    "unpack_columnar",
    "save_history_packed",
    "load_history_packed",
]

_OP_CODES = {kind.value: kind for kind in OpKind}


def _op_to_wire(op: Operation) -> List[Any]:
    value = list(op.value) if op.kind is OpKind.READ_LIST else op.value
    return [op.kind.value, op.key, value]


def _op_from_wire(wire: List[Any]) -> Operation:
    code, key, value = wire
    kind = _OP_CODES.get(code)
    if kind is None:
        raise ValueError(f"unknown operation code {code!r}")
    # List values are tuples in the model (list keys hold tuples; ⊥T may
    # write an empty tuple); JSON renders them as arrays, so any array
    # decodes back to a tuple regardless of operation kind.
    if isinstance(value, list):
        value = tuple(value)
    return Operation(kind, key, value)


def txn_to_dict(txn: Transaction) -> Dict[str, Any]:
    """Encode one transaction as a JSON-ready dict."""
    return {
        "tid": txn.tid,
        "sid": txn.sid,
        "sno": txn.sno,
        "sts": txn.start_ts,
        "cts": txn.commit_ts,
        "ops": [_op_to_wire(op) for op in txn.ops],
    }


def txn_from_dict(data: Dict[str, Any]) -> Transaction:
    """Decode one transaction from its dict form."""
    return Transaction(
        tid=data["tid"],
        sid=data["sid"],
        sno=data["sno"],
        ops=[_op_from_wire(wire) for wire in data["ops"]],
        start_ts=data["sts"],
        commit_ts=data["cts"],
    )


def history_to_jsonl(history: History) -> str:
    """Encode a whole history as JSON Lines text."""
    return "\n".join(json.dumps(txn_to_dict(txn), separators=(",", ":")) for txn in history)


def history_from_jsonl(text: str) -> History:
    """Decode a history from JSON Lines text (blank lines ignored)."""
    txns = [txn_from_dict(json.loads(line)) for line in text.splitlines() if line.strip()]
    return History(txns)


def save_history(history: History, path: Union[str, Path]) -> None:
    """Write a history to ``path`` in JSON Lines format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for txn in history:
            handle.write(json.dumps(txn_to_dict(txn), separators=(",", ":")))
            handle.write("\n")


def load_history(path: Union[str, Path]) -> History:
    """Read a history previously written by :func:`save_history`."""
    return History(iter_history_file(path))


def iter_history_file(path: Union[str, Path]) -> Iterator[Transaction]:
    """Stream transactions from a JSONL file without materializing all.

    Used by the online collector to replay pre-collected logs at a
    controlled rate (§VI-A: "we pre-collected logs and then fed historical
    data exceeding the checkers' throughput").
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield txn_from_dict(json.loads(line))


# ----------------------------------------------------------------------
# Packed history / WAL files
# ----------------------------------------------------------------------

_PACK_FILE_MAGIC = b"RPCH"  # "RePro Columnar History"
_PACK_CHUNK = 2048


def save_history_packed(
    history: Union[History, Sequence[Transaction]],
    path: Union[str, Path],
    *,
    chunk_size: int = _PACK_CHUNK,
) -> None:
    """Write a history as length-prefixed columnar chunks.

    The binary sibling of :func:`save_history`, sharing the wire's
    columnar codec: a 4-byte magic, then per chunk a u32 byte length and
    one :func:`pack_columnar` blob.  Append-friendly like the JSONL
    format — a WAL writer can emit one chunk per commit batch.
    """
    txns = list(history)
    path = Path(path)
    with path.open("wb") as handle:
        handle.write(_PACK_FILE_MAGIC)
        for lo in range(0, len(txns), chunk_size):
            blob = pack_columnar(txns[lo : lo + chunk_size])
            handle.write(_U32.pack(len(blob)))
            handle.write(blob)


def load_history_packed(path: Union[str, Path]) -> History:
    """Read a history previously written by :func:`save_history_packed`."""
    return History(iter_history_packed(path))


def iter_history_packed(path: Union[str, Path]) -> Iterator[Transaction]:
    """Stream transactions from a packed history file chunk by chunk."""
    path = Path(path)
    with path.open("rb") as handle:
        magic = handle.read(len(_PACK_FILE_MAGIC))
        if magic != _PACK_FILE_MAGIC:
            raise ValueError(f"not a packed history file: {path}")
        while True:
            header = handle.read(4)
            if not header:
                return
            if len(header) != 4:
                raise ValueError("packed history file truncated in chunk header")
            (length,) = _U32.unpack(header)
            blob = handle.read(length)
            if len(blob) != length:
                raise ValueError("packed history file truncated in chunk body")
            batch, consumed = unpack_columnar(blob)
            if consumed != length:
                raise ValueError("packed history chunk has trailing bytes")
            yield from batch.transactions()
