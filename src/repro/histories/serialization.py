"""History serialization: JSON Lines on disk, dicts in memory.

The on-disk format is one JSON object per transaction::

    {"tid": 7, "sid": 2, "sno": 3, "sts": 101, "cts": 108,
     "ops": [["w", "x", 5], ["r", "y", 0], ["a", "l", 9], ["rl", "l", [1, 9]]]}

The format is append-friendly (the online collector writes it as the
database runs) and loads in a single pass — the "loading" stage measured
by the runtime-decomposition figures (Fig 8, 9, 24).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Union

from repro.histories.model import History, Operation, OpKind, Transaction

__all__ = [
    "txn_to_dict",
    "txn_from_dict",
    "history_to_jsonl",
    "history_from_jsonl",
    "save_history",
    "load_history",
    "iter_history_file",
]

_OP_CODES = {kind.value: kind for kind in OpKind}


def _op_to_wire(op: Operation) -> List[Any]:
    value = list(op.value) if op.kind is OpKind.READ_LIST else op.value
    return [op.kind.value, op.key, value]


def _op_from_wire(wire: List[Any]) -> Operation:
    code, key, value = wire
    kind = _OP_CODES.get(code)
    if kind is None:
        raise ValueError(f"unknown operation code {code!r}")
    # List values are tuples in the model (list keys hold tuples; ⊥T may
    # write an empty tuple); JSON renders them as arrays, so any array
    # decodes back to a tuple regardless of operation kind.
    if isinstance(value, list):
        value = tuple(value)
    return Operation(kind, key, value)


def txn_to_dict(txn: Transaction) -> Dict[str, Any]:
    """Encode one transaction as a JSON-ready dict."""
    return {
        "tid": txn.tid,
        "sid": txn.sid,
        "sno": txn.sno,
        "sts": txn.start_ts,
        "cts": txn.commit_ts,
        "ops": [_op_to_wire(op) for op in txn.ops],
    }


def txn_from_dict(data: Dict[str, Any]) -> Transaction:
    """Decode one transaction from its dict form."""
    return Transaction(
        tid=data["tid"],
        sid=data["sid"],
        sno=data["sno"],
        ops=[_op_from_wire(wire) for wire in data["ops"]],
        start_ts=data["sts"],
        commit_ts=data["cts"],
    )


def history_to_jsonl(history: History) -> str:
    """Encode a whole history as JSON Lines text."""
    return "\n".join(json.dumps(txn_to_dict(txn), separators=(",", ":")) for txn in history)


def history_from_jsonl(text: str) -> History:
    """Decode a history from JSON Lines text (blank lines ignored)."""
    txns = [txn_from_dict(json.loads(line)) for line in text.splitlines() if line.strip()]
    return History(txns)


def save_history(history: History, path: Union[str, Path]) -> None:
    """Write a history to ``path`` in JSON Lines format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for txn in history:
            handle.write(json.dumps(txn_to_dict(txn), separators=(",", ":")))
            handle.write("\n")


def load_history(path: Union[str, Path]) -> History:
    """Read a history previously written by :func:`save_history`."""
    return History(iter_history_file(path))


def iter_history_file(path: Union[str, Path]) -> Iterator[Transaction]:
    """Stream transactions from a JSONL file without materializing all.

    Used by the online collector to replay pre-collected logs at a
    controlled rate (§VI-A: "we pre-collected logs and then fed historical
    data exceeding the checkers' throughput").
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield txn_from_dict(json.loads(line))
