"""History serialization: JSON Lines on disk, columnar packs on the wire.

Two formats share this module so WAL files, history files, and wire
traffic keep one schema:

**JSON Lines** — one JSON object per transaction::

    {"tid": 7, "sid": 2, "sno": 3, "sts": 101, "cts": 108,
     "ops": [["w", "x", 5], ["r", "y", 0], ["a", "l", 9], ["rl", "l", [1, 9]]]}

The format is append-friendly (the online collector writes it as the
database runs) and loads in a single pass — the "loading" stage measured
by the runtime-decomposition figures (Fig 8, 9, 24).

**Columnar packs** — :func:`pack_columnar` renders a whole batch of
transactions as one struct-packed binary blob: the five per-transaction
integer columns (tids/sids/snos/start/commit timestamps) packed as
big-endian ``i64`` arrays, per-frame key interning through a string
table, op kinds as one byte each, and op values split into three
columns — a 1-byte type tag per op, one bulk-packed ``i64`` array
holding every in-range int value in op order (the dominant register
case, packed and unpacked in a single struct call), and an overflow
stream for the rest (``⊥v``/strs/floats/tuples carry no JSON envelope;
dicts and out-of-range ints fall back to an embedded JSON payload).
:func:`unpack_columnar` decodes the blob into a :class:`ColumnarBatch` —
flat parallel arrays the checkers' batch kernel consumes directly,
without materializing per-transaction dicts or :class:`Operation`
objects.  The binary wire protocol's submit frames
(:mod:`repro.service.framing`) and the packed WAL/history files
(:func:`save_history_packed`) are both this blob.

Value fidelity of the columnar codec deliberately matches the JSONL
codec: a top-level sequence value decodes as a *shallow* tuple (nested
sequences come back as lists, exactly as a JSON array round trip
produces), dict values survive unchanged, and ``⊥v`` — which JSONL
cannot carry at all — is a strict extension.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.histories.model import BOTTOM
from repro.histories.model import History, Operation, OpKind, Transaction

__all__ = [
    "txn_to_dict",
    "txn_from_dict",
    "history_to_jsonl",
    "history_from_jsonl",
    "save_history",
    "load_history",
    "iter_history_file",
    "ColumnarBatch",
    "pack_columnar",
    "unpack_columnar",
    "save_history_packed",
    "load_history_packed",
]

_OP_CODES = {kind.value: kind for kind in OpKind}


def _op_to_wire(op: Operation) -> List[Any]:
    value = list(op.value) if op.kind is OpKind.READ_LIST else op.value
    return [op.kind.value, op.key, value]


def _op_from_wire(wire: List[Any]) -> Operation:
    code, key, value = wire
    kind = _OP_CODES.get(code)
    if kind is None:
        raise ValueError(f"unknown operation code {code!r}")
    # List values are tuples in the model (list keys hold tuples; ⊥T may
    # write an empty tuple); JSON renders them as arrays, so any array
    # decodes back to a tuple regardless of operation kind.
    if isinstance(value, list):
        value = tuple(value)
    return Operation(kind, key, value)


def txn_to_dict(txn: Transaction) -> Dict[str, Any]:
    """Encode one transaction as a JSON-ready dict."""
    return {
        "tid": txn.tid,
        "sid": txn.sid,
        "sno": txn.sno,
        "sts": txn.start_ts,
        "cts": txn.commit_ts,
        "ops": [_op_to_wire(op) for op in txn.ops],
    }


def txn_from_dict(data: Dict[str, Any]) -> Transaction:
    """Decode one transaction from its dict form."""
    return Transaction(
        tid=data["tid"],
        sid=data["sid"],
        sno=data["sno"],
        ops=[_op_from_wire(wire) for wire in data["ops"]],
        start_ts=data["sts"],
        commit_ts=data["cts"],
    )


def history_to_jsonl(history: History) -> str:
    """Encode a whole history as JSON Lines text."""
    return "\n".join(json.dumps(txn_to_dict(txn), separators=(",", ":")) for txn in history)


def history_from_jsonl(text: str) -> History:
    """Decode a history from JSON Lines text (blank lines ignored)."""
    txns = [txn_from_dict(json.loads(line)) for line in text.splitlines() if line.strip()]
    return History(txns)


def save_history(history: History, path: Union[str, Path]) -> None:
    """Write a history to ``path`` in JSON Lines format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for txn in history:
            handle.write(json.dumps(txn_to_dict(txn), separators=(",", ":")))
            handle.write("\n")


def load_history(path: Union[str, Path]) -> History:
    """Read a history previously written by :func:`save_history`."""
    return History(iter_history_file(path))


def iter_history_file(path: Union[str, Path]) -> Iterator[Transaction]:
    """Stream transactions from a JSONL file without materializing all.

    Used by the online collector to replay pre-collected logs at a
    controlled rate (§VI-A: "we pre-collected logs and then fed historical
    data exceeding the checkers' throughput").
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield txn_from_dict(json.loads(line))


# ======================================================================
# Columnar packs: struct-packed transaction batches
# ======================================================================

#: Op kind codes of the columnar format (one byte per op).
OP_READ, OP_WRITE, OP_APPEND, OP_READ_LIST = 0, 1, 2, 3
_CODE_OF_KIND = {
    OpKind.READ: OP_READ,
    OpKind.WRITE: OP_WRITE,
    OpKind.APPEND: OP_APPEND,
    OpKind.READ_LIST: OP_READ_LIST,
}
_KIND_OF_CODE = (OpKind.READ, OpKind.WRITE, OpKind.APPEND, OpKind.READ_LIST)

#: Value type tags of the columnar value stream.
_VAL_NONE = 0
_VAL_BOTTOM = 1
_VAL_FALSE = 2
_VAL_TRUE = 3
_VAL_INT = 4      # i64 payload
_VAL_FLOAT = 5    # f64 payload
_VAL_STR = 6      # u32 length + UTF-8 payload
_VAL_TUPLE = 7    # u32 count + tagged items
_VAL_JSON = 8     # u32 length + UTF-8 JSON payload (dicts, big ints, …)

_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1
_INT_TAG = bytes([_VAL_INT])

_HDR = struct.Struct("!III")          # n_txns, n_keys, n_ops
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_TAG_I64 = struct.Struct("!Bq")
_TAG_F64 = struct.Struct("!Bd")
_TAG_U32 = struct.Struct("!BI")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")


class ColumnarBatch:
    """A batch of transactions as flat parallel arrays.

    The decode target of :func:`unpack_columnar` and the layout the
    checkers' batch kernel routes from directly: five per-transaction
    integer columns, an op-offset column (``op_offsets[i] ..
    op_offsets[i+1]`` is transaction ``i``'s slice of the flat op
    arrays), op kinds as a bytes column, and resolved key strings plus
    decoded values per op.  No per-transaction dicts, no
    :class:`Operation` objects — those materialize lazily through
    :meth:`transactions` / :meth:`build_ops` only when something off the
    hot path (GC spill, the sharded router) asks.
    """

    __slots__ = (
        "tids",
        "sids",
        "snos",
        "starts",
        "commits",
        "op_offsets",
        "op_kinds",
        "op_keys",
        "op_values",
    )

    def __init__(
        self,
        tids: Sequence[int],
        sids: Sequence[int],
        snos: Sequence[int],
        starts: Sequence[int],
        commits: Sequence[int],
        op_offsets: Sequence[int],
        op_kinds: bytes,
        op_keys: List[str],
        op_values: List[Any],
    ) -> None:
        self.tids = tids
        self.sids = sids
        self.snos = snos
        self.starts = starts
        self.commits = commits
        self.op_offsets = op_offsets
        self.op_kinds = op_kinds
        self.op_keys = op_keys
        self.op_values = op_values

    def __len__(self) -> int:
        return len(self.tids)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ColumnarBatch({len(self)} txns, {len(self.op_kinds)} ops)"

    @property
    def has_appends(self) -> bool:
        """True when any op is an append (bytes scan, no Python loop)."""
        return OP_APPEND in self.op_kinds

    def build_ops(self, lo: int, hi: int) -> Tuple[Operation, ...]:
        """Materialize one transaction's :class:`Operation` tuple."""
        kinds = self.op_kinds
        keys = self.op_keys
        values = self.op_values
        kind_of = _KIND_OF_CODE
        return tuple(
            Operation(kind_of[kinds[i]], keys[i], values[i]) for i in range(lo, hi)
        )

    def transaction_at(self, index: int) -> Transaction:
        """One transaction, ops materialized lazily on first access."""
        offsets = self.op_offsets
        return Transaction.from_parts(
            self.tids[index],
            self.sids[index],
            self.snos[index],
            self.starts[index],
            self.commits[index],
            self,
            offsets[index],
            offsets[index + 1],
        )

    def transactions(self) -> List[Transaction]:
        """Materialize the whole batch as :class:`Transaction` objects.

        Ops are built eagerly: callers of this method (the sharded
        router, replays, tests) walk every operation anyway, and eager
        transactions do not pin the batch's arrays afterwards.
        """
        offsets = self.op_offsets
        return [
            Transaction(
                self.tids[i],
                self.sids[i],
                self.snos[i],
                self.build_ops(offsets[i], offsets[i + 1]),
                self.starts[i],
                self.commits[i],
            )
            for i in range(len(self.tids))
        ]

    def slices(self, max_size: int) -> Iterator["ColumnarBatch"]:
        """Split into consecutive sub-batches of at most ``max_size``."""
        n = len(self.tids)
        if n <= max_size:
            yield self
            return
        offsets = self.op_offsets
        for lo in range(0, n, max_size):
            hi = min(lo + max_size, n)
            op_lo, op_hi = offsets[lo], offsets[hi]
            yield ColumnarBatch(
                self.tids[lo:hi],
                self.sids[lo:hi],
                self.snos[lo:hi],
                self.starts[lo:hi],
                self.commits[lo:hi],
                [offset - op_lo for offset in offsets[lo : hi + 1]],
                self.op_kinds[op_lo:op_hi],
                self.op_keys[op_lo:op_hi],
                self.op_values[op_lo:op_hi],
            )


def _encode_value(value: Any, out: bytearray) -> None:
    """Append one *inline* tagged value (tag byte + payload) to ``out``.

    This is the nested-value encoding: tuple items travel through it.
    Top-level op values use the split layout built by
    :func:`_encode_top` instead (tag column + packed i64 column +
    overflow stream), which shares the tag vocabulary and payload
    encodings defined here.

    Fidelity contract (JSONL parity): scalars carry native payloads;
    sequences become shallow tuples on decode (items that are themselves
    sequences/dicts travel as embedded JSON, reproducing exactly what
    the JSONL codec's array round trip yields); dicts and
    out-of-``i64`` ints fall back to embedded JSON.  ``⊥v`` gets a
    native tag — an extension over JSONL, which cannot encode it.
    """
    if value is None:
        out.append(_VAL_NONE)
    elif value is True:
        out.append(_VAL_TRUE)
    elif value is False:
        out.append(_VAL_FALSE)
    elif type(value) is int:
        if _I64_MIN <= value <= _I64_MAX:
            out += _TAG_I64.pack(_VAL_INT, value)
        else:
            payload = json.dumps(value).encode("utf-8")
            out += _TAG_U32.pack(_VAL_JSON, len(payload))
            out += payload
    elif type(value) is str:
        payload = value.encode("utf-8")
        out += _TAG_U32.pack(_VAL_STR, len(payload))
        out += payload
    elif isinstance(value, (tuple, list)):
        out += _TAG_U32.pack(_VAL_TUPLE, len(value))
        for item in value:
            if isinstance(item, (tuple, list, dict)):
                # Shallow-tuple parity with the JSONL codec: nested
                # sequences decode back as lists, dicts as dicts.
                payload = json.dumps(item, ensure_ascii=False).encode("utf-8")
                out += _TAG_U32.pack(_VAL_JSON, len(payload))
                out += payload
            else:
                _encode_value(item, out)
    elif isinstance(value, float):
        out += _TAG_F64.pack(_VAL_FLOAT, value)
    elif value is BOTTOM:
        out.append(_VAL_BOTTOM)
    elif isinstance(value, bool):  # bool subclasses handled above by identity
        out.append(_VAL_TRUE if value else _VAL_FALSE)
    elif isinstance(value, int):  # int subclasses (IntEnum, …)
        _encode_value(int(value), out)
    elif isinstance(value, str):  # str subclasses
        _encode_value(str(value), out)
    else:
        # Anything else must survive a JSON round trip, exactly like the
        # JSONL codec; json.dumps raising TypeError is the shared
        # "unencodable value" contract.
        payload = json.dumps(value, ensure_ascii=False).encode("utf-8")
        out += _TAG_U32.pack(_VAL_JSON, len(payload))
        out += payload


def _encode_top(value: Any, tags: bytearray, ints: List[int], overflow: bytearray) -> None:
    """Append one top-level op value to the split columns.

    The packers inline the two overwhelmingly common cases (in-range
    ints and ``None``) at the call site; everything else lands here.
    The tag goes into the per-op tag column; an in-range int goes into
    the bulk-packed i64 column; any other payload goes into the overflow
    stream using the same per-tag payload encodings as
    :func:`_encode_value`, minus the (redundant) inline tag byte.
    """
    if value is None:
        tags.append(_VAL_NONE)
    elif value is True:
        tags.append(_VAL_TRUE)
    elif value is False:
        tags.append(_VAL_FALSE)
    elif type(value) is int:
        if _I64_MIN <= value <= _I64_MAX:
            tags.append(_VAL_INT)
            ints.append(value)
        else:
            payload = json.dumps(value).encode("utf-8")
            tags.append(_VAL_JSON)
            overflow += _U32.pack(len(payload))
            overflow += payload
    elif type(value) is str:
        payload = value.encode("utf-8")
        tags.append(_VAL_STR)
        overflow += _U32.pack(len(payload))
        overflow += payload
    elif isinstance(value, (tuple, list)):
        tags.append(_VAL_TUPLE)
        overflow += _U32.pack(len(value))
        for item in value:
            if isinstance(item, (tuple, list, dict)):
                # Shallow-tuple parity with the JSONL codec: nested
                # sequences decode back as lists, dicts as dicts.
                payload = json.dumps(item, ensure_ascii=False).encode("utf-8")
                overflow += _TAG_U32.pack(_VAL_JSON, len(payload))
                overflow += payload
            else:
                _encode_value(item, overflow)
    elif isinstance(value, float):
        tags.append(_VAL_FLOAT)
        overflow += _F64.pack(value)
    elif value is BOTTOM:
        tags.append(_VAL_BOTTOM)
    elif isinstance(value, bool):  # bool subclasses handled above by identity
        tags.append(_VAL_TRUE if value else _VAL_FALSE)
    elif isinstance(value, int):  # int subclasses (IntEnum, …)
        _encode_top(int(value), tags, ints, overflow)
    elif isinstance(value, str):  # str subclasses
        _encode_top(str(value), tags, ints, overflow)
    else:
        # Anything else must survive a JSON round trip, exactly like the
        # JSONL codec; json.dumps raising TypeError is the shared
        # "unencodable value" contract.
        payload = json.dumps(value, ensure_ascii=False).encode("utf-8")
        tags.append(_VAL_JSON)
        overflow += _U32.pack(len(payload))
        overflow += payload


def _decode_values(buf: bytes, offset: int, count: int) -> Tuple[List[Any], int]:
    """Decode ``count`` tagged values; returns (values, next offset)."""
    values: List[Any] = []
    append = values.append
    i64_unpack = _I64.unpack_from
    f64_unpack = _F64.unpack_from
    u32_unpack = _U32.unpack_from
    end = len(buf)
    for _ in range(count):
        if offset >= end:
            raise ValueError("columnar pack truncated in value stream")
        tag = buf[offset]
        offset += 1
        if tag == _VAL_INT:
            append(i64_unpack(buf, offset)[0])
            offset += 8
        elif tag == _VAL_STR:
            (length,) = u32_unpack(buf, offset)
            offset += 4
            payload = buf[offset : offset + length]
            if len(payload) != length:
                raise ValueError("columnar pack truncated in string value")
            append(payload.decode("utf-8"))
            offset += length
        elif tag == _VAL_NONE:
            append(None)
        elif tag == _VAL_TUPLE:
            (n_items,) = u32_unpack(buf, offset)
            offset += 4
            if n_items > end - offset:  # each item needs >= 1 byte
                raise ValueError("columnar pack truncated in tuple value")
            items, offset = _decode_values(buf, offset, n_items)
            append(tuple(items))
        elif tag == _VAL_TRUE:
            append(True)
        elif tag == _VAL_FALSE:
            append(False)
        elif tag == _VAL_FLOAT:
            append(f64_unpack(buf, offset)[0])
            offset += 8
        elif tag == _VAL_JSON:
            (length,) = u32_unpack(buf, offset)
            offset += 4
            payload = buf[offset : offset + length]
            if len(payload) != length:
                raise ValueError("columnar pack truncated in JSON value")
            append(json.loads(payload))
            offset += length
        elif tag == _VAL_BOTTOM:
            append(BOTTOM)
        else:
            raise ValueError(f"unknown value tag {tag}")
    return values, offset


def _decode_top_values(buf: bytes, offset: int, n_ops: int) -> Tuple[List[Any], int]:
    """Decode the split top-level value section; returns (values, next offset).

    Layout: ``n_ops`` tag bytes, then one bulk ``!{k}q`` column holding
    every ``_VAL_INT`` payload in op order (``k`` = the tag column's INT
    count — recomputed here at C speed), then the overflow stream of
    per-tag payloads for everything non-scalar.  The dominant case (an
    in-range int) costs one list index per op instead of a struct call.
    """
    tags = buf[offset : offset + n_ops]
    if len(tags) != n_ops:
        raise ValueError("columnar pack truncated in value tags")
    offset += n_ops
    n_ints = tags.count(_VAL_INT)
    ints_struct = struct.Struct(f"!{n_ints}q")
    ints = ints_struct.unpack_from(buf, offset)
    offset += ints_struct.size
    if n_ints == n_ops:  # steady-state register batches: every value an int
        return list(ints), offset
    values: List[Any] = []
    append = values.append
    f64_unpack = _F64.unpack_from
    u32_unpack = _U32.unpack_from
    end = len(buf)
    next_int = 0
    for tag in tags:
        if tag == _VAL_INT:
            append(ints[next_int])
            next_int += 1
        elif tag == _VAL_NONE:
            append(None)
        elif tag == _VAL_STR:
            (length,) = u32_unpack(buf, offset)
            offset += 4
            payload = buf[offset : offset + length]
            if len(payload) != length:
                raise ValueError("columnar pack truncated in string value")
            append(payload.decode("utf-8"))
            offset += length
        elif tag == _VAL_TUPLE:
            (n_items,) = u32_unpack(buf, offset)
            offset += 4
            if n_items > end - offset:  # each item needs >= 1 byte
                raise ValueError("columnar pack truncated in tuple value")
            items, offset = _decode_values(buf, offset, n_items)
            append(tuple(items))
        elif tag == _VAL_TRUE:
            append(True)
        elif tag == _VAL_FALSE:
            append(False)
        elif tag == _VAL_FLOAT:
            append(f64_unpack(buf, offset)[0])
            offset += 8
        elif tag == _VAL_JSON:
            (length,) = u32_unpack(buf, offset)
            offset += 4
            payload = buf[offset : offset + length]
            if len(payload) != length:
                raise ValueError("columnar pack truncated in JSON value")
            append(json.loads(payload))
            offset += length
        elif tag == _VAL_BOTTOM:
            append(BOTTOM)
        else:
            raise ValueError(f"unknown value tag {tag}")
    return values, offset


def pack_columnar(txns: Union[Sequence[Transaction], ColumnarBatch]) -> bytes:
    """Pack a batch of transactions as one columnar binary blob.

    One walk over the ops: the five meta columns are packed as i64
    arrays, keys are interned into a per-blob string table, kinds become
    one byte per op, and values split into a tag column, one bulk-packed
    i64 column for in-range ints (the overwhelmingly common op value),
    and an overflow stream for everything else — no per-op struct call
    on the hot path, and no per-transaction dict or JSON object.
    """
    if isinstance(txns, ColumnarBatch):
        return _pack_from_batch(txns)
    n = len(txns)
    offsets: List[int] = [0] * (n + 1)
    op_lists = [txn.ops for txn in txns]
    n_ops = 0
    for index, ops in enumerate(op_lists):
        n_ops += len(ops)
        offsets[index + 1] = n_ops
    flat_ops = [op for ops in op_lists for op in ops]
    code_of = _CODE_OF_KIND
    # Identity checks beat the enum dict lookup (Enum.__hash__ re-hashes
    # the member name on every call) for the two register-workload kinds.
    kind_read, kind_write = OpKind.READ, OpKind.WRITE
    kinds = bytes(
        OP_READ
        if (kind := op.kind) is kind_read
        else OP_WRITE if kind is kind_write else code_of[kind]
        for op in flat_ops
    )
    flat_keys = [op.key for op in flat_ops]
    key_ids: Dict[str, int] = {}
    for key in flat_keys:
        if key not in key_ids:
            key_ids[key] = len(key_ids)
    id_blob = struct.pack(f"!{n_ops}I", *map(key_ids.__getitem__, flat_keys))
    flat_values = [op.value for op in flat_ops]
    ints_blob = None
    if set(map(type, flat_values)) == {int}:
        # Steady-state register batches: every value a genuine int (the
        # type check keeps bools out — struct would silently coerce
        # them).  Out-of-i64-range ints fall through to the tagged walk.
        try:
            ints_blob = struct.pack(f"!{n_ops}q", *flat_values)
            tags: Union[bytes, bytearray] = _INT_TAG * n_ops
            overflow: Union[bytes, bytearray] = b""
        except struct.error:
            ints_blob = None
    if ints_blob is None:
        tags = bytearray()
        tags_append = tags.append
        ints: List[int] = []
        ints_append = ints.append
        overflow = bytearray()
        i64_min, i64_max = _I64_MIN, _I64_MAX
        val_int, val_none = _VAL_INT, _VAL_NONE
        for value in flat_values:
            if type(value) is int and i64_min <= value <= i64_max:
                tags_append(val_int)
                ints_append(value)
            elif value is None:
                tags_append(val_none)
            else:
                _encode_top(value, tags, ints, overflow)
        ints_blob = struct.pack(f"!{len(ints)}q", *ints)
    parts = [_HDR.pack(n, len(key_ids), n_ops)]
    table = bytearray()
    for key in key_ids:  # insertion order == id order
        encoded = key.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise ValueError(f"key too long for columnar pack ({len(encoded)} bytes)")
        table += _U16.pack(len(encoded))
        table += encoded
    parts.append(bytes(table))
    meta = struct.Struct(f"!{n}q")
    parts.append(meta.pack(*(txn.tid for txn in txns)))
    parts.append(meta.pack(*(txn.sid for txn in txns)))
    parts.append(meta.pack(*(txn.sno for txn in txns)))
    parts.append(meta.pack(*(txn.start_ts for txn in txns)))
    parts.append(meta.pack(*(txn.commit_ts for txn in txns)))
    parts.append(struct.pack(f"!{n + 1}I", *offsets))
    parts.append(kinds)
    parts.append(id_blob)
    parts.append(bytes(tags))
    parts.append(ints_blob)
    parts.append(bytes(overflow))
    return b"".join(parts)


def _pack_from_batch(batch: ColumnarBatch) -> bytes:
    """Re-pack an already-columnar batch (relay / packed-WAL writes)."""
    n = len(batch)
    n_ops = len(batch.op_kinds)
    key_ids: Dict[str, int] = {}
    key_ids_get = key_ids.get
    id_column: List[int] = []
    id_append = id_column.append
    for key in batch.op_keys:
        key_id = key_ids_get(key)
        if key_id is None:
            key_id = key_ids[key] = len(key_ids)
        id_append(key_id)
    op_values = batch.op_values
    ints_blob = None
    if set(map(type, op_values)) == {int}:
        try:
            ints_blob = struct.pack(f"!{n_ops}q", *op_values)
            tags: Union[bytes, bytearray] = _INT_TAG * n_ops
            overflow: Union[bytes, bytearray] = b""
        except struct.error:
            ints_blob = None
    if ints_blob is None:
        tags = bytearray()
        tags_append = tags.append
        ints: List[int] = []
        ints_append = ints.append
        overflow = bytearray()
        i64_min, i64_max = _I64_MIN, _I64_MAX
        val_int, val_none = _VAL_INT, _VAL_NONE
        for value in op_values:
            if type(value) is int and i64_min <= value <= i64_max:
                tags_append(val_int)
                ints_append(value)
            elif value is None:
                tags_append(val_none)
            else:
                _encode_top(value, tags, ints, overflow)
        ints_blob = struct.pack(f"!{len(ints)}q", *ints)
    parts = [_HDR.pack(n, len(key_ids), n_ops)]
    table = bytearray()
    for key in key_ids:
        encoded = key.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise ValueError(f"key too long for columnar pack ({len(encoded)} bytes)")
        table += _U16.pack(len(encoded))
        table += encoded
    parts.append(bytes(table))
    meta = struct.Struct(f"!{n}q")
    parts.append(meta.pack(*batch.tids))
    parts.append(meta.pack(*batch.sids))
    parts.append(meta.pack(*batch.snos))
    parts.append(meta.pack(*batch.starts))
    parts.append(meta.pack(*batch.commits))
    parts.append(struct.pack(f"!{n + 1}I", *batch.op_offsets))
    parts.append(bytes(batch.op_kinds))
    parts.append(struct.pack(f"!{n_ops}I", *id_column))
    parts.append(bytes(tags))
    parts.append(ints_blob)
    parts.append(bytes(overflow))
    return b"".join(parts)


def unpack_columnar(buf: bytes, offset: int = 0) -> Tuple[ColumnarBatch, int]:
    """Decode one columnar blob; returns ``(batch, next offset)``.

    Raises :class:`ValueError` on any truncation, bad count, dangling
    key reference, or unknown tag — the framing layer maps that to its
    ``ProtocolError``.  Never returns a silently truncated batch: every
    column's byte range is length-checked before slicing.
    """
    try:
        n, n_keys, n_ops = _HDR.unpack_from(buf, offset)
        offset += _HDR.size
        table: List[str] = []
        table_append = table.append
        u16_unpack = _U16.unpack_from
        for _ in range(n_keys):
            (length,) = u16_unpack(buf, offset)
            offset += 2
            encoded = buf[offset : offset + length]
            if len(encoded) != length:
                raise ValueError("columnar pack truncated in key table")
            table_append(encoded.decode("utf-8"))
            offset += length
        meta = struct.Struct(f"!{n}q")
        meta_bytes = meta.size
        tids = meta.unpack_from(buf, offset)
        sids = meta.unpack_from(buf, offset + meta_bytes)
        snos = meta.unpack_from(buf, offset + 2 * meta_bytes)
        starts = meta.unpack_from(buf, offset + 3 * meta_bytes)
        commits = meta.unpack_from(buf, offset + 4 * meta_bytes)
        offset += 5 * meta_bytes
        offsets_struct = struct.Struct(f"!{n + 1}I")
        op_offsets = offsets_struct.unpack_from(buf, offset)
        offset += offsets_struct.size
        if op_offsets[0] != 0 or op_offsets[-1] != n_ops:
            raise ValueError("columnar pack op offsets do not cover the op count")
        previous = 0
        for boundary in op_offsets:
            if boundary < previous:
                raise ValueError("columnar pack op offsets not monotonic")
            previous = boundary
        op_kinds = buf[offset : offset + n_ops]
        if len(op_kinds) != n_ops:
            raise ValueError("columnar pack truncated in op kinds")
        for code in op_kinds:
            if code > OP_READ_LIST:
                raise ValueError(f"unknown op code {code}")
        offset += n_ops
        ids_struct = struct.Struct(f"!{n_ops}I")
        id_column = ids_struct.unpack_from(buf, offset)
        offset += ids_struct.size
        op_keys = list(map(table.__getitem__, id_column))
        op_values, offset = _decode_top_values(buf, offset, n_ops)
    except (struct.error, IndexError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"malformed columnar pack: {exc}") from None
    return (
        ColumnarBatch(
            tids, sids, snos, starts, commits, op_offsets, op_kinds, op_keys, op_values
        ),
        offset,
    )


# ----------------------------------------------------------------------
# Packed history / WAL files
# ----------------------------------------------------------------------

_PACK_FILE_MAGIC = b"RPCH"  # "RePro Columnar History"
_PACK_CHUNK = 2048


def save_history_packed(
    history: Union[History, Sequence[Transaction]],
    path: Union[str, Path],
    *,
    chunk_size: int = _PACK_CHUNK,
) -> None:
    """Write a history as length-prefixed columnar chunks.

    The binary sibling of :func:`save_history`, sharing the wire's
    columnar codec: a 4-byte magic, then per chunk a u32 byte length and
    one :func:`pack_columnar` blob.  Append-friendly like the JSONL
    format — a WAL writer can emit one chunk per commit batch.
    """
    txns = list(history)
    path = Path(path)
    with path.open("wb") as handle:
        handle.write(_PACK_FILE_MAGIC)
        for lo in range(0, len(txns), chunk_size):
            blob = pack_columnar(txns[lo : lo + chunk_size])
            handle.write(_U32.pack(len(blob)))
            handle.write(blob)


def load_history_packed(path: Union[str, Path]) -> History:
    """Read a history previously written by :func:`save_history_packed`."""
    return History(iter_history_packed(path))


def iter_history_packed(path: Union[str, Path]) -> Iterator[Transaction]:
    """Stream transactions from a packed history file chunk by chunk."""
    path = Path(path)
    with path.open("rb") as handle:
        magic = handle.read(len(_PACK_FILE_MAGIC))
        if magic != _PACK_FILE_MAGIC:
            raise ValueError(f"not a packed history file: {path}")
        while True:
            header = handle.read(4)
            if not header:
                return
            if len(header) != 4:
                raise ValueError("packed history file truncated in chunk header")
            (length,) = _U32.unpack(header)
            blob = handle.read(length)
            if len(blob) != length:
                raise ValueError("packed history file truncated in chunk body")
            batch, consumed = unpack_columnar(blob)
            if consumed != length:
                raise ValueError("packed history chunk has trailing bytes")
            yield from batch.transactions()
