"""Fluent construction of histories for tests, examples, and figures.

The paper's worked examples (Fig. 1, Fig. 2, Fig. 11) are small
hand-crafted histories with explicit timestamps.  :class:`HistoryBuilder`
makes those concise to express while enforcing the structural rules
(unique tids, unique cross-transaction timestamps, per-session ``sno``
sequencing, the initial transaction ⊥T).

>>> from repro.histories import HistoryBuilder, read, write
>>> b = HistoryBuilder(keys=["x", "y"])
>>> _ = b.txn(sid=1, start=1, commit=2, ops=[write("x", 1), write("y", 2)])
>>> _ = b.txn(sid=2, start=3, commit=3, ops=[read("x", 0)])
>>> history = b.build()
>>> len(history)          # includes the initial transaction
3
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.histories.model import (
    INIT_SID,
    INIT_TID,
    INIT_TS,
    History,
    Operation,
    Transaction,
)
from repro.histories.ops import write

__all__ = ["HistoryBuilder"]


class HistoryBuilder:
    """Accumulates transactions and produces a :class:`History`.

    Parameters
    ----------
    keys:
        Key universe written by the initial transaction ⊥T.  When omitted,
        ⊥T writes every key mentioned by any added transaction.
    initial_value:
        The value ⊥T writes to every key (0 by default, matching the
        generators).
    with_init:
        Set to False to build a history without ⊥T (used by tests that
        exercise missing-initial-transaction handling).
    """

    def __init__(
        self,
        keys: Optional[Iterable[str]] = None,
        *,
        initial_value: Any = 0,
        with_init: bool = True,
    ) -> None:
        self._declared_keys = list(keys) if keys is not None else None
        self._initial_value = initial_value
        self._with_init = with_init
        self._txns: List[Transaction] = []
        self._next_tid = INIT_TID + 1
        self._next_ts = INIT_TS + 1
        self._session_snos: Dict[int, int] = {}
        self._used_tids: set[int] = set()
        self._used_ts: set[int] = set()

    # ------------------------------------------------------------------
    # Adding transactions
    # ------------------------------------------------------------------

    def txn(
        self,
        *,
        ops: Sequence[Operation],
        sid: int = 1,
        start: Optional[int] = None,
        commit: Optional[int] = None,
        tid: Optional[int] = None,
        sno: Optional[int] = None,
    ) -> Transaction:
        """Add a transaction and return it.

        Timestamps and ids default to fresh monotonically increasing
        values; pass them explicitly to reproduce a paper figure.  The
        builder rejects duplicate tids and duplicate cross-transaction
        timestamps (equal ``start``/``commit`` within one read-only
        transaction is allowed, per Eq. 1).
        """
        if sid == INIT_SID:
            raise ValueError(f"session id {INIT_SID} is reserved for the initial transaction")
        if tid is None:
            tid = self._next_tid
        if tid in self._used_tids or tid == INIT_TID:
            raise ValueError(f"duplicate or reserved tid {tid}")
        self._next_tid = max(self._next_tid, tid + 1)

        if start is None:
            start = self._fresh_ts()
        if commit is None:
            commit = self._fresh_ts() if any(op.is_write for op in ops) else start
        for ts in {start, commit}:
            if ts in self._used_ts or ts == INIT_TS:
                raise ValueError(f"timestamp {ts} already used by another transaction")
        self._used_ts.update({start, commit})
        self._next_ts = max(self._next_ts, start + 1, commit + 1)

        if sno is None:
            sno = self._session_snos.get(sid, -1) + 1
        self._session_snos[sid] = sno

        txn = Transaction(tid=tid, sid=sid, sno=sno, ops=ops, start_ts=start, commit_ts=commit)
        self._txns.append(txn)
        self._used_tids.add(tid)
        return txn

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def build(self) -> History:
        """Produce the history, prepending ⊥T when configured."""
        txns: List[Transaction] = []
        if self._with_init:
            keys = self._declared_keys
            if keys is None:
                seen: List[str] = []
                seen_set: set[str] = set()
                for txn in self._txns:
                    for op in txn.ops:
                        if op.key not in seen_set:
                            seen.append(op.key)
                            seen_set.add(op.key)
                keys = seen
            init_ops = [write(key, self._initial_value) for key in keys]
            txns.append(
                Transaction(
                    tid=INIT_TID,
                    sid=INIT_SID,
                    sno=0,
                    ops=init_ops,
                    start_ts=INIT_TS,
                    commit_ts=INIT_TS,
                )
            )
        txns.extend(self._txns)
        return History(txns)

    def _fresh_ts(self) -> int:
        ts = self._next_ts
        while ts in self._used_ts:
            ts += 1
        self._next_ts = ts + 1
        return ts
