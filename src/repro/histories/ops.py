"""Readable constructors for operations.

These mirror the paper's notation: ``R(k, v)`` and ``W(k, v)`` for
key-value histories, plus append / list-read for list histories.

>>> from repro.histories import read, write
>>> write("x", 1)
W(x, 1)
>>> read("y", 2)
R(y, 2)
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.histories.model import Operation, OpKind

__all__ = ["read", "write", "append", "read_list"]


def read(key: str, value: Any) -> Operation:
    """``R(k, v)`` — a read of ``key`` returning ``value``."""
    return Operation(OpKind.READ, key, value)


def write(key: str, value: Any) -> Operation:
    """``W(k, v)`` — a write of ``value`` to ``key``."""
    return Operation(OpKind.WRITE, key, value)


def append(key: str, value: Any) -> Operation:
    """An append of ``value`` to the list at ``key``."""
    return Operation(OpKind.APPEND, key, value)


def read_list(key: str, values: Iterable[Any]) -> Operation:
    """A read of the list at ``key`` returning ``values`` in order."""
    return Operation(OpKind.READ_LIST, key, tuple(values))
