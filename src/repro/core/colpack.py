"""Columnar packs: the shared binary value codec of wire and shard lanes.

One struct-packed layout serves every boundary a batch of operations
crosses:

- **Wire blobs** — :func:`pack_columnar` renders a batch of transactions
  as one binary blob (five bulk-packed ``i64`` meta columns, per-blob key
  interning, one op-kind byte per op, and op values split into a tag
  column + a bulk ``i64`` column + an overflow stream).
  :func:`unpack_columnar` decodes the blob into a :class:`ColumnarBatch`
  of flat parallel arrays, and accepts any buffer — ``bytes`` or a
  ``memoryview`` slice straight out of a socket read buffer, so the
  receive path never copies the payload before decoding.  The binary
  wire protocol's submit frames (:mod:`repro.service.framing`) and the
  packed WAL/history files are both this blob.
- **Shard lane frames** — :func:`pack_flat_frame` packs one shard's
  routed flat command stream (``tags``/``keys``/``a``/``b``/``c``
  parallel arrays, see :mod:`repro.core.sharded`) with the same column
  layout, and :func:`pack_result_frame` packs the shard's semantic
  results; both decode in place from ``memoryview`` slices into a
  shared-memory ring (:mod:`repro.core.shm`), so the multi-core
  executor moves batches across the process boundary without pickle.

The two framings share the tag vocabulary and payload encodings but
differ in one deliberate way: wire values keep *JSONL parity* (top-level
sequences decode as shallow tuples, dicts survive via embedded JSON —
exactly what a JSON array round trip yields), while lane values use the
*strict* codec, which preserves native fidelity (lists stay lists,
tuples nest) and refuses anything it cannot round-trip exactly by
raising :class:`UnencodableValue` — the executor then falls back to the
pickle pipe for that stream, so lane transport can never change a
verdict.

This module sits below both :mod:`repro.histories.serialization` and
:mod:`repro.core.sharded` and imports only the history model, keeping
the ``repro.core`` ↔ ``repro.histories`` import graph acyclic.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.histories.model import BOTTOM, Operation, OpKind, Transaction

__all__ = [
    "ColumnarBatch",
    "pack_columnar",
    "unpack_columnar",
    "UnencodableValue",
    "pack_flat_frame",
    "unpack_flat_frame",
    "pack_result_frame",
    "unpack_result_frame",
    "FLAT_VISIBLE",
    "FLAT_ADD_READ",
    "FLAT_REMOVE_READ",
    "FLAT_OVERLAP_ADD",
    "FLAT_INSERT_RECHECK",
    "FLAT_MERGE",
    "FLAT_READ_TRACK",
    "FLAT_WRITE_PROBE",
    "RESULT_INLINE",
]

#: A readable buffer the decoders accept: ``bytes`` or a ``memoryview``
#: (e.g. a zero-copy slice of a socket read buffer or a shared-memory
#: ring).  ``struct.unpack_from`` handles both natively.
Buffer = Union[bytes, bytearray, memoryview]

#: Op kind codes of the columnar format (one byte per op).
OP_READ, OP_WRITE, OP_APPEND, OP_READ_LIST = 0, 1, 2, 3
_CODE_OF_KIND = {
    OpKind.READ: OP_READ,
    OpKind.WRITE: OP_WRITE,
    OpKind.APPEND: OP_APPEND,
    OpKind.READ_LIST: OP_READ_LIST,
}
_KIND_OF_CODE = (OpKind.READ, OpKind.WRITE, OpKind.APPEND, OpKind.READ_LIST)

#: Value type tags of the columnar value stream.
_VAL_NONE = 0
_VAL_BOTTOM = 1
_VAL_FALSE = 2
_VAL_TRUE = 3
_VAL_INT = 4      # i64 payload
_VAL_FLOAT = 5    # f64 payload
_VAL_STR = 6      # u32 length + UTF-8 payload
_VAL_TUPLE = 7    # u32 count + tagged items
_VAL_JSON = 8     # u32 length + UTF-8 JSON payload (dicts, big ints, …)
_VAL_LIST = 9     # u32 count + tagged items (strict/lane codec only)

_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1
_INT_TAG = bytes([_VAL_INT])

_HDR = struct.Struct("!III")          # n_txns, n_keys, n_ops
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_TAG_I64 = struct.Struct("!Bq")
_TAG_F64 = struct.Struct("!Bd")
_TAG_U32 = struct.Struct("!BI")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")


class ColumnarBatch:
    """A batch of transactions as flat parallel arrays.

    The decode target of :func:`unpack_columnar` and the layout the
    checkers' batch kernel routes from directly: five per-transaction
    integer columns, an op-offset column (``op_offsets[i] ..
    op_offsets[i+1]`` is transaction ``i``'s slice of the flat op
    arrays), op kinds as a bytes column, and resolved key strings plus
    decoded values per op.  No per-transaction dicts, no
    :class:`Operation` objects — those materialize lazily through
    :meth:`transactions` / :meth:`build_ops` only when something off the
    hot path (GC spill, the sharded router) asks.
    """

    __slots__ = (
        "tids",
        "sids",
        "snos",
        "starts",
        "commits",
        "op_offsets",
        "op_kinds",
        "op_keys",
        "op_values",
    )

    def __init__(
        self,
        tids: Sequence[int],
        sids: Sequence[int],
        snos: Sequence[int],
        starts: Sequence[int],
        commits: Sequence[int],
        op_offsets: Sequence[int],
        op_kinds: bytes,
        op_keys: List[str],
        op_values: List[Any],
    ) -> None:
        self.tids = tids
        self.sids = sids
        self.snos = snos
        self.starts = starts
        self.commits = commits
        self.op_offsets = op_offsets
        self.op_kinds = op_kinds
        self.op_keys = op_keys
        self.op_values = op_values

    def __len__(self) -> int:
        return len(self.tids)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ColumnarBatch({len(self)} txns, {len(self.op_kinds)} ops)"

    @property
    def has_appends(self) -> bool:
        """True when any op is an append (bytes scan, no Python loop)."""
        return OP_APPEND in self.op_kinds

    def build_ops(self, lo: int, hi: int) -> Tuple[Operation, ...]:
        """Materialize one transaction's :class:`Operation` tuple."""
        kinds = self.op_kinds
        keys = self.op_keys
        values = self.op_values
        kind_of = _KIND_OF_CODE
        return tuple(
            Operation(kind_of[kinds[i]], keys[i], values[i]) for i in range(lo, hi)
        )

    def transaction_at(self, index: int) -> Transaction:
        """One transaction, ops materialized lazily on first access."""
        offsets = self.op_offsets
        return Transaction.from_parts(
            self.tids[index],
            self.sids[index],
            self.snos[index],
            self.starts[index],
            self.commits[index],
            self,
            offsets[index],
            offsets[index + 1],
        )

    def transactions(self) -> List[Transaction]:
        """Materialize the whole batch as :class:`Transaction` objects.

        Ops are built eagerly: callers of this method (the sharded
        router, replays, tests) walk every operation anyway, and eager
        transactions do not pin the batch's arrays afterwards.
        """
        offsets = self.op_offsets
        return [
            Transaction(
                self.tids[i],
                self.sids[i],
                self.snos[i],
                self.build_ops(offsets[i], offsets[i + 1]),
                self.starts[i],
                self.commits[i],
            )
            for i in range(len(self.tids))
        ]

    def slices(self, max_size: int) -> Iterator["ColumnarBatch"]:
        """Split into consecutive sub-batches of at most ``max_size``."""
        n = len(self.tids)
        if n <= max_size:
            yield self
            return
        offsets = self.op_offsets
        for lo in range(0, n, max_size):
            hi = min(lo + max_size, n)
            op_lo, op_hi = offsets[lo], offsets[hi]
            yield ColumnarBatch(
                self.tids[lo:hi],
                self.sids[lo:hi],
                self.snos[lo:hi],
                self.starts[lo:hi],
                self.commits[lo:hi],
                [offset - op_lo for offset in offsets[lo : hi + 1]],
                self.op_kinds[op_lo:op_hi],
                self.op_keys[op_lo:op_hi],
                self.op_values[op_lo:op_hi],
            )


def _encode_value(value: Any, out: bytearray) -> None:
    """Append one *inline* tagged value (tag byte + payload) to ``out``.

    This is the nested-value encoding: tuple items travel through it.
    Top-level op values use the split layout built by
    :func:`_encode_top` instead (tag column + packed i64 column +
    overflow stream), which shares the tag vocabulary and payload
    encodings defined here.

    Fidelity contract (JSONL parity): scalars carry native payloads;
    sequences become shallow tuples on decode (items that are themselves
    sequences/dicts travel as embedded JSON, reproducing exactly what
    the JSONL codec's array round trip yields); dicts and
    out-of-``i64`` ints fall back to embedded JSON.  ``⊥v`` gets a
    native tag — an extension over JSONL, which cannot encode it.
    """
    if value is None:
        out.append(_VAL_NONE)
    elif value is True:
        out.append(_VAL_TRUE)
    elif value is False:
        out.append(_VAL_FALSE)
    elif type(value) is int:
        if _I64_MIN <= value <= _I64_MAX:
            out += _TAG_I64.pack(_VAL_INT, value)
        else:
            payload = json.dumps(value).encode("utf-8")
            out += _TAG_U32.pack(_VAL_JSON, len(payload))
            out += payload
    elif type(value) is str:
        payload = value.encode("utf-8")
        out += _TAG_U32.pack(_VAL_STR, len(payload))
        out += payload
    elif isinstance(value, (tuple, list)):
        out += _TAG_U32.pack(_VAL_TUPLE, len(value))
        for item in value:
            if isinstance(item, (tuple, list, dict)):
                # Shallow-tuple parity with the JSONL codec: nested
                # sequences decode back as lists, dicts as dicts.
                payload = json.dumps(item, ensure_ascii=False).encode("utf-8")
                out += _TAG_U32.pack(_VAL_JSON, len(payload))
                out += payload
            else:
                _encode_value(item, out)
    elif isinstance(value, float):
        out += _TAG_F64.pack(_VAL_FLOAT, value)
    elif value is BOTTOM:
        out.append(_VAL_BOTTOM)
    elif isinstance(value, bool):  # bool subclasses handled above by identity
        out.append(_VAL_TRUE if value else _VAL_FALSE)
    elif isinstance(value, int):  # int subclasses (IntEnum, …)
        _encode_value(int(value), out)
    elif isinstance(value, str):  # str subclasses
        _encode_value(str(value), out)
    else:
        # Anything else must survive a JSON round trip, exactly like the
        # JSONL codec; json.dumps raising TypeError is the shared
        # "unencodable value" contract.
        payload = json.dumps(value, ensure_ascii=False).encode("utf-8")
        out += _TAG_U32.pack(_VAL_JSON, len(payload))
        out += payload


def _encode_top(value: Any, tags: bytearray, ints: List[int], overflow: bytearray) -> None:
    """Append one top-level op value to the split columns.

    The packers inline the two overwhelmingly common cases (in-range
    ints and ``None``) at the call site; everything else lands here.
    The tag goes into the per-op tag column; an in-range int goes into
    the bulk-packed i64 column; any other payload goes into the overflow
    stream using the same per-tag payload encodings as
    :func:`_encode_value`, minus the (redundant) inline tag byte.
    """
    if value is None:
        tags.append(_VAL_NONE)
    elif value is True:
        tags.append(_VAL_TRUE)
    elif value is False:
        tags.append(_VAL_FALSE)
    elif type(value) is int:
        if _I64_MIN <= value <= _I64_MAX:
            tags.append(_VAL_INT)
            ints.append(value)
        else:
            payload = json.dumps(value).encode("utf-8")
            tags.append(_VAL_JSON)
            overflow += _U32.pack(len(payload))
            overflow += payload
    elif type(value) is str:
        payload = value.encode("utf-8")
        tags.append(_VAL_STR)
        overflow += _U32.pack(len(payload))
        overflow += payload
    elif isinstance(value, (tuple, list)):
        tags.append(_VAL_TUPLE)
        overflow += _U32.pack(len(value))
        for item in value:
            if isinstance(item, (tuple, list, dict)):
                # Shallow-tuple parity with the JSONL codec: nested
                # sequences decode back as lists, dicts as dicts.
                payload = json.dumps(item, ensure_ascii=False).encode("utf-8")
                overflow += _TAG_U32.pack(_VAL_JSON, len(payload))
                overflow += payload
            else:
                _encode_value(item, overflow)
    elif isinstance(value, float):
        tags.append(_VAL_FLOAT)
        overflow += _F64.pack(value)
    elif value is BOTTOM:
        tags.append(_VAL_BOTTOM)
    elif isinstance(value, bool):  # bool subclasses handled above by identity
        tags.append(_VAL_TRUE if value else _VAL_FALSE)
    elif isinstance(value, int):  # int subclasses (IntEnum, …)
        _encode_top(int(value), tags, ints, overflow)
    elif isinstance(value, str):  # str subclasses
        _encode_top(str(value), tags, ints, overflow)
    else:
        # Anything else must survive a JSON round trip, exactly like the
        # JSONL codec; json.dumps raising TypeError is the shared
        # "unencodable value" contract.
        payload = json.dumps(value, ensure_ascii=False).encode("utf-8")
        tags.append(_VAL_JSON)
        overflow += _U32.pack(len(payload))
        overflow += payload


def _decode_values(buf: Buffer, offset: int, count: int) -> Tuple[List[Any], int]:
    """Decode ``count`` tagged values; returns (values, next offset)."""
    values: List[Any] = []
    append = values.append
    i64_unpack = _I64.unpack_from
    f64_unpack = _F64.unpack_from
    u32_unpack = _U32.unpack_from
    end = len(buf)
    for _ in range(count):
        if offset >= end:
            raise ValueError("columnar pack truncated in value stream")
        tag = buf[offset]
        offset += 1
        if tag == _VAL_INT:
            append(i64_unpack(buf, offset)[0])
            offset += 8
        elif tag == _VAL_STR:
            (length,) = u32_unpack(buf, offset)
            offset += 4
            payload = buf[offset : offset + length]
            if len(payload) != length:
                raise ValueError("columnar pack truncated in string value")
            append(str(payload, "utf-8"))
            offset += length
        elif tag == _VAL_NONE:
            append(None)
        elif tag == _VAL_TUPLE:
            (n_items,) = u32_unpack(buf, offset)
            offset += 4
            if n_items > end - offset:  # each item needs >= 1 byte
                raise ValueError("columnar pack truncated in tuple value")
            items, offset = _decode_values(buf, offset, n_items)
            append(tuple(items))
        elif tag == _VAL_TRUE:
            append(True)
        elif tag == _VAL_FALSE:
            append(False)
        elif tag == _VAL_FLOAT:
            append(f64_unpack(buf, offset)[0])
            offset += 8
        elif tag == _VAL_JSON:
            (length,) = u32_unpack(buf, offset)
            offset += 4
            payload = buf[offset : offset + length]
            if len(payload) != length:
                raise ValueError("columnar pack truncated in JSON value")
            append(json.loads(bytes(payload)))
            offset += length
        elif tag == _VAL_BOTTOM:
            append(BOTTOM)
        else:
            raise ValueError(f"unknown value tag {tag}")
    return values, offset


def _decode_top_values(buf: Buffer, offset: int, n_ops: int) -> Tuple[List[Any], int]:
    """Decode the split top-level value section; returns (values, next offset).

    Layout: ``n_ops`` tag bytes, then one bulk ``!{k}q`` column holding
    every ``_VAL_INT`` payload in op order (``k`` = the tag column's INT
    count — recomputed here at C speed), then the overflow stream of
    per-tag payloads for everything non-scalar.  The dominant case (an
    in-range int) costs one list index per op instead of a struct call.
    """
    tags = bytes(buf[offset : offset + n_ops])
    if len(tags) != n_ops:
        raise ValueError("columnar pack truncated in value tags")
    offset += n_ops
    n_ints = tags.count(_VAL_INT)
    ints_struct = struct.Struct(f"!{n_ints}q")
    ints = ints_struct.unpack_from(buf, offset)
    offset += ints_struct.size
    if n_ints == n_ops:  # steady-state register batches: every value an int
        return list(ints), offset
    values: List[Any] = []
    append = values.append
    f64_unpack = _F64.unpack_from
    u32_unpack = _U32.unpack_from
    end = len(buf)
    next_int = 0
    for tag in tags:
        if tag == _VAL_INT:
            append(ints[next_int])
            next_int += 1
        elif tag == _VAL_NONE:
            append(None)
        elif tag == _VAL_STR:
            (length,) = u32_unpack(buf, offset)
            offset += 4
            payload = buf[offset : offset + length]
            if len(payload) != length:
                raise ValueError("columnar pack truncated in string value")
            append(str(payload, "utf-8"))
            offset += length
        elif tag == _VAL_TUPLE:
            (n_items,) = u32_unpack(buf, offset)
            offset += 4
            if n_items > end - offset:  # each item needs >= 1 byte
                raise ValueError("columnar pack truncated in tuple value")
            items, offset = _decode_values(buf, offset, n_items)
            append(tuple(items))
        elif tag == _VAL_TRUE:
            append(True)
        elif tag == _VAL_FALSE:
            append(False)
        elif tag == _VAL_FLOAT:
            append(f64_unpack(buf, offset)[0])
            offset += 8
        elif tag == _VAL_JSON:
            (length,) = u32_unpack(buf, offset)
            offset += 4
            payload = buf[offset : offset + length]
            if len(payload) != length:
                raise ValueError("columnar pack truncated in JSON value")
            append(json.loads(bytes(payload)))
            offset += length
        elif tag == _VAL_BOTTOM:
            append(BOTTOM)
        else:
            raise ValueError(f"unknown value tag {tag}")
    return values, offset


def pack_columnar(txns: Union[Sequence[Transaction], ColumnarBatch]) -> bytes:
    """Pack a batch of transactions as one columnar binary blob.

    One walk over the ops: the five meta columns are packed as i64
    arrays, keys are interned into a per-blob string table, kinds become
    one byte per op, and values split into a tag column, one bulk-packed
    i64 column for in-range ints (the overwhelmingly common op value),
    and an overflow stream for everything else — no per-op struct call
    on the hot path, and no per-transaction dict or JSON object.
    """
    if isinstance(txns, ColumnarBatch):
        return _pack_from_batch(txns)
    n = len(txns)
    offsets: List[int] = [0] * (n + 1)
    op_lists = [txn.ops for txn in txns]
    n_ops = 0
    for index, ops in enumerate(op_lists):
        n_ops += len(ops)
        offsets[index + 1] = n_ops
    flat_ops = [op for ops in op_lists for op in ops]
    code_of = _CODE_OF_KIND
    # Identity checks beat the enum dict lookup (Enum.__hash__ re-hashes
    # the member name on every call) for the two register-workload kinds.
    kind_read, kind_write = OpKind.READ, OpKind.WRITE
    kinds = bytes(
        OP_READ
        if (kind := op.kind) is kind_read
        else OP_WRITE if kind is kind_write else code_of[kind]
        for op in flat_ops
    )
    flat_keys = [op.key for op in flat_ops]
    key_ids: Dict[str, int] = {}
    for key in flat_keys:
        if key not in key_ids:
            key_ids[key] = len(key_ids)
    id_blob = struct.pack(f"!{n_ops}I", *map(key_ids.__getitem__, flat_keys))
    flat_values = [op.value for op in flat_ops]
    ints_blob = None
    if set(map(type, flat_values)) == {int}:
        # Steady-state register batches: every value a genuine int (the
        # type check keeps bools out — struct would silently coerce
        # them).  Out-of-i64-range ints fall through to the tagged walk.
        try:
            ints_blob = struct.pack(f"!{n_ops}q", *flat_values)
            tags: Union[bytes, bytearray] = _INT_TAG * n_ops
            overflow: Union[bytes, bytearray] = b""
        except struct.error:
            ints_blob = None
    if ints_blob is None:
        tags = bytearray()
        tags_append = tags.append
        ints: List[int] = []
        ints_append = ints.append
        overflow = bytearray()
        i64_min, i64_max = _I64_MIN, _I64_MAX
        val_int, val_none = _VAL_INT, _VAL_NONE
        for value in flat_values:
            if type(value) is int and i64_min <= value <= i64_max:
                tags_append(val_int)
                ints_append(value)
            elif value is None:
                tags_append(val_none)
            else:
                _encode_top(value, tags, ints, overflow)
        ints_blob = struct.pack(f"!{len(ints)}q", *ints)
    parts = [_HDR.pack(n, len(key_ids), n_ops)]
    table = bytearray()
    for key in key_ids:  # insertion order == id order
        encoded = key.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise ValueError(f"key too long for columnar pack ({len(encoded)} bytes)")
        table += _U16.pack(len(encoded))
        table += encoded
    parts.append(bytes(table))
    meta = struct.Struct(f"!{n}q")
    parts.append(meta.pack(*(txn.tid for txn in txns)))
    parts.append(meta.pack(*(txn.sid for txn in txns)))
    parts.append(meta.pack(*(txn.sno for txn in txns)))
    parts.append(meta.pack(*(txn.start_ts for txn in txns)))
    parts.append(meta.pack(*(txn.commit_ts for txn in txns)))
    parts.append(struct.pack(f"!{n + 1}I", *offsets))
    parts.append(kinds)
    parts.append(id_blob)
    parts.append(bytes(tags))
    parts.append(ints_blob)
    parts.append(bytes(overflow))
    return b"".join(parts)


def _pack_from_batch(batch: ColumnarBatch) -> bytes:
    """Re-pack an already-columnar batch (relay / packed-WAL writes)."""
    n = len(batch)
    n_ops = len(batch.op_kinds)
    key_ids: Dict[str, int] = {}
    key_ids_get = key_ids.get
    id_column: List[int] = []
    id_append = id_column.append
    for key in batch.op_keys:
        key_id = key_ids_get(key)
        if key_id is None:
            key_id = key_ids[key] = len(key_ids)
        id_append(key_id)
    op_values = batch.op_values
    ints_blob = None
    if set(map(type, op_values)) == {int}:
        try:
            ints_blob = struct.pack(f"!{n_ops}q", *op_values)
            tags: Union[bytes, bytearray] = _INT_TAG * n_ops
            overflow: Union[bytes, bytearray] = b""
        except struct.error:
            ints_blob = None
    if ints_blob is None:
        tags = bytearray()
        tags_append = tags.append
        ints: List[int] = []
        ints_append = ints.append
        overflow = bytearray()
        i64_min, i64_max = _I64_MIN, _I64_MAX
        val_int, val_none = _VAL_INT, _VAL_NONE
        for value in op_values:
            if type(value) is int and i64_min <= value <= i64_max:
                tags_append(val_int)
                ints_append(value)
            elif value is None:
                tags_append(val_none)
            else:
                _encode_top(value, tags, ints, overflow)
        ints_blob = struct.pack(f"!{len(ints)}q", *ints)
    parts = [_HDR.pack(n, len(key_ids), n_ops)]
    table = bytearray()
    for key in key_ids:
        encoded = key.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise ValueError(f"key too long for columnar pack ({len(encoded)} bytes)")
        table += _U16.pack(len(encoded))
        table += encoded
    parts.append(bytes(table))
    meta = struct.Struct(f"!{n}q")
    parts.append(meta.pack(*batch.tids))
    parts.append(meta.pack(*batch.sids))
    parts.append(meta.pack(*batch.snos))
    parts.append(meta.pack(*batch.starts))
    parts.append(meta.pack(*batch.commits))
    parts.append(struct.pack(f"!{n + 1}I", *batch.op_offsets))
    parts.append(bytes(batch.op_kinds))
    parts.append(struct.pack(f"!{n_ops}I", *id_column))
    parts.append(bytes(tags))
    parts.append(ints_blob)
    parts.append(bytes(overflow))
    return b"".join(parts)


def unpack_columnar(buf: Buffer, offset: int = 0) -> Tuple[ColumnarBatch, int]:
    """Decode one columnar blob; returns ``(batch, next offset)``.

    Accepts ``bytes`` or a ``memoryview`` slice — every column is read
    in place via ``struct.unpack_from``; only the decoded Python objects
    are materialized, never a second copy of the payload.

    Raises :class:`ValueError` on any truncation, bad count, dangling
    key reference, or unknown tag — the framing layer maps that to its
    ``ProtocolError``.  Never returns a silently truncated batch: every
    column's byte range is length-checked before slicing.
    """
    try:
        n, n_keys, n_ops = _HDR.unpack_from(buf, offset)
        offset += _HDR.size
        table: List[str] = []
        table_append = table.append
        u16_unpack = _U16.unpack_from
        for _ in range(n_keys):
            (length,) = u16_unpack(buf, offset)
            offset += 2
            encoded = buf[offset : offset + length]
            if len(encoded) != length:
                raise ValueError("columnar pack truncated in key table")
            table_append(str(encoded, "utf-8"))
            offset += length
        meta = struct.Struct(f"!{n}q")
        meta_bytes = meta.size
        tids = meta.unpack_from(buf, offset)
        sids = meta.unpack_from(buf, offset + meta_bytes)
        snos = meta.unpack_from(buf, offset + 2 * meta_bytes)
        starts = meta.unpack_from(buf, offset + 3 * meta_bytes)
        commits = meta.unpack_from(buf, offset + 4 * meta_bytes)
        offset += 5 * meta_bytes
        offsets_struct = struct.Struct(f"!{n + 1}I")
        op_offsets = offsets_struct.unpack_from(buf, offset)
        offset += offsets_struct.size
        if op_offsets[0] != 0 or op_offsets[-1] != n_ops:
            raise ValueError("columnar pack op offsets do not cover the op count")
        previous = 0
        for boundary in op_offsets:
            if boundary < previous:
                raise ValueError("columnar pack op offsets not monotonic")
            previous = boundary
        op_kinds = bytes(buf[offset : offset + n_ops])
        if len(op_kinds) != n_ops:
            raise ValueError("columnar pack truncated in op kinds")
        for code in op_kinds:
            if code > OP_READ_LIST:
                raise ValueError(f"unknown op code {code}")
        offset += n_ops
        ids_struct = struct.Struct(f"!{n_ops}I")
        id_column = ids_struct.unpack_from(buf, offset)
        offset += ids_struct.size
        op_keys = list(map(table.__getitem__, id_column))
        op_values, offset = _decode_top_values(buf, offset, n_ops)
    except (struct.error, IndexError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"malformed columnar pack: {exc}") from None
    return (
        ColumnarBatch(
            tids, sids, snos, starts, commits, op_offsets, op_kinds, op_keys, op_values
        ),
        offset,
    )


# ======================================================================
# Shard lane frames: flat command streams and result frames
# ======================================================================

#: Integer tags of the flat shard command encoding — one row across the
#: five parallel arrays ``(tags, keys, a, b, c)``; operand meaning per
#: tag is documented in :mod:`repro.core.sharded`, which routes batches
#: into these streams.
FLAT_VISIBLE = 0
FLAT_ADD_READ = 1
FLAT_REMOVE_READ = 2
FLAT_OVERLAP_ADD = 3
FLAT_INSERT_RECHECK = 4
FLAT_MERGE = 5
#: Fused rows — the router's hot path emits one row per external read
#: (visible probe + read registration) and one per write (overlap query
#: + insert/recheck), halving the rows that cross the process boundary;
#: the two-row forms above remain valid input for the interpreter.
FLAT_READ_TRACK = 6
FLAT_WRITE_PROBE = 7

#: First byte of every lane frame.
RQ_FLAT = 1          # request lane: one shard's flat command stream
RESULT_INLINE = 2    # result lane: strict-encoded semantic results follow

#: Per-result kind bytes of the result frame (a visible value can itself
#: be a tuple, so the shape cannot be inferred from the payload).
_RK_VALUE = 0
_RK_PAIRS = 1
_RK_REEVALS = 2

_FLAT_HDR = struct.Struct("!BBI")  # frame kind, optimized flag, n_commands

#: Result shapes each flat tag contributes (see ``_ShardCore.
#: execute_flat``): probes yield a value, overlap queries a pair list,
#: insert+recheck a re-evaluation list; the fused write row yields two
#: result slots; bookkeeping rows yield nothing.
_RKS_OF_TAG = {
    FLAT_VISIBLE: bytes((_RK_VALUE,)),
    FLAT_READ_TRACK: bytes((_RK_VALUE,)),
    FLAT_OVERLAP_ADD: bytes((_RK_PAIRS,)),
    FLAT_INSERT_RECHECK: bytes((_RK_REEVALS,)),
    FLAT_WRITE_PROBE: bytes((_RK_PAIRS, _RK_REEVALS)),
}
_NO_RESULT = b""


class UnencodableValue(ValueError):
    """A value the *strict* lane codec cannot round-trip natively.

    Deliberately narrow: the strict codec refuses dicts, out-of-``i64``
    ints, and subclassed scalars rather than degrade them the way the
    JSONL-parity wire codec does — a lane frame that cannot reproduce
    the exact value falls back to the pickle pipe, so the transport can
    never change a verdict.
    """


def _encode_strict(value: Any, out: bytearray) -> None:
    """Append one inline tagged value with *native* fidelity.

    Exact types only (a subclass could carry state the tag cannot);
    tuples and lists keep their type and nest recursively; everything
    else raises :class:`UnencodableValue`.
    """
    if value is None:
        out.append(_VAL_NONE)
    elif value is True:
        out.append(_VAL_TRUE)
    elif value is False:
        out.append(_VAL_FALSE)
    elif type(value) is int:
        if _I64_MIN <= value <= _I64_MAX:
            out += _TAG_I64.pack(_VAL_INT, value)
        else:
            raise UnencodableValue("int out of i64 range")
    elif type(value) is str:
        payload = value.encode("utf-8")
        out += _TAG_U32.pack(_VAL_STR, len(payload))
        out += payload
    elif type(value) is float:
        out += _TAG_F64.pack(_VAL_FLOAT, value)
    elif value is BOTTOM:
        out.append(_VAL_BOTTOM)
    elif type(value) is tuple:
        out += _TAG_U32.pack(_VAL_TUPLE, len(value))
        for item in value:
            _encode_strict(item, out)
    elif type(value) is list:
        out += _TAG_U32.pack(_VAL_LIST, len(value))
        for item in value:
            _encode_strict(item, out)
    else:
        raise UnencodableValue(
            f"lane codec cannot round-trip {type(value).__name__} natively"
        )


def _decode_strict_values(buf: Buffer, offset: int, count: int) -> Tuple[List[Any], int]:
    """Decode ``count`` strict-encoded inline values."""
    values: List[Any] = []
    append = values.append
    i64_unpack = _I64.unpack_from
    f64_unpack = _F64.unpack_from
    u32_unpack = _U32.unpack_from
    end = len(buf)
    for _ in range(count):
        if offset >= end:
            raise ValueError("lane frame truncated in value stream")
        tag = buf[offset]
        offset += 1
        if tag == _VAL_INT:
            append(i64_unpack(buf, offset)[0])
            offset += 8
        elif tag == _VAL_NONE:
            append(None)
        elif tag == _VAL_BOTTOM:
            append(BOTTOM)
        elif tag == _VAL_STR:
            (length,) = u32_unpack(buf, offset)
            offset += 4
            payload = buf[offset : offset + length]
            if len(payload) != length:
                raise ValueError("lane frame truncated in string value")
            append(str(payload, "utf-8"))
            offset += length
        elif tag == _VAL_TRUE:
            append(True)
        elif tag == _VAL_FALSE:
            append(False)
        elif tag == _VAL_FLOAT:
            append(f64_unpack(buf, offset)[0])
            offset += 8
        elif tag in (_VAL_TUPLE, _VAL_LIST):
            (n_items,) = u32_unpack(buf, offset)
            offset += 4
            if n_items > end - offset:  # each item needs >= 1 byte
                raise ValueError("lane frame truncated in sequence value")
            items, offset = _decode_strict_values(buf, offset, n_items)
            append(tuple(items) if tag == _VAL_TUPLE else items)
        else:
            raise ValueError(f"unknown strict value tag {tag}")
    return values, offset


#: Types the bulk column fast paths cover: pure-int columns (timestamps,
#: tids) and int/None/⊥v mixes (operand columns, visible-value columns).
#: ``bool`` is deliberately absent — it subclasses ``int`` and must take
#: the general loop's identity checks.
_BOTTOM_TYPE = type(BOTTOM)
_FAST_TYPES = frozenset((int, type(None), _BOTTOM_TYPE))


def _pack_strict_column(values: Sequence[Any]) -> bytes:
    """Pack one operand column of a flat stream (split layout).

    Same three-section layout as the wire's top-level value section —
    tag column, bulk ``!{k}q`` int column, overflow stream — but with
    the strict payload encodings.  Raises :class:`UnencodableValue`
    for anything the strict codec refuses.
    """
    n = len(values)
    types = set(map(type, values)) if n else ()
    if types == {int}:
        try:
            return _INT_TAG * n + struct.pack(f"!{n}q", *values)
        except struct.error:
            raise UnencodableValue("int out of i64 range") from None
    if types and types <= _FAST_TYPES:
        # int/None/⊥v mix: two bulk passes instead of the branchy loop.
        tags = bytes(
            _VAL_INT
            if type(value) is int
            else (_VAL_NONE if value is None else _VAL_BOTTOM)
            for value in values
        )
        ints = [value for value in values if type(value) is int]
        try:
            return tags + struct.pack(f"!{len(ints)}q", *ints)
        except struct.error:
            raise UnencodableValue("int out of i64 range") from None
    tags = bytearray()
    tags_append = tags.append
    ints: List[int] = []
    ints_append = ints.append
    overflow = bytearray()
    i64_min, i64_max = _I64_MIN, _I64_MAX
    for value in values:
        if type(value) is int:
            if i64_min <= value <= i64_max:
                tags_append(_VAL_INT)
                ints_append(value)
            else:
                raise UnencodableValue("int out of i64 range")
        elif value is None:
            tags_append(_VAL_NONE)
        elif value is True:
            tags_append(_VAL_TRUE)
        elif value is False:
            tags_append(_VAL_FALSE)
        elif type(value) is str:
            payload = value.encode("utf-8")
            tags_append(_VAL_STR)
            overflow += _U32.pack(len(payload))
            overflow += payload
        elif type(value) is float:
            tags_append(_VAL_FLOAT)
            overflow += _F64.pack(value)
        elif value is BOTTOM:
            tags_append(_VAL_BOTTOM)
        elif type(value) is tuple:
            tags_append(_VAL_TUPLE)
            overflow += _U32.pack(len(value))
            for item in value:
                _encode_strict(item, overflow)
        elif type(value) is list:
            tags_append(_VAL_LIST)
            overflow += _U32.pack(len(value))
            for item in value:
                _encode_strict(item, overflow)
        else:
            raise UnencodableValue(
                f"lane codec cannot round-trip {type(value).__name__} natively"
            )
    return bytes(tags) + struct.pack(f"!{len(ints)}q", *ints) + bytes(overflow)


def _unpack_strict_column(buf: Buffer, offset: int, n: int) -> Tuple[List[Any], int]:
    """Decode one operand column; returns (values, next offset)."""
    tags = bytes(buf[offset : offset + n])
    if len(tags) != n:
        raise ValueError("lane frame truncated in column tags")
    offset += n
    n_ints = tags.count(_VAL_INT)
    ints_struct = struct.Struct(f"!{n_ints}q")
    ints = ints_struct.unpack_from(buf, offset)
    offset += ints_struct.size
    if n_ints == n:  # timestamp/tid columns: every operand an int
        return list(ints), offset
    if n_ints + tags.count(_VAL_NONE) + tags.count(_VAL_BOTTOM) == n:
        # int/None/⊥v mix: one branch-light pass, no payload cursor.
        next_int = iter(ints).__next__
        return (
            [
                next_int()
                if tag == _VAL_INT
                else (None if tag == _VAL_NONE else BOTTOM)
                for tag in tags
            ],
            offset,
        )
    values: List[Any] = []
    append = values.append
    f64_unpack = _F64.unpack_from
    u32_unpack = _U32.unpack_from
    end = len(buf)
    next_int = 0
    for tag in tags:
        if tag == _VAL_INT:
            append(ints[next_int])
            next_int += 1
        elif tag == _VAL_NONE:
            append(None)
        elif tag == _VAL_BOTTOM:
            append(BOTTOM)
        elif tag == _VAL_STR:
            (length,) = u32_unpack(buf, offset)
            offset += 4
            payload = buf[offset : offset + length]
            if len(payload) != length:
                raise ValueError("lane frame truncated in string value")
            append(str(payload, "utf-8"))
            offset += length
        elif tag == _VAL_TRUE:
            append(True)
        elif tag == _VAL_FALSE:
            append(False)
        elif tag == _VAL_FLOAT:
            append(f64_unpack(buf, offset)[0])
            offset += 8
        elif tag in (_VAL_TUPLE, _VAL_LIST):
            (n_items,) = u32_unpack(buf, offset)
            offset += 4
            if n_items > end - offset:
                raise ValueError("lane frame truncated in sequence value")
            items, offset = _decode_strict_values(buf, offset, n_items)
            append(tuple(items) if tag == _VAL_TUPLE else items)
        else:
            raise ValueError(f"unknown strict value tag {tag}")
    return values, offset


#: Entries kept in a caller-supplied key encode cache before it is
#: reset — bounds coordinator memory against unbounded key spaces.
_KEY_CACHE_LIMIT = 1 << 18


def pack_flat_frame(
    tags: Sequence[int],
    keys: Sequence[str],
    a: Sequence[Any],
    b: Sequence[Any],
    c: Sequence[Any],
    d: Sequence[Any],
    optimized: bool,
    key_cache: "Optional[Dict[str, bytes]]" = None,
) -> bytes:
    """Pack one shard's flat command stream as a request-lane frame.

    Layout: the frame header (kind byte, optimized flag, command count),
    a per-frame interned key table, the command tag column as raw bytes,
    a ``u32`` key-id column, then the four operand columns in the split
    strict layout.  ``key_cache`` (optional, caller-owned) memoizes the
    length-prefixed UTF-8 form of each key across frames — the
    coordinator packs the same key space every batch.  Raises
    :class:`UnencodableValue` when any operand refuses strict encoding
    (the coordinator then falls back to the pipe); ``FLAT_MERGE`` rows
    carry spill dicts and must never reach this packer — the coordinator
    routes streams containing them to the pipe wholesale.
    """
    n = len(tags)
    key_ids: Dict[str, int] = {}
    key_ids_get = key_ids.get
    id_column: List[int] = []
    id_append = id_column.append
    if key_cache is None:
        key_cache = {}
    elif len(key_cache) > _KEY_CACHE_LIMIT:
        key_cache.clear()
    cache_get = key_cache.get
    table_parts: List[bytes] = [b""]  # [0] becomes the count header
    table_append = table_parts.append
    for key in keys:
        key_id = key_ids_get(key)
        if key_id is None:
            key_id = key_ids[key] = len(key_ids)
            encoded = cache_get(key)
            if encoded is None:
                raw = key.encode("utf-8")
                if len(raw) > 0xFFFF:
                    raise UnencodableValue(
                        f"key too long for lane frame ({len(raw)} bytes)"
                    )
                encoded = key_cache[key] = _U16.pack(len(raw)) + raw
            table_append(encoded)
        id_append(key_id)
    table_parts[0] = _U32.pack(len(key_ids))
    return b"".join(
        (
            _FLAT_HDR.pack(RQ_FLAT, 1 if optimized else 0, n),
            b"".join(table_parts),
            bytes(tags),
            struct.pack(f"!{n}I", *id_column),
            _pack_strict_column(a),
            _pack_strict_column(b),
            _pack_strict_column(c),
            _pack_strict_column(d),
        )
    )


def unpack_flat_frame(
    buf: Buffer,
) -> Tuple[bytes, List[str], List[Any], List[Any], List[Any], List[Any], bool]:
    """Decode a request-lane frame in place; returns the stream + flag.

    The returned ``tags`` is a ``bytes`` column (indexing yields the
    same ints ``execute_flat`` branches on); keys and operands are fully
    materialized Python objects, so the frame's ring slot is free for
    reuse the moment this returns.
    """
    kind, optimized, n = _FLAT_HDR.unpack_from(buf, 0)
    if kind != RQ_FLAT:
        raise ValueError(f"not a flat request frame (kind {kind})")
    offset = _FLAT_HDR.size
    (n_keys,) = _U32.unpack_from(buf, offset)
    offset += 4
    table: List[str] = []
    table_append = table.append
    u16_unpack = _U16.unpack_from
    for _ in range(n_keys):
        (length,) = u16_unpack(buf, offset)
        offset += 2
        encoded = buf[offset : offset + length]
        if len(encoded) != length:
            raise ValueError("lane frame truncated in key table")
        table_append(str(encoded, "utf-8"))
        offset += length
    tags = bytes(buf[offset : offset + n])
    if len(tags) != n:
        raise ValueError("lane frame truncated in tag column")
    offset += n
    ids_struct = struct.Struct(f"!{n}I")
    id_column = ids_struct.unpack_from(buf, offset)
    offset += ids_struct.size
    keys = list(map(table.__getitem__, id_column))
    a, offset = _unpack_strict_column(buf, offset, n)
    b, offset = _unpack_strict_column(buf, offset, n)
    c, offset = _unpack_strict_column(buf, offset, n)
    d, offset = _unpack_strict_column(buf, offset, n)
    return tags, keys, a, b, c, d, bool(optimized)


def result_kinds(tags: Iterable[int]) -> bytes:
    """The result-shape column of one flat stream — one ``_RK_*`` byte
    per result slot of ``execute_flat``, in stream order (bookkeeping
    rows emit nothing; a fused write row emits two slots)."""
    of_tag = _RKS_OF_TAG.get
    return b"".join([of_tag(tag, _NO_RESULT) for tag in tags])


_RESULT_HDR = struct.Struct("!BII")  # frame kind, n_results, n_values


def pack_result_frame(results: Sequence[Any], kinds: bytes) -> bytes:
    """Pack one shard's semantic results as a result-lane frame.

    ``kinds`` is the shape column from :func:`result_kinds` — one
    ``_RK_*`` byte per result, written to the frame verbatim (a visible
    value can itself be a tuple, so shape is never inferred from the
    payload).  Split layout: the shape column, then every visible value
    bulk-packed as one strict column — the common all-int/⊥v case costs
    two passes instead of a tagged encode per value — then an overflow
    stream holding overlap hits as bulk-packed ``(owner_tid,
    owner_commit_ts)`` i64 arrays and re-evaluations as ``(reader_tid,
    ok, expected)`` records.  Raises :class:`UnencodableValue` when any
    value refuses strict encoding — the worker then ships the results
    over the pipe and pushes :data:`RESULT_VIA_PIPE_FRAME` instead.
    """
    values: List[Any] = []
    values_append = values.append
    tail = bytearray()
    for shape, result in zip(kinds, results):
        if shape == _RK_VALUE:
            values_append(result)
        elif shape == _RK_PAIRS:
            tail += _U32.pack(len(result))
            if result:
                flat = [part for pair in result for part in pair]
                tail += struct.pack(f"!{len(flat)}q", *flat)
        else:  # _RK_REEVALS
            tail += _U32.pack(len(result))
            for reader_tid, ok, expected in result:
                tail += _I64.pack(reader_tid)
                tail.append(1 if ok else 0)
                _encode_strict(expected, tail)
    return b"".join(
        (
            _RESULT_HDR.pack(RESULT_INLINE, len(results), len(values)),
            kinds,
            _pack_strict_column(values),
            bytes(tail),
        )
    )


def unpack_result_frame(buf: Buffer) -> List[Any]:
    """Decode a result-lane frame in place into the results list the
    coordinator's merge walk consumes (one entry per semantic command,
    stream order)."""
    if buf[0] != RESULT_INLINE:
        raise ValueError(f"not an inline result frame (kind {buf[0]})")
    _, count, n_values = _RESULT_HDR.unpack_from(buf, 0)
    offset = _RESULT_HDR.size
    shapes = bytes(buf[offset : offset + count])
    if len(shapes) != count:
        raise ValueError("result frame truncated in shape column")
    offset += count
    values, offset = _unpack_strict_column(buf, offset, n_values)
    if shapes.count(_RK_VALUE) == count:  # read-only batch: done
        return values
    results: List[Any] = []
    append = results.append
    next_value = iter(values).__next__
    i64_unpack = _I64.unpack_from
    u32_unpack = _U32.unpack_from
    for shape in shapes:
        if shape == _RK_VALUE:
            append(next_value())
        elif shape == _RK_PAIRS:
            (n_pairs,) = u32_unpack(buf, offset)
            offset += 4
            pairs_struct = struct.Struct(f"!{2 * n_pairs}q")
            flat = pairs_struct.unpack_from(buf, offset)
            offset += pairs_struct.size
            append([(flat[i], flat[i + 1]) for i in range(0, 2 * n_pairs, 2)])
        elif shape == _RK_REEVALS:
            (n_reevals,) = u32_unpack(buf, offset)
            offset += 4
            reevals: List[Tuple[int, bool, Any]] = []
            for _ in range(n_reevals):
                (reader_tid,) = i64_unpack(buf, offset)
                offset += 8
                ok = buf[offset] == 1
                offset += 1
                expected_values, offset = _decode_strict_values(buf, offset, 1)
                reevals.append((reader_tid, ok, expected_values[0]))
            append(reevals)
        else:
            raise ValueError(f"unknown result shape {shape}")
    return results
