"""EXT verdict tracking: flip-flops, timeouts, rectify times.

Asynchrony makes the EXT verdict of a transaction *unstable* (§III-C):
when a transaction is collected, the writer its read observed may simply
not have arrived yet.  Aion therefore keeps a tentative per-(transaction,
key) verdict — ``T.EXT`` in Algorithm 3 — re-evaluates it as out-of-order
transactions arrive, and only *reports* a violation when the
transaction's timer (5 s in the paper) expires with the verdict still ⊥.

This module tracks those verdicts together with the quantities §VI-C
studies:

- **flip-flops** — the number of ⊤/⊥ switches per (txn, key) pair
  (Fig 13a, 14, 17–19);
- **rectify times** — how long a tentative false positive/negative stood
  before being corrected (Fig 13b, 20, 21).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

__all__ = [
    "ExtVerdict",
    "ExtStatusTracker",
    "FlipFlopStats",
    "EV_TID",
    "EV_KEY",
    "EV_SNAPSHOT_TS",
    "EV_ACTUAL",
    "EV_OK",
    "EV_EXPECTED",
    "EV_FIRST_SEEN",
    "EV_LAST_CHANGE",
    "EV_FLIPS",
    "EV_FINALIZED",
    "EV_WRONG_SINCE",
]

# A tentative EXT verdict is a plain mutable list record, one per
# external read (one (txn, key) pair).  The batch kernel constructs one
# per external read on the ingestion hot path; a list literal beats any
# class instantiation there (no __init__ frame, no attribute stores),
# and the verdict pass mutates ok/flips/wrong_since in place.  The index
# constants below are the field contract shared with the checkers'
# violation reporters.
EV_TID = 0
EV_KEY = 1
EV_SNAPSHOT_TS = 2
EV_ACTUAL = 3
EV_OK = 4
EV_EXPECTED = 5
EV_FIRST_SEEN = 6
EV_LAST_CHANGE = 7
EV_FLIPS = 8
EV_FINALIZED = 9
#: Set when the verdict first became wrong; cleared when corrected.
EV_WRONG_SINCE = 10

#: Type alias for one verdict record — ``List[Any]`` indexed by ``EV_*``.
ExtVerdict = List[Any]


@dataclass
class FlipFlopStats:
    """Aggregates for the flip-flop figures."""

    #: flip count -> number of (txn, key) pairs with that many flips.
    flips_per_pair: Dict[int, int] = field(default_factory=dict)
    #: tids that experienced at least one flip.
    flipped_tids: Set[int] = field(default_factory=set)
    #: rectify times in (virtual) seconds.
    rectify_times: List[float] = field(default_factory=list)
    n_pairs: int = 0
    n_finalized: int = 0
    n_final_violations: int = 0

    def flip_histogram(self, buckets: Tuple[int, ...] = (1, 2, 3)) -> Dict[str, int]:
        """Histogram of flip counts as in Fig 13a: 1, 2, 3, 4+ buckets."""
        histogram = {str(b): 0 for b in buckets}
        histogram[f"{buckets[-1] + 1}+"] = 0
        for flips, count in self.flips_per_pair.items():
            if flips <= 0:
                continue
            if flips <= buckets[-1]:
                histogram[str(flips)] += count
            else:
                histogram[f"{buckets[-1] + 1}+"] += count
        return histogram

    def rectify_histogram(
        self, edges: Tuple[float, ...] = (0.001, 0.002, 0.010, 0.099, 1.0)
    ) -> Dict[str, int]:
        """Histogram of rectify times, bucketed like Fig 13b (seconds)."""
        labels = ["0-1ms", "1-2ms", "2-10ms", "10-99ms", "100-999ms", "1000+ms"]
        counts = [0] * len(labels)
        for value in self.rectify_times:
            if value < edges[0]:
                counts[0] += 1
            elif value < edges[1]:
                counts[1] += 1
            elif value < edges[2]:
                counts[2] += 1
            elif value < edges[3]:
                counts[3] += 1
            elif value < edges[4]:
                counts[4] += 1
            else:
                counts[5] += 1
        return dict(zip(labels, counts))


class ExtStatusTracker:
    """All live EXT verdicts plus the timeout queue.

    ``clock`` supplies the current (possibly virtual) time; each tracked
    transaction gets one deadline ``arrival + timeout``.  When
    :meth:`advance_to` passes a deadline, every verdict of that
    transaction is finalized: still-⊥ verdicts are reported through the
    ``on_violation`` callback, and the (txn, key) pair stops being
    re-checked (Algorithm 3, TIMEOUT / lines 40–41).
    """

    def __init__(
        self,
        *,
        timeout: float,
        on_violation: Callable[[ExtVerdict], None],
        on_finalized: Optional[Callable[[ExtVerdict], None]] = None,
        on_finalized_batch: Optional[Callable[[List[ExtVerdict]], None]] = None,
    ) -> None:
        self._timeout = timeout
        self._on_violation = on_violation
        self._on_finalized = on_finalized
        #: Alternative to ``on_finalized``: delivered once per
        #: :meth:`advance_to` with every verdict finalized by that call,
        #: so the owner can drop finalized reads from its read index in
        #: one grouped pass instead of one callback per verdict.
        self._on_finalized_batch = on_finalized_batch
        self._verdicts: Dict[Tuple[int, str], ExtVerdict] = {}
        #: (deadline, sequence, tids) — the sequence number keeps entries
        #: totally ordered so equal deadlines never compare tid tuples.
        self._deadlines: List[Tuple[float, int, Tuple[int, ...]]] = []
        self._deadline_seq = 0
        self._txn_pairs: Dict[int, List[Tuple[int, str]]] = {}
        self._timed_out: Set[int] = set()
        self.stats = FlipFlopStats()

    def __len__(self) -> int:
        return len(self._verdicts)

    def track(self, tid: int, key: str, snapshot_ts: int, actual: Any, ok: bool, expected: Any, now: float) -> ExtVerdict:
        """Register the initial verdict for one external read."""
        verdict = [
            tid, key, snapshot_ts, actual, ok, expected,
            now, now, 0, False, None if ok else now,
        ]
        self._verdicts[(tid, key)] = verdict
        self._txn_pairs.setdefault(tid, []).append((tid, key))
        self.stats.n_pairs += 1
        return verdict

    def track_batch(
        self, items: Iterable[Tuple[int, str, int, Any, bool, Any]], now: float
    ) -> None:
        """Register initial verdicts for a whole batch of external reads.

        ``items`` yields ``(tid, key, snapshot_ts, actual, ok, expected)``
        tuples — the flat record layout the batch kernel's route pass
        produces.  Equivalent to calling :meth:`track` per item, minus the
        per-call keyword plumbing.
        """
        verdicts = self._verdicts
        txn_pairs = self._txn_pairs
        n = 0
        for tid, key, snapshot_ts, actual, ok, expected in items:
            verdicts[(tid, key)] = [
                tid, key, snapshot_ts, actual, ok, expected,
                now, now, 0, False, None if ok else now,
            ]
            pairs = txn_pairs.get(tid)
            if pairs is None:
                txn_pairs[tid] = [(tid, key)]
            else:
                pairs.append((tid, key))
            n += 1
        self.stats.n_pairs += n

    def track_columns(
        self,
        tids: List[int],
        keys: List[str],
        snapshot_ts: List[int],
        actuals: List[Any],
        expecteds: List[Any],
        now: float,
        bottom: Any,
    ) -> None:
        """Columnar :meth:`track_batch`: parallel arrays straight from the
        batch kernel's route pass, no per-item record tuples.

        The initial verdict (``values_match`` on expected vs actual, with
        ``bottom`` matching a ``None`` client read) is computed inline —
        one fused pass instead of a separate ok column.  Exploits batch
        order — a transaction's external reads are contiguous in the
        arrays — to look up the per-transaction pair list once per run of
        equal tids instead of once per read.
        """
        verdicts = self._verdicts
        txn_pairs = self._txn_pairs
        last_tid: Optional[int] = None
        pairs: Optional[List[Tuple[int, str]]] = None
        for tid, key, sts, actual, expected in zip(
            tids, keys, snapshot_ts, actuals, expecteds
        ):
            ok = (actual is None) if expected is bottom else (expected == actual)
            pair = (tid, key)
            verdicts[pair] = [
                tid, key, sts, actual, ok, expected,
                now, now, 0, False, None if ok else now,
            ]
            if tid != last_tid:
                pairs = txn_pairs.get(tid)
                if pairs is None:
                    pairs = txn_pairs[tid] = []
                last_tid = tid
            pairs.append(pair)
        self.stats.n_pairs += len(tids)

    def arm_timer(self, tid: int, now: float) -> None:
        """Set the transaction's EXT re-checking deadline (line 3:3)."""
        self.arm_timers((tid,), now)

    def arm_timers(self, tids: Iterable[int], now: float) -> None:
        """Arm one shared deadline for a whole arrival batch.

        Batched ingestion stamps every transaction of a batch with the
        same arrival time, so their deadlines coincide; a single heap
        entry per batch amortizes the push and the later pops.
        """
        tids = tuple(tids)
        if not tids:
            return
        heapq.heappush(self._deadlines, (now + self._timeout, self._deadline_seq, tids))
        self._deadline_seq += 1

    def reevaluate(self, tid: int, key: str, ok: bool, expected: Any, now: float) -> Optional[ExtVerdict]:
        """Apply a re-check result; no-op for finalized or unknown pairs."""
        verdict = self._verdicts.get((tid, key))
        if verdict is None or verdict[EV_FINALIZED]:
            return None
        if ok != verdict[EV_OK]:
            verdict[EV_FLIPS] += 1
            verdict[EV_LAST_CHANGE] = now
            if ok:
                wrong_since = verdict[EV_WRONG_SINCE]
                if wrong_since is not None:
                    self.stats.rectify_times.append(now - wrong_since)
                    verdict[EV_WRONG_SINCE] = None
            else:
                verdict[EV_WRONG_SINCE] = now
        verdict[EV_OK] = ok
        verdict[EV_EXPECTED] = expected
        if verdict[EV_FLIPS] > 0:
            self.stats.flipped_tids.add(tid)
        return verdict

    def is_timed_out(self, tid: int) -> bool:
        return tid in self._timed_out

    def advance_to(self, now: float) -> List[ExtVerdict]:
        """Finalize every transaction whose deadline has passed.

        Returns the verdicts finalized in this call (both ⊤ and ⊥); ⊥
        verdicts are additionally delivered to ``on_violation``.
        """
        deadlines = self._deadlines
        if not deadlines or deadlines[0][0] > now:
            return []
        if now == float("inf"):
            return self._finalize_all()
        finalized: List[ExtVerdict] = []
        verdicts = self._verdicts
        txn_pairs = self._txn_pairs
        timed_out = self._timed_out
        stats = self.stats
        flips_per_pair = stats.flips_per_pair
        heappop = heapq.heappop
        while deadlines and deadlines[0][0] <= now:
            _, _, tids = heappop(deadlines)
            for tid in tids:
                if tid in timed_out:
                    continue
                timed_out.add(tid)
                for pair in txn_pairs.pop(tid, ()):
                    verdict = verdicts.pop(pair, None)
                    if verdict is None or verdict[EV_FINALIZED]:
                        continue
                    verdict[EV_FINALIZED] = True
                    stats.n_finalized += 1
                    flips = verdict[EV_FLIPS]
                    if flips > 0:
                        flips_per_pair[flips] = flips_per_pair.get(flips, 0) + 1
                    finalized.append(verdict)
                    if not verdict[EV_OK]:
                        stats.n_final_violations += 1
                        self._on_violation(verdict)
                    if self._on_finalized is not None:
                        self._on_finalized(verdict)
        if finalized and self._on_finalized_batch is not None:
            self._on_finalized_batch(finalized)
        return finalized

    def _finalize_all(self) -> List[ExtVerdict]:
        """End-of-stream fast path: every armed deadline is due at once.

        Iterating the verdict dict replaces one ``dict.pop`` per pair and
        one ``txn_pairs.pop`` per transaction with two clears.  Order is
        preserved exactly: live verdicts sit in the dict in track order —
        batch arrival order — which is the same order the heap-driven loop
        visits them (equal-deadline entries pop in arming sequence, tids
        within an entry and pairs within a transaction are in arrival
        order), so reported violations come out identically.
        """
        deadlines = self._deadlines
        timed_out = self._timed_out
        while deadlines:
            for tid in deadlines.pop()[2]:
                timed_out.add(tid)
        stats = self.stats
        flips_per_pair = stats.flips_per_pair
        finalized: List[ExtVerdict] = []
        append = finalized.append
        on_finalized = self._on_finalized
        on_violation = self._on_violation
        # Every transaction with a live verdict has an entry in
        # ``_txn_pairs``; when all of them are armed, the per-verdict
        # membership test is dead weight.
        check_armed = not timed_out.issuperset(self._txn_pairs)
        n_violations = 0
        for verdict in self._verdicts.values():
            if check_armed and verdict[EV_TID] not in timed_out:
                # Tracked but never armed: not yet due, keep it live.
                continue
            verdict[EV_FINALIZED] = True
            flips = verdict[EV_FLIPS]
            if flips > 0:
                flips_per_pair[flips] = flips_per_pair.get(flips, 0) + 1
            append(verdict)
            if not verdict[EV_OK]:
                n_violations += 1
                on_violation(verdict)
            if on_finalized is not None:
                on_finalized(verdict)
        stats.n_finalized += len(finalized)
        stats.n_final_violations += n_violations
        if len(finalized) == len(self._verdicts):
            self._verdicts.clear()
            self._txn_pairs.clear()
        else:  # pragma: no cover - unarmed verdicts are not produced by the checkers
            for verdict in finalized:
                del self._verdicts[(verdict[EV_TID], verdict[EV_KEY])]
                self._txn_pairs.pop(verdict[EV_TID], None)
        if finalized and self._on_finalized_batch is not None:
            self._on_finalized_batch(finalized)
        return finalized

    def flush(self) -> List[ExtVerdict]:
        """Finalize everything regardless of deadlines (end of stream)."""
        return self.advance_to(float("inf"))

    def pending_pairs(self) -> int:
        return len(self._verdicts)

    def min_pending_snapshot_ts(self) -> Optional[int]:
        """Smallest snapshot point among unfinalized reads.

        Garbage collection must not evict frontier versions at or above
        this point minus one, or pending re-checks would consult spilled
        state on every arrival.
        """
        if not self._verdicts:
            return None
        return min(v[EV_SNAPSHOT_TS] for v in self._verdicts.values())

