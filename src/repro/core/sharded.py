"""ShardedAion — a sharded, batch-oriented ingestion frontend for Aion.

Algorithm 3's per-arrival work decomposes cleanly by key: the versioned
frontier query of step ① , the interval-overlap query of step ② and the
EXT re-check sweep of step ③ each touch exactly the keys the arriving
transaction reads or writes.  Since every key is owned by exactly one
shard, hash-partitioning the three versioned structures
(:class:`~repro.core.versioned.VersionedFrontier`,
:class:`~repro.core.versioned.WriterIntervals`,
:class:`~repro.core.versioned.ExtReadIndex`) across N independent shard
states preserves the single-checker semantics exactly, while the
cross-key state — SESSION tracking, INT checking, the EXT timer queue,
violation aggregation, the resident set and GC — stays in a global
coordinator.

Ingestion is *batch oriented* and runs through the staged batch kernel
(PR 6): the collector ships transactions in batches (Fig 3), and
:meth:`ShardedAion.receive_many` **routes** the whole batch once into
per-shard *flat command arrays* (parallel ``tags``/``keys``/operand
lists — one integer tag per command instead of a tuple allocation per
command), **probes** by handing each shard its arrays to interpret in
one pass (serially in-process, or in parallel worker processes), and
applies a **verdict** pass that merges the shard results back in arrival
order.  The equivalence argument is short:

- per-key commands of one transaction are enqueued in the same order
  Aion executes them, and commands of transaction *i* precede those of
  transaction *j > i* in every shard stream, so each shard's structures
  go through exactly the states they would under sequential Aion;
- commands on different keys operate on disjoint state and commute;
- the coordinator applies global effects (EXT tracking, re-evaluation,
  conflict reports) by walking the batch in arrival order, so per-pair
  verdict updates happen in the sequential order as well.  Tracking the
  batch's external reads *before* applying its re-evaluations is safe
  because a shard's re-evaluation list for a write only contains reads
  that preceded the write in that key's stream — a pair tracked later
  can never appear in it.

Hence the final violation multiset equals single-shard Aion's — the
differential tests in ``tests/test_sharded.py`` demonstrate it.

The optional ``executor="process"`` mode keeps each shard's state in a
dedicated worker process connected by a pipe; a batch then dispatches all
shard command lists at once and the shards execute them in parallel,
free of the GIL.  Results (and therefore verdicts) are identical — only
where the commands run changes.

``executor="shm-process"`` keeps the same worker topology but moves the
data plane off the pickle pipe onto **shared-memory shard lanes**: per
shard, one request ring and one result ring
(:class:`~repro.core.shm.ShmRing`).  The coordinator packs each routed
flat stream *once* with the shared columnar codec
(:func:`~repro.core.colpack.pack_flat_frame`), the worker decodes the
frame in place from a ``memoryview`` into the ring — no pickle and no
receive-side copy on the request path — and answers with a compact
result frame on its result lane.  Fallback is graceful and per-batch:
streams carrying spill merges, values the strict lane codec refuses, or
frames beyond the ring's bound take the pipe path instead, and a result
that refuses strict encoding rides inside the worker's doorbell reply —
so verdicts are transport-independent by construction, not by luck.
Waiting is doorbell-driven in both directions (tiny fixed-size pipe
messages; both sides park in real blocking waits), so lanes cost no
busy-polling even on hosts with fewer cores than shards.  The
request-lane heartbeat doubles as a liveness signal:
:meth:`ShardedAion.workers_alive` detects a *wedged* (alive but
stalled) worker by watching the heartbeat freeze.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.aion import AionConfig, GcReport, _TID_MAX
from repro.core.colpack import (
    UnencodableValue,
    pack_flat_frame,
    pack_result_frame,
    result_kinds,
    unpack_flat_frame,
    unpack_result_frame,
)
from repro.core.common import BOTTOM, SessionTracker, values_match
from repro.core.ext_status import (
    EV_ACTUAL,
    EV_EXPECTED,
    EV_KEY,
    EV_SNAPSHOT_TS,
    EV_TID,
    ExtStatusTracker,
    ExtVerdict,
    FlipFlopStats,
)
from repro.core.kernel import KernelStats, resolve_writes
from repro.core.spill import SpillStore
from repro.core.versioned import ExtReadIndex, VersionedFrontier, WriterIntervals
from repro.core.violations import (
    Axiom,
    CheckResult,
    ConflictViolation,
    ExtViolation,
    IntViolation,
    TimestampOrderViolation,
    Violation,
)
from repro.histories.model import OpKind, Transaction
from repro.core.colpack import ColumnarBatch
from repro.util.sizeof import deep_sizeof
from repro.util.sortedmap import SortedMap

__all__ = ["ShardedAion", "shard_of"]


def shard_of(key: str, n_shards: int) -> int:
    """Stable key → shard routing (crc32; Python's ``hash`` is salted)."""
    return zlib.crc32(key.encode("utf-8")) % n_shards


# Integer tags of the flat shard command encoding.  A command is one row
# across the six parallel arrays (tags, keys, a, b, c, d); operand
# meaning per tag:
#
#   ==================  =====  ============  ============  =======  ======
#   tag                 key    a             b             c        d
#   ==================  =====  ============  ============  =======  ======
#   _READ_TRACK         key    snapshot_ts   tid           actual   —
#   _WRITE_PROBE        key    start_ts      commit_ts     tid      value
#   _REMOVE_READ        key    snapshot_ts   tid           —        —
#   _MERGE              ""     frontier_seg  interval_seg  —        —
#   _VISIBLE            key    snapshot_ts   —             —        —
#   _ADD_READ           key    snapshot_ts   tid           actual   —
#   _OVERLAP_ADD        key    start_ts      commit_ts     tid      —
#   _INSERT_RECHECK     key    commit_ts     value         tid      —
#   ==================  =====  ============  ============  =======  ======
#
# The router emits the fused rows (_READ_TRACK = visible probe + read
# registration, _WRITE_PROBE = overlap query + insert/recheck) — half
# the rows per batch of the two-row forms, which the interpreter still
# accepts.  The tag values are owned by :mod:`repro.core.colpack` (the
# lane frame codec speaks them on the wire); aliased here for the
# interpreter loop.
from repro.core.colpack import FLAT_VISIBLE as _VISIBLE
from repro.core.colpack import FLAT_ADD_READ as _ADD_READ
from repro.core.colpack import FLAT_REMOVE_READ as _REMOVE_READ
from repro.core.colpack import FLAT_OVERLAP_ADD as _OVERLAP_ADD
from repro.core.colpack import FLAT_INSERT_RECHECK as _INSERT_RECHECK
from repro.core.colpack import FLAT_MERGE as _MERGE
from repro.core.colpack import FLAT_READ_TRACK as _READ_TRACK
from repro.core.colpack import FLAT_WRITE_PROBE as _WRITE_PROBE

#: One shard's flat command stream: (tags, keys, a, b, c, d) lists.
_FlatStream = Tuple[
    List[int], List[str], List[Any], List[Any], List[Any], List[Any]
]


class _ShardCore:
    """One shard's versioned structures plus a command interpreter.

    The data plane speaks the *flat* encoding: five parallel arrays per
    batch (see the tag table above) that cross a process boundary as one
    pickle instead of one tuple per command, and that ``execute_flat``
    interprets in a single branch-per-tag loop.  Control-plane commands
    (evict, merge, sizeof) remain plain tuples through ``execute`` —
    they are rare and payload-heavy, so flattening buys nothing.
    """

    __slots__ = ("frontier", "writers", "ext_reads")

    def __init__(self) -> None:
        self.frontier = VersionedFrontier()
        self.writers = WriterIntervals()
        self.ext_reads = ExtReadIndex()

    def execute_flat(
        self,
        tags: List[int],
        keys: List[str],
        a: List[Any],
        b: List[Any],
        c: List[Any],
        d: List[Any],
        optimized: bool,
    ) -> List[Any]:
        """Interpret one batch's flat command arrays for this shard.

        Returns only the *semantic* results (visible values, overlap
        hits, re-evaluation lists) in stream order — a fused write row
        contributes two slots (overlap hits, then re-evaluations);
        bookkeeping commands (add/remove read, merge) emit no result
        slot, so the coordinator's merge walk consumes results with a
        plain sequential cursor — no None-skipping.
        """
        results: List[Any] = []
        append = results.append
        frontier = self.frontier
        writers = self.writers
        ext_reads = self.ext_reads
        value_at = frontier.value_at
        insert_and_next_ts = frontier.insert_and_next_ts
        collect_affected = ext_reads.collect_affected
        add_read = ext_reads.add
        overlap_add = writers.overlap_add

        def recheck(key: str, commit_ts: int, value: Any, tid: int) -> List[Tuple]:
            next_ts = insert_and_next_ts(key, commit_ts, value, tid)
            if optimized:
                return [
                    (reader_tid, actual == value, value)
                    for _sts, reader_tid, actual in collect_affected(
                        key, commit_ts, next_ts, tid
                    )
                ]
            reevals: List[Tuple[int, bool, Any]] = []
            for sts, reader_tid, actual in collect_affected(key, 0, None, tid):
                expected = value_at(key, sts, BOTTOM)
                reevals.append((reader_tid, values_match(expected, actual), expected))
            return reevals

        for i in range(len(tags)):
            tag = tags[i]
            key = keys[i]
            if tag == _READ_TRACK:
                append(value_at(key, a[i], BOTTOM))
                add_read(key, a[i], b[i], c[i])
            elif tag == _WRITE_PROBE:
                append(overlap_add(key, a[i], b[i], c[i]))
                append(recheck(key, b[i], d[i], c[i]))
            elif tag == _REMOVE_READ:
                ext_reads.remove(key, a[i], b[i])
            elif tag == _VISIBLE:
                append(value_at(key, a[i], BOTTOM))
            elif tag == _ADD_READ:
                add_read(key, a[i], b[i], c[i])
            elif tag == _OVERLAP_ADD:
                append(overlap_add(key, a[i], b[i], c[i]))
            elif tag == _INSERT_RECHECK:
                append(recheck(key, a[i], b[i], c[i]))
            else:  # _MERGE — spilled segments spliced back in-stream
                frontier.merge(
                    {k: [tuple(v) for v in versions] for k, versions in a[i].items()}
                )
                writers.merge(
                    {k: [tuple(v) for v in ivs] for k, ivs in b[i].items()}
                )
        return results

    def execute(self, commands: List[Tuple]) -> List[Any]:
        """Control-plane interpreter (GC eviction, size estimation)."""
        results: List[Any] = []
        for command in commands:
            op = command[0]
            if op == "evict":
                _, ts = command
                results.append((self.frontier.evict_below(ts), self.writers.evict_below(ts)))
            elif op == "sizeof":
                results.append(deep_sizeof((self.frontier, self.writers, self.ext_reads)))
            elif op == "counts":
                scan, gc_scan = self.writers.scan_step_totals()
                results.append(
                    {
                        "versions": len(self.frontier),
                        "intervals": len(self.writers),
                        "ext_reads": len(self.ext_reads),
                        "scan_steps": scan,
                        "gc_scan_steps": gc_scan,
                        "staged_gc": (
                            self.frontier.staged_gc_entries()
                            + self.writers.staged_gc_entries()
                        ),
                    }
                )
            else:  # pragma: no cover - guarded by the coordinator
                raise ValueError(f"unknown shard command {op!r}")
        return results


def _shard_worker(conn) -> None:
    """Process-mode loop: own one shard core, serve command batches.

    Messages are ``("flat", (tags, keys, a, b, c, optimized))`` for the
    data plane, ``("cmds", [...])`` for the control plane, and ``None``
    to stop.
    """
    # A terminal Ctrl+C delivers SIGINT to the whole foreground process
    # group, workers included.  The parent handles it (e.g. `repro
    # serve` drains gracefully); a worker dying mid-drain would turn
    # that graceful stop into dropped batches and a partial verdict.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    core = _ShardCore()
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            kind, payload = message
            if kind == "flat":
                conn.send(core.execute_flat(*payload))
            else:
                conn.send(core.execute(payload))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown races
        pass
    finally:
        conn.close()


#: Doorbell the coordinator rings on the pipe after pushing a request
#: frame — a tiny fixed-size message that wakes a worker parked inside
#: ``conn.poll`` without carrying any data (the data is on the ring).
_NUDGE = ("nudge", None)

#: How long a worker parks in ``conn.poll`` per loop iteration when
#: idle.  Wake-ups are doorbell-driven, so this bounds only the
#: heartbeat cadence (and costs ~20 wake-ups/s per idle shard).
_PARK_SECONDS = 0.05


def _shard_worker_shm(conn, req_name: str, res_name: str) -> None:
    """Shm-mode loop: consume request-lane frames in place, answer on
    the result lane; the pipe carries doorbells, the control plane, and
    the fallback path.

    Waiting is doorbell-driven on both sides: the worker parks in
    ``conn.poll`` (a real blocking wait — no busy polling to steal the
    coordinator's CPU on starved hosts) and the coordinator rings the
    pipe after each ring push; symmetrically, every processed frame is
    answered with one tiny pipe message saying *where* the results are
    (``("lane", None)`` — frame on the result ring — or ``("pipe",
    results)`` when they refuse strict encoding or outgrow the ring), so
    the coordinator blocks in ``recv`` rather than spinning on the ring.
    The loop beats the request ring's heartbeat every iteration — busy
    or idle — so the coordinator can tell a wedged worker (heartbeat
    frozen beyond the park cadence) from an idle one.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    from repro.core.shm import ShmRing

    req = ShmRing.attach(req_name)
    res = ShmRing.attach(res_name)
    core = _ShardCore()
    try:
        while True:
            req.beat()
            view = req.try_pop()
            if view is not None:
                try:
                    tags, keys, a, b, c, d, optimized = unpack_flat_frame(view)
                finally:
                    req.consume()
                results = core.execute_flat(tags, keys, a, b, c, d, optimized)
                try:
                    frame = pack_result_frame(results, result_kinds(tags))
                except UnencodableValue:
                    frame = None
                if frame is not None and res.try_push(frame):
                    conn.send(("lane", None))
                else:
                    # Results refuse strict encoding or do not fit the
                    # ring right now: ship them inside the doorbell.
                    conn.send(("pipe", results))
                continue
            if conn.poll(_PARK_SECONDS):
                message = conn.recv()
                if message is None:
                    break
                kind, payload = message
                if kind == "flat":
                    conn.send(("pipe", core.execute_flat(*payload)))
                elif kind != "nudge":
                    conn.send(core.execute(payload))
    except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover - teardown
        pass
    finally:
        conn.close()
        req.close()
        res.close()


class ShardedAion:
    """Online SI checker with hash-partitioned state and batch ingestion.

    Parameters
    ----------
    config:
        Shared :class:`~repro.core.aion.AionConfig` tunables.
    n_shards:
        Number of independent shard states (1 behaves like :class:`Aion`).
    clock:
        Zero-argument time source, as for :class:`Aion`.
    executor:
        ``"serial"`` executes shard command lists in-process;
        ``"process"`` pins each shard to a dedicated worker process and
        executes a batch's shard lists in parallel over pickle pipes;
        ``"shm-process"`` keeps the worker topology but moves batches
        over shared-memory lanes (see the module docstring).  Verdicts
        are identical across all three.
    lane_capacity:
        Bytes per shared-memory ring (request and result lanes each),
        ``shm-process`` only.  A frame above ``capacity // 2 - 8`` falls
        back to the pipe; the default comfortably holds the largest
        default-sized batch.
    lane_stall_timeout:
        Seconds without a heartbeat tick before
        :meth:`workers_alive` declares a lane consumer wedged.  Must
        exceed the longest legitimate single-batch execution.
    """

    def __init__(
        self,
        config: Optional[AionConfig] = None,
        *,
        n_shards: int = 4,
        clock: Optional[Callable[[], float]] = None,
        executor: str = "serial",
        lane_capacity: int = 1 << 20,
        lane_stall_timeout: float = 5.0,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if executor not in ("serial", "process", "shm-process"):
            raise ValueError(f"unknown executor {executor!r}")
        self.config = config or AionConfig()
        self.n_shards = n_shards
        self.executor = executor
        self._clock = clock if clock is not None else time.monotonic
        self._sessions = SessionTracker(mode="si")
        self._ext = ExtStatusTracker(
            timeout=self.config.timeout,
            on_violation=self._report_ext_violation,
            on_finalized_batch=self._drop_finalized_reads,
        )
        self._kernel_stats = KernelStats()
        self._result = CheckResult()
        self._fresh: List[Violation] = []
        self._resident: Dict[int, Transaction] = {}
        self._resident_by_cts: SortedMap = SortedMap()
        self._spill: Optional[SpillStore] = None
        self._collected_upto: Optional[int] = None
        self.processed = 0
        #: Serializes checker access when ingestion happens off-thread
        #: (the service daemon drains batches on a worker thread while
        #: its event loop reads stats): hold it around any receive /
        #: poll / GC / finalize sequence that must not interleave.  The
        #: checker itself never blocks on it — single-threaded use pays
        #: nothing.
        self.ingest_lock = threading.Lock()
        #: (key, snapshot_ts, tid) read removals owed to shards, flushed
        #: as remove-read rows at the head of the next batch's flat
        #: streams (re-evaluating a finalized pair is a tracker no-op, so
        #: deferred removal cannot change verdicts — it only bounds index
        #: growth).
        self._pending_removals: List[List[Tuple[str, int, int]]] = [
            [] for _ in range(n_shards)
        ]
        #: Flat-stream command count per shard for the most recent batch —
        #: the cheap per-shard load-skew signal :meth:`shard_stats` and the
        #: slow-batch trace export.
        self._last_batch_commands: List[int] = [0] * n_shards
        self._cores: Optional[List[_ShardCore]] = None
        self._workers: List[multiprocessing.Process] = []
        self._conns: List[Any] = []
        #: Per shard ``(request_ring, result_ring)`` in shm mode.
        self._lanes: List[Tuple[Any, Any]] = []
        #: Length-prefixed UTF-8 key encodings, memoized across lane
        #: frames (the coordinator packs the same key space every batch).
        self._key_bytes: Dict[str, bytes] = {}
        #: Per shard ``(heartbeat, monotonic observed-at)`` — the wedge
        #: detector's memory of the last heartbeat movement.
        self._hb_seen: List[Tuple[int, float]] = []
        self.lane_capacity = lane_capacity
        self.lane_stall_timeout = lane_stall_timeout
        #: Batches moved over the lanes vs. batches that took the pipe
        #: fallback (per shard stream, cumulative).
        self.lane_frames = 0
        self.lane_fallbacks = 0
        if executor == "serial":
            self._cores = [_ShardCore() for _ in range(n_shards)]
        else:
            use_lanes = executor == "shm-process"
            if use_lanes:
                from repro.core.shm import ShmRing, shm_available

                if not shm_available():
                    raise RuntimeError(
                        "executor='shm-process' requires working POSIX shared "
                        "memory (multiprocessing.shared_memory); use "
                        "executor='process' on this platform"
                    )
            ctx = multiprocessing.get_context()
            for _ in range(n_shards):
                parent_conn, child_conn = ctx.Pipe()
                if use_lanes:
                    req = ShmRing.create(lane_capacity)
                    res = ShmRing.create(lane_capacity)
                    worker = ctx.Process(
                        target=_shard_worker_shm,
                        args=(child_conn, req.name, res.name),
                        daemon=True,
                    )
                    self._lanes.append((req, res))
                    self._hb_seen.append((0, time.monotonic()))
                else:
                    worker = ctx.Process(
                        target=_shard_worker, args=(child_conn,), daemon=True
                    )
                worker.start()
                child_conn.close()
                self._workers.append(worker)
                self._conns.append(parent_conn)

    # ------------------------------------------------------------------
    # Receiving transactions
    # ------------------------------------------------------------------

    def receive(self, txn: Transaction) -> None:
        """Process one transaction (a batch of one)."""
        self.receive_many([txn])

    def receive_many(self, txns: List[Transaction]) -> None:
        """Process a batch of arrivals sharing one arrival instant.

        Equivalent to feeding the batch one-by-one into single-shard Aion
        under a clock frozen for the batch's duration; see the module
        docstring for the argument.  This is the sharded face of the
        staged batch kernel: route once into per-shard flat arrays,
        probe each shard in one pass, apply the verdicts in arrival
        order.
        """
        if isinstance(txns, ColumnarBatch):
            # The sharded router materializes eagerly: lazy transactions
            # would drag the whole batch's arrays through the process-pool
            # pickling of the shard commands.
            txns = txns.transactions()
        elif not isinstance(txns, (list, tuple)):
            txns = list(txns)
        for txn in txns:
            for op in txn.ops:
                if op.kind is OpKind.APPEND:
                    raise ValueError(
                        "ShardedAion checks key-value histories online; list "
                        "(append) histories are checked offline by Chronos"
                    )
        now = self._clock()
        self._ext.advance_to(now)
        if not txns:
            return
        stats = self._kernel_stats
        perf_counter = time.perf_counter
        timing = stats.timing_enabled()
        track_total = timing or stats.slow_threshold > 0.0
        t_batch0 = perf_counter() if track_total else 0.0
        stats.batches += 1
        stats.txns += len(txns)
        if len(txns) > stats.max_batch:
            stats.max_batch = len(txns)

        t_route0 = perf_counter() if timing else 0.0
        streams: List[_FlatStream] = [
            ([], [], [], [], [], []) for _ in range(self.n_shards)
        ]
        for shard, removals in enumerate(self._pending_removals):
            if removals:
                tags, keys, a, b, c, d = streams[shard]
                for key, snapshot_ts, tid in removals:
                    tags.append(_REMOVE_READ)
                    keys.append(key)
                    a.append(snapshot_ts)
                    b.append(tid)
                    c.append(None)
                    d.append(None)
                self._pending_removals[shard] = []

        plan = self._route_batch(txns, streams)
        self._last_batch_commands = [len(stream[0]) for stream in streams]
        if timing:
            t_probe0 = perf_counter()
            stats.route_seconds += t_probe0 - t_route0
        else:
            t_probe0 = 0.0
        shard_results = self._execute(streams)
        if timing:
            t_verdict0 = perf_counter()
            stats.probe_seconds += t_verdict0 - t_probe0
        else:
            t_verdict0 = 0.0
        self._merge(plan, shard_results, now)
        if track_total:
            t_end = perf_counter()
            total = t_end - t_batch0
            if timing:
                stats.timed_batches += 1
                stats.verdict_seconds += t_end - t_verdict0
                stats.batch_seconds += total
            if stats.slow_threshold > 0.0 and total >= stats.slow_threshold:
                stats.record_slow(
                    {
                        "checker": "sharded-aion",
                        "seconds": round(total, 6),
                        "batch_txns": len(txns),
                        "shard_commands": list(self._last_batch_commands),
                        "route_s": round(t_probe0 - t_route0, 6) if timing else None,
                        "probe_s": round(t_verdict0 - t_probe0, 6) if timing else None,
                        "verdict_s": round(t_end - t_verdict0, 6) if timing else None,
                    }
                )

    def receive_many_threadsafe(self, txns: List[Transaction]) -> None:
        """Batch ingestion under :attr:`ingest_lock` — the entry point
        for multi-threaded frontends (one batch at a time wins the lock;
        shard-level parallelism still applies inside the batch)."""
        with self.ingest_lock:
            self.receive_many(txns)

    def _route_batch(
        self, txns: List[Transaction], streams: List[_FlatStream]
    ) -> List[Tuple[Transaction, Optional[List[Tuple]]]]:
        """Route pass: decode the batch into per-shard flat command
        arrays; report order-independent violations (Eq. 1, SESSION, INT)
        as they are discovered.

        Returns, per transaction, the descriptor list the verdict phase
        walks — None when the transaction was rejected by Eq. 1 and owns
        no shard commands.
        """
        plan: List[Tuple[Transaction, Optional[List[Tuple]]]] = []
        stats = self._kernel_stats
        n_shards = self.n_shards
        n_reads = 0
        n_writes = 0
        for txn in txns:
            tid = txn.tid
            stats.route_ops += len(txn.ops)
            if txn.start_ts > txn.commit_ts:  # Eq. 1
                self._report(
                    TimestampOrderViolation(
                        axiom=Axiom.TS_ORDER,
                        tid=tid,
                        start_ts=txn.start_ts,
                        commit_ts=txn.commit_ts,
                    )
                )
                plan.append((txn, None))
                continue

            # Severely delayed transaction below the GC boundary: splice a
            # full reload into every shard stream at this sequence point
            # (Aion's reload-on-demand, ▧).  The unoptimized ablation also
            # re-checks arbitrarily old snapshot points on every write, so
            # it reloads whenever spilled state exists at all.
            if self._spill is not None and len(self._spill) > 0:
                below_boundary = (
                    self._collected_upto is not None
                    and txn.start_ts <= self._collected_upto
                )
                ablation_write = not self.config.optimized_recheck and any(
                    op.kind is OpKind.WRITE for op in txn.ops
                )
                if below_boundary or ablation_write:
                    self._route_reload(streams)

            violation = self._sessions.observe(txn)
            if violation is not None:
                self._report(violation)

            # INT is key-local: a mismatch compares a read against the
            # transaction's own prior state, so no shard query is needed
            # (snapshot values feed only EXT, handled below).
            writes, mismatches = resolve_writes(txn.ops)
            if mismatches is not None:
                for key, expected, actual in mismatches:
                    self._report(
                        IntViolation(
                            axiom=Axiom.INT,
                            tid=tid,
                            key=key,
                            expected=expected,
                            actual=actual,
                        )
                    )

            start_ts = txn.start_ts
            commit_ts = txn.commit_ts
            steps: List[Tuple] = []
            for key, op in txn.external_reads.items():
                shard = shard_of(key, n_shards)
                tags, keys, a, b, c, d = streams[shard]
                tags.append(_READ_TRACK)
                keys.append(key)
                a.append(start_ts)
                b.append(tid)
                c.append(op.value)
                d.append(None)
                steps.append(("track", shard, key, op.value))
            n_reads += len(steps)
            for key, value in writes.items():
                shard = shard_of(key, n_shards)
                tags, keys, a, b, c, d = streams[shard]
                tags.append(_WRITE_PROBE)
                keys.append(key)
                a.append(start_ts)
                b.append(commit_ts)
                c.append(tid)
                d.append(value)
                steps.append(("conflicts", shard, key))
                steps.append(("reevals", shard, key))
            n_writes += len(writes)
            plan.append((txn, steps))
        stats.probe_reads += n_reads
        stats.probe_writes += n_writes
        return plan

    def _route_reload(self, streams: List[_FlatStream]) -> None:
        """Splice spilled segments back into their shard streams."""
        if self._spill is None:
            return
        for payload in self._spill.reload_overlapping(0, None):
            for shard_key, segment in payload.get("shards", {}).items():
                tags, keys, a, b, c, d = streams[int(shard_key)]
                tags.append(_MERGE)
                keys.append("")
                a.append(segment.get("frontier", {}))
                b.append(segment.get("intervals", {}))
                c.append(None)
                d.append(None)

    def _execute(self, streams: List[_FlatStream]) -> List[List[Any]]:
        optimized = self.config.optimized_recheck
        if self._cores is not None:
            return [
                core.execute_flat(*stream, optimized)
                for core, stream in zip(self._cores, streams)
            ]
        if self._lanes:
            return self._execute_shm(streams, optimized)
        # Process mode: dispatch every non-empty stream, then collect —
        # the workers interpret their arrays concurrently.
        dispatched = []
        for shard, stream in enumerate(streams):
            if stream[0]:
                self._conns[shard].send(("flat", stream + (optimized,)))
                dispatched.append(shard)
        results: List[List[Any]] = [[] for _ in range(self.n_shards)]
        for shard in dispatched:
            results[shard] = self._conns[shard].recv()
        return results

    def _execute_shm(
        self, streams: List[_FlatStream], optimized: bool
    ) -> List[List[Any]]:
        """Dispatch a batch over the shared-memory lanes.

        Per shard stream the transport is chosen independently: streams
        with spill merges (dict payloads the strict codec refuses by
        design), operands the codec rejects, or frames the ring cannot
        hold fall back to the pickle pipe — the worker serves both
        sources, and because every batch fully drains before the next
        dispatch (and before any control-plane command), lane and pipe
        traffic never interleave within a shard.
        """
        dispatched: List[int] = []
        for shard, stream in enumerate(streams):
            tags = stream[0]
            if not tags:
                continue
            frame = None
            if _MERGE not in tags:
                try:
                    frame = pack_flat_frame(*stream, optimized, self._key_bytes)
                except UnencodableValue:
                    frame = None
            try:
                if frame is not None and self._lanes[shard][0].try_push(frame):
                    self._conns[shard].send(_NUDGE)
                    self.lane_frames += 1
                else:
                    self._conns[shard].send(("flat", stream + (optimized,)))
                    self.lane_fallbacks += 1
            except (BrokenPipeError, OSError):
                raise RuntimeError(f"shard worker {shard} died mid-batch") from None
            dispatched.append(shard)
        results: List[List[Any]] = [[] for _ in range(self.n_shards)]
        for shard in dispatched:
            kind, payload = self._recv_data(shard)
            if kind == "pipe":
                results[shard] = payload
            else:  # "lane": the result frame is on the ring by now
                result_ring = self._lanes[shard][1]
                view = result_ring.try_pop()
                if view is None:  # pragma: no cover - protocol violation
                    raise RuntimeError(
                        f"shard worker {shard} announced a lane result "
                        "that is not on the ring"
                    )
                try:
                    results[shard] = unpack_result_frame(view)
                finally:
                    result_ring.consume()
        return results

    def _recv_data(self, shard: int) -> Tuple[str, Any]:
        """Receive one data-plane doorbell from a shard worker.

        Blocks in bounded ``poll`` slices so a worker that died
        mid-batch surfaces as a :class:`RuntimeError` instead of a hang
        (a closed pipe raises ``EOFError`` inside ``recv`` as well).
        """
        conn = self._conns[shard]
        worker = self._workers[shard]
        while not conn.poll(0.2):
            if not worker.is_alive():
                raise RuntimeError(f"shard worker {shard} died mid-batch")
        try:
            return conn.recv()
        except EOFError:
            raise RuntimeError(f"shard worker {shard} died mid-batch") from None

    def _merge(
        self,
        plan: List[Tuple[Transaction, Optional[List[Tuple]]]],
        shard_results: List[List[Any]],
        now: float,
    ) -> None:
        """Verdict pass: apply global effects in arrival order.

        Shards return exactly one result per semantic command (visible /
        overlap_add / insert_recheck) in stream order, and the route pass
        enqueued those commands in exactly the order the step walk
        requests them, so a plain sequential per-shard cursor stays
        aligned.  The walk first gathers every external read's initial
        verdict and registers them in one :meth:`~repro.core.ext_status.
        ExtStatusTracker.track_batch` call, then applies conflict reports
        and re-evaluations per transaction in arrival order — safe
        because a shard's re-evaluation list for a write only names reads
        that preceded the write in that key's stream.
        """
        cursors = [0] * self.n_shards
        track_items: List[Tuple[int, str, int, Any, bool, Any]] = []
        #: per accepted txn: (txn, [(is_reeval, key, payload), ...])
        effects: List[Tuple[Transaction, List[Tuple[bool, str, List]]]] = []
        for txn, steps in plan:
            if steps is None:
                continue
            tid = txn.tid
            start_ts = txn.start_ts
            applied: List[Tuple[bool, str, List]] = []
            for step in steps:
                kind, shard, key = step[0], step[1], step[2]
                cursor = cursors[shard]
                cursors[shard] = cursor + 1
                result = shard_results[shard][cursor]
                if kind == "track":
                    actual = step[3]
                    ok = (
                        (actual is None)
                        if result is BOTTOM
                        else (result == actual)
                    )
                    track_items.append((tid, key, start_ts, actual, ok, result))
                elif result:
                    applied.append((kind == "reevals", key, result))
            effects.append((txn, applied))

        ext = self._ext
        ext.track_batch(track_items, now)
        stats = self._kernel_stats
        stats.verdict_tracks += len(track_items)
        reevaluate = ext.reevaluate
        resident = self._resident
        resident_by_cts = self._resident_by_cts
        n_reevals = 0
        n_conflicts = 0
        armed: List[int] = []
        for txn, applied in effects:
            tid = txn.tid
            for is_reeval, key, payload in applied:
                if is_reeval:
                    n_reevals += len(payload)
                    for reader_tid, ok, expected in payload:
                        reevaluate(reader_tid, key, ok, expected, now)
                else:
                    n_conflicts += len(payload)
                    for owner, end in payload:
                        self._report_conflict(txn, owner, end, key)
            resident[tid] = txn
            resident_by_cts[(txn.commit_ts, tid)] = tid
            self.processed += 1
            armed.append(tid)
        stats.verdict_reevals += n_reevals
        stats.verdict_conflicts += n_conflicts
        ext.arm_timers(armed, now)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def poll(self) -> List[Violation]:
        """Drain violations reported since the previous poll."""
        self._ext.advance_to(self._clock())
        fresh, self._fresh = self._fresh, []
        return fresh

    def finalize(self) -> CheckResult:
        """Force-finalize all pending EXT verdicts and return the result."""
        self._ext.flush()
        return self._result

    @property
    def result(self) -> CheckResult:
        return self._result

    @property
    def flipflop_stats(self) -> FlipFlopStats:
        return self._ext.stats

    @property
    def kernel_stats(self) -> KernelStats:
        """Per-stage operation counters of the staged batch kernel
        (coordinator-side: routing, probes dispatched, verdicts applied)."""
        return self._kernel_stats

    @property
    def resident_txn_count(self) -> int:
        return len(self._resident)

    @property
    def spill_store(self) -> Optional[SpillStore]:
        return self._spill

    def estimated_bytes(self) -> int:
        """Deep-size estimate across coordinator and all shards."""
        total = deep_sizeof((self._resident, self._ext))
        if self._cores is not None:
            total += deep_sizeof(tuple(self._cores))
        else:
            for conn in self._conns:
                conn.send(("cmds", [("sizeof",)]))
            for conn in self._conns:
                total += conn.recv()[0]
        return total

    def _shard_counts(self) -> List[Dict[str, int]]:
        """Per-shard structure/scan counters via the control plane.

        Observability path only — serial mode walks the cores in-process;
        process mode round-trips one tiny ``counts`` command per worker.
        Call under :attr:`ingest_lock` when ingestion runs concurrently.
        """
        if self._cores is not None:
            return [core.execute([("counts",)])[0] for core in self._cores]
        for conn in self._conns:
            conn.send(("cmds", [("counts",)]))
        return [conn.recv()[0] for conn in self._conns]

    def shard_stats(self) -> List[Dict[str, int]]:
        """One row per shard: structure sizes, scan counters, staged GC,
        deferred read removals, and the latest batch's command count."""
        rows = self._shard_counts()
        for shard, row in enumerate(rows):
            row["shard"] = shard
            row["pending_removals"] = len(self._pending_removals[shard])
            row["last_batch_commands"] = self._last_batch_commands[shard]
        if self._lanes:
            for row, lane in zip(rows, self.lane_health()):
                row["lane_heartbeat"] = lane["heartbeat"]
                row["lane_stalled"] = int(lane["stalled"])
                row["lane_backlog_bytes"] = (
                    lane["request_backlog_bytes"] + lane["result_backlog_bytes"]
                )
                row["lane_bytes"] = lane["request_bytes"] + lane["result_bytes"]
        return rows

    def gc_debt(self) -> int:
        """Entries staged for the next collection cycle across all shards."""
        return sum(row["staged_gc"] for row in self._shard_counts())

    def scan_step_totals(self) -> Tuple[int, int]:
        """Summed ``(scan_steps, gc_scan_steps)`` across all shards."""
        scan = 0
        gc_scan = 0
        for row in self._shard_counts():
            scan += row["scan_steps"]
            gc_scan += row["gc_scan_steps"]
        return scan, gc_scan

    def _lane_stalled(self, shard: int, now: float) -> bool:
        """Whether shard's lane consumer looks wedged: heartbeat frozen
        for longer than :attr:`lane_stall_timeout` (the worker beats
        every loop iteration, including idle ones, so a frozen counter
        is a stuck consumer, not an idle one)."""
        beat = self._lanes[shard][0].heartbeat()
        seen_beat, seen_at = self._hb_seen[shard]
        if beat != seen_beat:
            self._hb_seen[shard] = (beat, now)
            return False
        return (now - seen_at) > self.lane_stall_timeout

    def workers_alive(self) -> bool:
        """Whether every shard executor can still take a batch.

        Serial cores always can; process modes check the worker
        processes, and shm mode additionally watches each lane's
        heartbeat — a worker that is alive but no longer consuming
        (wedged in a syscall, stopped, livelocked) counts as down.
        """
        if self._cores is not None:
            return True
        if not self._workers:
            return False
        if not all(worker.is_alive() for worker in self._workers):
            return False
        if self._lanes:
            now = time.monotonic()
            return not any(
                self._lane_stalled(shard, now) for shard in range(self.n_shards)
            )
        return True

    def lane_health(self) -> List[Dict[str, Any]]:
        """One row per shared-memory lane pair: liveness, heartbeat,
        stall verdict, ring depths, and cumulative transferred bytes.
        Reads only shm counters and process liveness — safe to call
        from an observability thread without :attr:`ingest_lock`."""
        rows: List[Dict[str, Any]] = []
        now = time.monotonic()
        for shard, (req, res) in enumerate(self._lanes):
            rows.append(
                {
                    "shard": shard,
                    "alive": self._workers[shard].is_alive(),
                    "heartbeat": req.heartbeat(),
                    "stalled": self._lane_stalled(shard, now),
                    "request_backlog_bytes": req.lag(),
                    "result_backlog_bytes": res.lag(),
                    "request_bytes": req.bytes_pushed(),
                    "result_bytes": res.bytes_pushed(),
                    "frames": req.frames_pushed(),
                }
            )
        return rows

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def gc_safe_ts(self) -> Optional[int]:
        """Collection watermark covering everything resident (see Aion)."""
        if not self._resident_by_cts:
            return None
        (max_cts, _), _ = self._resident_by_cts.max_item()
        return max_cts

    def suggest_gc_ts(self, keep_recent: int = 2000) -> Optional[int]:
        """Watermark sparing the ``keep_recent`` newest residents."""
        excess = len(self._resident_by_cts) - keep_recent
        if excess <= 0:
            return None
        for index, ((cts, _tid), _) in enumerate(self._resident_by_cts.items()):
            if index == excess - 1:
                return cts
        return None

    def collect_below(self, ts: Optional[int] = None) -> GcReport:
        """Evict per-shard structures and residents below ``ts`` to disk.

        Same report contract as :meth:`repro.core.aion.Aion.collect_below`:
        zero-count report echoing ``ts`` when nothing is resident (with
        the ``-1`` sentinel only when ``ts`` was also absent).
        """
        t0 = time.perf_counter()
        safe = self.gc_safe_ts()
        if safe is None:
            requested = ts if ts is not None else -1
            return GcReport(requested, requested, 0, 0, 0, time.perf_counter() - t0)
        effective = safe if ts is None else min(ts, safe)

        segments: List[Tuple[Dict, Dict]] = []
        if self._cores is not None:
            for core in self._cores:
                segments.append(core.execute([("evict", effective)])[0])
        else:
            for conn in self._conns:
                conn.send(("cmds", [("evict", effective)]))
            for conn in self._conns:
                segments.append(conn.recv()[0])

        evicted_txns: List[Transaction] = []
        for (cts, tid), _ in self._resident_by_cts.pop_below((effective, _TID_MAX)):
            txn = self._resident.pop(tid, None)
            if txn is not None:
                evicted_txns.append(txn)

        n_versions = sum(
            len(versions) for frontier_seg, _ in segments for versions in frontier_seg.values()
        )
        n_intervals = sum(
            len(ivs) for _, interval_seg in segments for ivs in interval_seg.values()
        )
        if n_versions or n_intervals or evicted_txns:
            if self._spill is None:
                self._spill = SpillStore(self.config.spill_dir)
            from repro.histories.serialization import txn_to_dict

            content_min = effective
            for frontier_seg, interval_seg in segments:
                for versions in frontier_seg.values():
                    for cts, _value, _tid in versions:
                        if cts < content_min:
                            content_min = cts
                for ivs in interval_seg.values():
                    for start_ts, _end_ts, _tid in ivs:
                        if start_ts < content_min:
                            content_min = start_ts
            for txn in evicted_txns:
                if txn.start_ts < content_min:
                    content_min = txn.start_ts
            self._spill.spill(
                content_min,
                effective,
                {
                    "shards": {
                        str(shard): {
                            "frontier": frontier_seg,
                            "intervals": interval_seg,
                        }
                        for shard, (frontier_seg, interval_seg) in enumerate(segments)
                        if frontier_seg or interval_seg
                    },
                    "txns": [txn_to_dict(t) for t in evicted_txns],
                },
                n_items=n_versions + n_intervals + len(evicted_txns),
            )
        if self._collected_upto is None or effective > self._collected_upto:
            self._collected_upto = effective
        return GcReport(
            requested_ts=ts if ts is not None else safe,
            effective_ts=effective,
            evicted_versions=n_versions,
            evicted_intervals=n_intervals,
            evicted_txns=len(evicted_txns),
            seconds=time.perf_counter() - t0,
        )

    def close(self) -> None:
        """Stop worker processes and release the spill directory."""
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.join(timeout=5)
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.terminate()
        for conn in self._conns:
            conn.close()
        self._conns = []
        self._workers = []
        for req, res in self._lanes:
            req.close(unlink=True)
            res.close(unlink=True)
        self._lanes = []
        self._hb_seen = []
        if self._spill is not None:
            self._spill.close()
            self._spill = None

    def __enter__(self) -> "ShardedAion":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _report(self, violation: Violation) -> None:
        self._result.add(violation)
        self._fresh.append(violation)

    def _report_conflict(self, txn: Transaction, other_tid: int, other_cts: int, key: str) -> None:
        if txn.commit_ts < other_cts:
            earlier, later = txn.tid, other_tid
        else:
            earlier, later = other_tid, txn.tid
        self._report(
            ConflictViolation(
                axiom=Axiom.NOCONFLICT,
                tid=earlier,
                key=key,
                conflicting_tids=frozenset({later}),
            )
        )

    def _report_ext_violation(self, verdict: ExtVerdict) -> None:
        self._report(
            ExtViolation(
                axiom=Axiom.EXT,
                tid=verdict[EV_TID],
                key=verdict[EV_KEY],
                expected=verdict[EV_EXPECTED],
                actual=verdict[EV_ACTUAL],
            )
        )

    def _drop_finalized_reads(self, verdicts: List[ExtVerdict]) -> None:
        n_shards = self.n_shards
        pending = self._pending_removals
        for verdict in verdicts:
            key = verdict[EV_KEY]
            pending[shard_of(key, n_shards)].append(
                (key, verdict[EV_SNAPSHOT_TS], verdict[EV_TID])
            )
