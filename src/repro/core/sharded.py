"""ShardedAion — a sharded, batch-oriented ingestion frontend for Aion.

Algorithm 3's per-arrival work decomposes cleanly by key: the versioned
frontier query of step ① , the interval-overlap query of step ② and the
EXT re-check sweep of step ③ each touch exactly the keys the arriving
transaction reads or writes.  Since every key is owned by exactly one
shard, hash-partitioning the three versioned structures
(:class:`~repro.core.versioned.VersionedFrontier`,
:class:`~repro.core.versioned.WriterIntervals`,
:class:`~repro.core.versioned.ExtReadIndex`) across N independent shard
states preserves the single-checker semantics exactly, while the
cross-key state — SESSION tracking, INT checking, the EXT timer queue,
violation aggregation, the resident set and GC — stays in a global
coordinator.

Ingestion is *batch oriented*: the collector ships transactions in
batches (Fig 3), and :meth:`ShardedAion.receive_many` plans one ordered
command list per shard for the whole batch, executes the shard lists
(serially in-process, or in parallel worker processes), and merges the
results back in arrival order.  The equivalence argument is short:

- per-key commands of one transaction are enqueued in the same order
  Aion executes them, and commands of transaction *i* precede those of
  transaction *j > i* in every shard stream, so each shard's structures
  go through exactly the states they would under sequential Aion;
- commands on different keys operate on disjoint state and commute;
- the coordinator applies global effects (EXT tracking, re-evaluation,
  conflict reports) by walking the batch in arrival order, so per-pair
  verdict updates happen in the sequential order as well.

Hence the final violation multiset equals single-shard Aion's — the
differential tests in ``tests/test_sharded.py`` demonstrate it.

The optional ``executor="process"`` mode keeps each shard's state in a
dedicated worker process connected by a pipe; a batch then dispatches all
shard command lists at once and the shards execute them in parallel,
free of the GIL.  Results (and therefore verdicts) are identical — only
where the commands run changes.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.aion import AionConfig, GcReport, _TID_MAX
from repro.core.common import BOTTOM, SessionTracker, simulate_transaction_ops, values_match
from repro.core.ext_status import ExtStatusTracker, ExtVerdict, FlipFlopStats
from repro.core.spill import SpillStore
from repro.core.versioned import ExtReadIndex, VersionedFrontier, WriterIntervals
from repro.core.violations import (
    Axiom,
    CheckResult,
    ConflictViolation,
    ExtViolation,
    IntViolation,
    TimestampOrderViolation,
    Violation,
)
from repro.histories.model import OpKind, Transaction
from repro.util.sizeof import deep_sizeof
from repro.util.sortedmap import SortedMap

__all__ = ["ShardedAion", "shard_of"]


def shard_of(key: str, n_shards: int) -> int:
    """Stable key → shard routing (crc32; Python's ``hash`` is salted)."""
    return zlib.crc32(key.encode("utf-8")) % n_shards


class _ShardCore:
    """One shard's versioned structures plus a command interpreter.

    Commands are plain tuples so they cross a process boundary cheaply;
    ``execute`` applies a batch's ordered command list and returns one
    result per command.
    """

    __slots__ = ("frontier", "writers", "ext_reads")

    def __init__(self) -> None:
        self.frontier = VersionedFrontier()
        self.writers = WriterIntervals()
        self.ext_reads = ExtReadIndex()

    def execute(self, commands: List[Tuple]) -> List[Any]:
        results: List[Any] = []
        for command in commands:
            op = command[0]
            if op == "visible":
                _, key, ts = command
                # Wrapped in a 1-tuple so the result is never None: the
                # merge walk distinguishes semantic results from the None
                # results of bookkeeping commands by exactly that.
                results.append((self.frontier.value_at(key, ts, BOTTOM),))
            elif op == "add_read":
                _, key, snapshot_ts, tid, actual = command
                self.ext_reads.add(key, snapshot_ts, tid, actual)
                results.append(None)
            elif op == "remove_read":
                _, key, snapshot_ts, tid = command
                self.ext_reads.remove(key, snapshot_ts, tid)
                results.append(None)
            elif op == "overlap_add":
                _, key, start_ts, commit_ts, tid = command
                hits = [
                    (hit.owner, hit.end)
                    for hit in self.writers.overlapping(
                        key, start_ts, commit_ts, exclude_tid=tid
                    )
                ]
                self.writers.add(key, start_ts, commit_ts, tid)
                results.append(hits)
            elif op == "insert_recheck":
                _, key, commit_ts, value, tid, optimized = command
                nxt = self.frontier.insert_and_next(key, commit_ts, value, tid)
                reevals: List[Tuple[int, bool, Any]] = []
                if optimized:
                    next_ts = nxt[0] if nxt is not None else None
                    for _sts, reader_tid, actual in self.ext_reads.affected_by(
                        key, commit_ts, next_ts
                    ):
                        if reader_tid == tid:
                            continue
                        reevals.append((reader_tid, actual == value, value))
                else:
                    for snapshot_ts, reader_tid, actual in self.ext_reads.affected_by(
                        key, 0, None
                    ):
                        if reader_tid == tid:
                            continue
                        expected = self.frontier.value_at(key, snapshot_ts, BOTTOM)
                        reevals.append(
                            (reader_tid, values_match(expected, actual), expected)
                        )
                results.append(reevals)
            elif op == "evict":
                _, ts = command
                results.append((self.frontier.evict_below(ts), self.writers.evict_below(ts)))
            elif op == "merge":
                _, frontier_segment, interval_segment = command
                self.frontier.merge(
                    {
                        k: [tuple(v) for v in versions]
                        for k, versions in frontier_segment.items()
                    }
                )
                self.writers.merge(
                    {k: [tuple(v) for v in ivs] for k, ivs in interval_segment.items()}
                )
                results.append(None)
            elif op == "sizeof":
                results.append(deep_sizeof((self.frontier, self.writers, self.ext_reads)))
            else:  # pragma: no cover - guarded by the planner
                raise ValueError(f"unknown shard command {op!r}")
        return results


def _shard_worker(conn) -> None:
    """Process-mode loop: own one shard core, serve command batches."""
    # A terminal Ctrl+C delivers SIGINT to the whole foreground process
    # group, workers included.  The parent handles it (e.g. `repro
    # serve` drains gracefully); a worker dying mid-drain would turn
    # that graceful stop into dropped batches and a partial verdict.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    core = _ShardCore()
    try:
        while True:
            commands = conn.recv()
            if commands is None:
                break
            conn.send(core.execute(commands))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown races
        pass
    finally:
        conn.close()


class ShardedAion:
    """Online SI checker with hash-partitioned state and batch ingestion.

    Parameters
    ----------
    config:
        Shared :class:`~repro.core.aion.AionConfig` tunables.
    n_shards:
        Number of independent shard states (1 behaves like :class:`Aion`).
    clock:
        Zero-argument time source, as for :class:`Aion`.
    executor:
        ``"serial"`` executes shard command lists in-process; ``"process"``
        pins each shard to a dedicated worker process and executes a
        batch's shard lists in parallel.  Verdicts are identical.
    """

    def __init__(
        self,
        config: Optional[AionConfig] = None,
        *,
        n_shards: int = 4,
        clock: Optional[Callable[[], float]] = None,
        executor: str = "serial",
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if executor not in ("serial", "process"):
            raise ValueError(f"unknown executor {executor!r}")
        self.config = config or AionConfig()
        self.n_shards = n_shards
        self.executor = executor
        self._clock = clock if clock is not None else time.monotonic
        self._sessions = SessionTracker(mode="si")
        self._ext = ExtStatusTracker(
            timeout=self.config.timeout,
            on_violation=self._report_ext_violation,
            on_finalized=self._drop_finalized_read,
        )
        self._result = CheckResult()
        self._fresh: List[Violation] = []
        self._resident: Dict[int, Transaction] = {}
        self._resident_by_cts: SortedMap = SortedMap()
        self._spill: Optional[SpillStore] = None
        self._collected_upto: Optional[int] = None
        self.processed = 0
        #: Serializes checker access when ingestion happens off-thread
        #: (the service daemon drains batches on a worker thread while
        #: its event loop reads stats): hold it around any receive /
        #: poll / GC / finalize sequence that must not interleave.  The
        #: checker itself never blocks on it — single-threaded use pays
        #: nothing.
        self.ingest_lock = threading.Lock()
        #: remove_read commands owed to shards, flushed with the next batch
        #: (re-evaluating a finalized pair is a tracker no-op, so deferred
        #: removal cannot change verdicts — it only bounds index growth).
        self._pending_removals: List[List[Tuple]] = [[] for _ in range(n_shards)]
        self._cores: Optional[List[_ShardCore]] = None
        self._workers: List[multiprocessing.Process] = []
        self._conns: List[Any] = []
        if executor == "serial":
            self._cores = [_ShardCore() for _ in range(n_shards)]
        else:
            ctx = multiprocessing.get_context()
            for _ in range(n_shards):
                parent_conn, child_conn = ctx.Pipe()
                worker = ctx.Process(target=_shard_worker, args=(child_conn,), daemon=True)
                worker.start()
                child_conn.close()
                self._workers.append(worker)
                self._conns.append(parent_conn)

    # ------------------------------------------------------------------
    # Receiving transactions
    # ------------------------------------------------------------------

    def receive(self, txn: Transaction) -> None:
        """Process one transaction (a batch of one)."""
        self.receive_many([txn])

    def receive_many(self, txns: List[Transaction]) -> None:
        """Process a batch of arrivals sharing one arrival instant.

        Equivalent to feeding the batch one-by-one into single-shard Aion
        under a clock frozen for the batch's duration; see the module
        docstring for the argument.
        """
        for txn in txns:
            for op in txn.ops:
                if op.kind is OpKind.APPEND:
                    raise ValueError(
                        "ShardedAion checks key-value histories online; list "
                        "(append) histories are checked offline by Chronos"
                    )
        now = self._clock()
        self._ext.advance_to(now)

        shard_cmds: List[List[Tuple]] = [[] for _ in range(self.n_shards)]
        for shard, removals in enumerate(self._pending_removals):
            if removals:
                shard_cmds[shard].extend(removals)
                self._pending_removals[shard] = []

        plan = self._plan_batch(txns, shard_cmds)
        shard_results = self._execute(shard_cmds)
        self._merge(plan, shard_results, now)

    def receive_many_threadsafe(self, txns: List[Transaction]) -> None:
        """Batch ingestion under :attr:`ingest_lock` — the entry point
        for multi-threaded frontends (one batch at a time wins the lock;
        shard-level parallelism still applies inside the batch)."""
        with self.ingest_lock:
            self.receive_many(txns)

    def _plan_batch(
        self, txns: List[Transaction], shard_cmds: List[List[Tuple]]
    ) -> List[Tuple[Transaction, Optional[List[Tuple]]]]:
        """Build per-shard command streams; report order-independent
        violations (Eq. 1, SESSION, INT) as they are discovered.

        Returns, per transaction, the descriptor list the merge phase
        walks — None when the transaction was rejected by Eq. 1 and owns
        no shard commands.
        """
        plan: List[Tuple[Transaction, Optional[List[Tuple]]]] = []
        for txn in txns:
            tid = txn.tid
            if txn.start_ts > txn.commit_ts:  # Eq. 1
                self._report(
                    TimestampOrderViolation(
                        axiom=Axiom.TS_ORDER,
                        tid=tid,
                        start_ts=txn.start_ts,
                        commit_ts=txn.commit_ts,
                    )
                )
                plan.append((txn, None))
                continue

            # Severely delayed transaction below the GC boundary: splice a
            # full reload into every shard stream at this sequence point
            # (Aion's reload-on-demand, ▧).  The unoptimized ablation also
            # re-checks arbitrarily old snapshot points on every write, so
            # it reloads whenever spilled state exists at all.
            if self._spill is not None and len(self._spill) > 0:
                below_boundary = (
                    self._collected_upto is not None
                    and txn.start_ts <= self._collected_upto
                )
                ablation_write = not self.config.optimized_recheck and any(
                    op.kind is OpKind.WRITE for op in txn.ops
                )
                if below_boundary or ablation_write:
                    self._plan_reload(shard_cmds)

            violation = self._sessions.observe(txn)
            if violation is not None:
                self._report(violation)

            # INT is key-local: a mismatch compares a read against the
            # transaction's own prior state, so no shard query is needed
            # (snapshot values feed only EXT, handled below).
            writes = simulate_transaction_ops(
                txn,
                lambda key: BOTTOM,
                lambda key, exp, act: None,
                lambda key, exp, act: self._report(
                    IntViolation(axiom=Axiom.INT, tid=tid, key=key, expected=exp, actual=act)
                ),
            )

            steps: List[Tuple] = []
            for key, op in txn.external_reads.items():
                shard = shard_of(key, self.n_shards)
                shard_cmds[shard].append(("visible", key, txn.start_ts))
                shard_cmds[shard].append(("add_read", key, txn.start_ts, tid, op.value))
                steps.append(("track", shard, key, op.value))
            for key in writes:
                shard = shard_of(key, self.n_shards)
                shard_cmds[shard].append(
                    ("overlap_add", key, txn.start_ts, txn.commit_ts, tid)
                )
                steps.append(("conflicts", shard, key))
            for key, value in writes.items():
                shard = shard_of(key, self.n_shards)
                shard_cmds[shard].append(
                    (
                        "insert_recheck",
                        key,
                        txn.commit_ts,
                        value,
                        tid,
                        self.config.optimized_recheck,
                    )
                )
                steps.append(("reevals", shard, key))
            plan.append((txn, steps))
        return plan

    def _plan_reload(self, shard_cmds: List[List[Tuple]]) -> None:
        """Enqueue spilled segments back into their shards, in-stream."""
        if self._spill is None:
            return
        for payload in self._spill.reload_overlapping(0, None):
            for shard_key, segment in payload.get("shards", {}).items():
                shard = int(shard_key)
                shard_cmds[shard].append(
                    ("merge", segment.get("frontier", {}), segment.get("intervals", {}))
                )

    def _execute(self, shard_cmds: List[List[Tuple]]) -> List[List[Any]]:
        if self._cores is not None:
            return [core.execute(cmds) for core, cmds in zip(self._cores, shard_cmds)]
        # Process mode: dispatch every non-empty stream, then collect —
        # the workers run their lists concurrently.
        dispatched = []
        for shard, cmds in enumerate(shard_cmds):
            if cmds:
                self._conns[shard].send(cmds)
                dispatched.append(shard)
        results: List[List[Any]] = [[] for _ in range(self.n_shards)]
        for shard in dispatched:
            results[shard] = self._conns[shard].recv()
        return results

    def _merge(
        self,
        plan: List[Tuple[Transaction, Optional[List[Tuple]]]],
        shard_results: List[List[Any]],
        now: float,
    ) -> None:
        """Apply global effects in arrival order, consuming shard results.

        Every semantic command (visible / overlap_add / insert_recheck)
        returns a non-None result; bookkeeping commands (remove_read,
        merge) and add_read return None.  The planner enqueued semantic
        commands in exactly the order the step walk requests them, so a
        per-shard cursor that skips None results stays aligned without
        any positional bookkeeping.
        """
        cursors = [0] * self.n_shards

        def next_semantic(shard: int) -> Any:
            results = shard_results[shard]
            cursor = cursors[shard]
            while results[cursor] is None:
                cursor += 1
            cursors[shard] = cursor + 1
            return results[cursor]

        armed: List[int] = []
        for txn, steps in plan:
            if steps is None:
                continue
            tid = txn.tid
            for step in steps:
                kind, shard, key = step[0], step[1], step[2]
                if kind == "track":
                    (expected,) = next_semantic(shard)
                    actual = step[3]
                    self._ext.track(
                        tid,
                        key,
                        txn.start_ts,
                        actual,
                        ok=values_match(expected, actual),
                        expected=expected,
                        now=now,
                    )
                elif kind == "conflicts":
                    for owner, end in next_semantic(shard):
                        self._report_conflict(txn, owner, end, key)
                else:  # "reevals"
                    for reader_tid, ok, expected in next_semantic(shard):
                        self._ext.reevaluate(reader_tid, key, ok, expected, now)
            self._resident[tid] = txn
            self._resident_by_cts[(txn.commit_ts, tid)] = tid
            self.processed += 1
            armed.append(tid)
        self._ext.arm_timers(armed, now)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def poll(self) -> List[Violation]:
        """Drain violations reported since the previous poll."""
        self._ext.advance_to(self._clock())
        fresh, self._fresh = self._fresh, []
        return fresh

    def finalize(self) -> CheckResult:
        """Force-finalize all pending EXT verdicts and return the result."""
        self._ext.flush()
        return self._result

    @property
    def result(self) -> CheckResult:
        return self._result

    @property
    def flipflop_stats(self) -> FlipFlopStats:
        return self._ext.stats

    @property
    def resident_txn_count(self) -> int:
        return len(self._resident)

    @property
    def spill_store(self) -> Optional[SpillStore]:
        return self._spill

    def estimated_bytes(self) -> int:
        """Deep-size estimate across coordinator and all shards."""
        total = deep_sizeof((self._resident, self._ext))
        if self._cores is not None:
            total += deep_sizeof(tuple(self._cores))
        else:
            for conn in self._conns:
                conn.send([("sizeof",)])
            for conn in self._conns:
                total += conn.recv()[0]
        return total

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def gc_safe_ts(self) -> Optional[int]:
        """Collection watermark covering everything resident (see Aion)."""
        if not self._resident_by_cts:
            return None
        (max_cts, _), _ = self._resident_by_cts.max_item()
        return max_cts

    def suggest_gc_ts(self, keep_recent: int = 2000) -> Optional[int]:
        """Watermark sparing the ``keep_recent`` newest residents."""
        excess = len(self._resident_by_cts) - keep_recent
        if excess <= 0:
            return None
        for index, ((cts, _tid), _) in enumerate(self._resident_by_cts.items()):
            if index == excess - 1:
                return cts
        return None

    def collect_below(self, ts: Optional[int] = None) -> GcReport:
        """Evict per-shard structures and residents below ``ts`` to disk.

        Same report contract as :meth:`repro.core.aion.Aion.collect_below`:
        zero-count report echoing ``ts`` when nothing is resident (with
        the ``-1`` sentinel only when ``ts`` was also absent).
        """
        t0 = time.perf_counter()
        safe = self.gc_safe_ts()
        if safe is None:
            requested = ts if ts is not None else -1
            return GcReport(requested, requested, 0, 0, 0, time.perf_counter() - t0)
        effective = safe if ts is None else min(ts, safe)

        segments: List[Tuple[Dict, Dict]] = []
        if self._cores is not None:
            for core in self._cores:
                segments.append(core.execute([("evict", effective)])[0])
        else:
            for conn in self._conns:
                conn.send([("evict", effective)])
            for conn in self._conns:
                segments.append(conn.recv()[0])

        evicted_txns: List[Transaction] = []
        for (cts, tid), _ in self._resident_by_cts.pop_below((effective, _TID_MAX)):
            txn = self._resident.pop(tid, None)
            if txn is not None:
                evicted_txns.append(txn)

        n_versions = sum(
            len(versions) for frontier_seg, _ in segments for versions in frontier_seg.values()
        )
        n_intervals = sum(
            len(ivs) for _, interval_seg in segments for ivs in interval_seg.values()
        )
        if n_versions or n_intervals or evicted_txns:
            if self._spill is None:
                self._spill = SpillStore(self.config.spill_dir)
            from repro.histories.serialization import txn_to_dict

            content_min = effective
            for frontier_seg, interval_seg in segments:
                for versions in frontier_seg.values():
                    for cts, _value, _tid in versions:
                        if cts < content_min:
                            content_min = cts
                for ivs in interval_seg.values():
                    for start_ts, _end_ts, _tid in ivs:
                        if start_ts < content_min:
                            content_min = start_ts
            for txn in evicted_txns:
                if txn.start_ts < content_min:
                    content_min = txn.start_ts
            self._spill.spill(
                content_min,
                effective,
                {
                    "shards": {
                        str(shard): {
                            "frontier": frontier_seg,
                            "intervals": interval_seg,
                        }
                        for shard, (frontier_seg, interval_seg) in enumerate(segments)
                        if frontier_seg or interval_seg
                    },
                    "txns": [txn_to_dict(t) for t in evicted_txns],
                },
                n_items=n_versions + n_intervals + len(evicted_txns),
            )
        if self._collected_upto is None or effective > self._collected_upto:
            self._collected_upto = effective
        return GcReport(
            requested_ts=ts if ts is not None else safe,
            effective_ts=effective,
            evicted_versions=n_versions,
            evicted_intervals=n_intervals,
            evicted_txns=len(evicted_txns),
            seconds=time.perf_counter() - t0,
        )

    def close(self) -> None:
        """Stop worker processes and release the spill directory."""
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.join(timeout=5)
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.terminate()
        for conn in self._conns:
            conn.close()
        self._conns = []
        self._workers = []
        if self._spill is not None:
            self._spill.close()
            self._spill = None

    def __enter__(self) -> "ShardedAion":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _report(self, violation: Violation) -> None:
        self._result.add(violation)
        self._fresh.append(violation)

    def _report_conflict(self, txn: Transaction, other_tid: int, other_cts: int, key: str) -> None:
        if txn.commit_ts < other_cts:
            earlier, later = txn.tid, other_tid
        else:
            earlier, later = other_tid, txn.tid
        self._report(
            ConflictViolation(
                axiom=Axiom.NOCONFLICT,
                tid=earlier,
                key=key,
                conflicting_tids=frozenset({later}),
            )
        )

    def _report_ext_violation(self, verdict: ExtVerdict) -> None:
        self._report(
            ExtViolation(
                axiom=Axiom.EXT,
                tid=verdict.tid,
                key=verdict.key,
                expected=verdict.expected,
                actual=verdict.actual,
            )
        )

    def _drop_finalized_read(self, verdict: ExtVerdict) -> None:
        shard = shard_of(verdict.key, self.n_shards)
        self._pending_removals[shard].append(
            ("remove_read", verdict.key, verdict.snapshot_ts, verdict.tid)
        )
