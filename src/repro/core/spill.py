"""Disk spill store for Aion's garbage collection.

Aion cannot, in the worst case, discard anything permanently — a delayed
transaction may still require re-checking against old state (§III-C).  Its
GC therefore *transfers* structures below a chosen timestamp from memory
to disk and reloads them on demand (Algorithm 3, the ▨/▧ annotations).

A :class:`SpillStore` holds timestamped segments, one JSON file each,
covering a half-open timestamp range.  ``reload_overlapping`` returns (and
removes) every segment whose range intersects a queried range, so a floor
query below the in-memory boundary can transparently restore what it
needs.  Writing real files keeps the measured GC cost honest in the
Fig 12/16 experiments.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = ["SpillSegment", "SpillStore"]


@dataclass(frozen=True)
class SpillSegment:
    """Metadata of one on-disk segment."""

    segment_id: int
    min_ts: int
    max_ts: int
    path: Path
    n_items: int


class SpillStore:
    """Spill segments to a directory and reload them on demand.

    The payload of a segment is an arbitrary JSON-serializable dict —
    Aion stores ``{"frontier": ..., "intervals": ..., "txns": ...}``.
    The store owns its directory; with ``directory=None`` a temporary one
    is created and removed by :meth:`close`.
    """

    def __init__(self, directory: Optional[Path] = None) -> None:
        if directory is None:
            self._dir = Path(tempfile.mkdtemp(prefix="repro-spill-"))
            self._owns_dir = True
        else:
            self._dir = Path(directory)
            self._dir.mkdir(parents=True, exist_ok=True)
            self._owns_dir = False
        self._segments: List[SpillSegment] = []
        self._next_id = 0
        self.bytes_written = 0
        self.bytes_read = 0
        self.spill_count = 0
        self.reload_count = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def directory(self) -> Path:
        return self._dir

    def spill(self, min_ts: int, max_ts: int, payload: Dict[str, Any], *, n_items: int = 0) -> SpillSegment:
        """Write one segment covering ``[min_ts, max_ts]`` and register it."""
        segment_id = self._next_id
        self._next_id += 1
        path = self._dir / f"segment-{segment_id:08d}.json"
        encoded = json.dumps({"min_ts": min_ts, "max_ts": max_ts, "payload": payload})
        path.write_text(encoded, encoding="utf-8")
        self.bytes_written += len(encoded)
        self.spill_count += 1
        segment = SpillSegment(segment_id, min_ts, max_ts, path, n_items)
        self._segments.append(segment)
        return segment

    def reload_overlapping(self, min_ts: int, max_ts: Optional[int]) -> List[Dict[str, Any]]:
        """Load and remove every segment intersecting ``[min_ts, max_ts]``.

        ``max_ts=None`` means unbounded above.  Returns the payload dicts
        in spill order so the caller can merge them back.
        """
        hits: List[SpillSegment] = []
        survivors: List[SpillSegment] = []
        for segment in self._segments:
            upper_ok = max_ts is None or segment.min_ts <= max_ts
            if upper_ok and segment.max_ts >= min_ts:
                hits.append(segment)
            else:
                survivors.append(segment)
        self._segments = survivors
        payloads: List[Dict[str, Any]] = []
        for segment in hits:
            encoded = segment.path.read_text(encoding="utf-8")
            self.bytes_read += len(encoded)
            self.reload_count += 1
            payloads.append(json.loads(encoded)["payload"])
            segment.path.unlink(missing_ok=True)
        return payloads

    def min_spilled_ts(self) -> Optional[int]:
        """Smallest timestamp covered by any on-disk segment."""
        if not self._segments:
            return None
        return min(segment.min_ts for segment in self._segments)

    def close(self) -> None:
        """Delete all segments (and the directory when owned)."""
        for segment in self._segments:
            segment.path.unlink(missing_ok=True)
        self._segments.clear()
        if self._owns_dir:
            shutil.rmtree(self._dir, ignore_errors=True)

    def __enter__(self) -> "SpillStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
