"""Chronos-SER — the offline timestamp-based serializability checker.

Serializability with timestamp-based arbitration (Definition 5) asks
whether the history is equivalent to executing the transactions *one at a
time in commit-timestamp order*.  Following §VI-A: start timestamps can be
ignored and the NOCONFLICT axiom is not needed — the checker simulates the
serial execution directly:

- transactions are visited in ascending ``commit_ts``;
- every external read must return the running frontier value (the last
  committed write in the serial order);
- INT is checked exactly as in Chronos;
- SESSION requires each session's commit timestamps to respect its
  sequence numbers.

The same simulation handles list histories (appends resolve against the
serial frontier).  Complexity is ``O(N log N + M)``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

from repro.core.chronos import ChronosReport
from repro.core.common import BOTTOM, SessionTracker, simulate_transaction_ops
from repro.core.violations import (
    Axiom,
    CheckResult,
    ExtViolation,
    IntViolation,
    TimestampOrderViolation,
)
from repro.histories.model import History, Transaction

__all__ = ["ChronosSer"]


class ChronosSer:
    """Offline SER checker over key-value and list histories."""

    def __init__(self) -> None:
        self.report = ChronosReport()
        self.frontier: Dict[str, object] = {}

    def check(self, history: History) -> CheckResult:
        """Check an entire history for SER; returns all violations found."""
        return self.check_transactions(history.transactions)

    def check_transactions(self, transactions: Sequence[Transaction]) -> CheckResult:
        result = CheckResult()
        report = self.report = ChronosReport(
            n_transactions=len(transactions),
            n_operations=sum(len(t.ops) for t in transactions),
        )

        t0 = time.perf_counter()
        ordered: List[Transaction] = sorted(
            transactions, key=lambda t: (t.commit_ts, t.tid)
        )
        report.sort_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        frontier = self.frontier
        sessions = SessionTracker(mode="ser")

        def snapshot_of(key: str) -> object:
            return frontier.get(key, BOTTOM)

        for txn in ordered:
            if txn.start_ts > txn.commit_ts:
                # Eq. 1 still reported for diagnostic value, though SER
                # checking itself does not use start timestamps.
                result.add(
                    TimestampOrderViolation(
                        axiom=Axiom.TS_ORDER,
                        tid=txn.tid,
                        start_ts=txn.start_ts,
                        commit_ts=txn.commit_ts,
                    )
                )
            violation = sessions.observe(txn)
            if violation is not None:
                result.add(violation)
            tid = txn.tid
            writes = simulate_transaction_ops(
                txn,
                snapshot_of,
                lambda key, exp, act: result.add(
                    ExtViolation(axiom=Axiom.EXT, tid=tid, key=key, expected=exp, actual=act)
                ),
                lambda key, exp, act: result.add(
                    IntViolation(axiom=Axiom.INT, tid=tid, key=key, expected=exp, actual=act)
                ),
            )
            frontier.update(writes)

        report.check_seconds = time.perf_counter() - t0
        return result
