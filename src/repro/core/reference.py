"""A slow replay oracle for differential testing of the online checkers.

Appendix D argues Aion's re-checking is correct by case analysis; the test
suite *demonstrates* it differentially: after any prefix of arrivals, the
final verdicts of Aion (with an infinite timeout, so nothing finalizes
early) must equal the verdicts of Chronos run offline on exactly the
transactions received so far.  :class:`ReferenceOnlineChecker` provides
the Chronos side of that comparison, and :func:`normalize_violations`
maps both checkers' reports onto a common comparable set:

- Chronos reports one NOCONFLICT record per (transaction, key) naming the
  *set* of later overlapping writers, while Aion discovers conflicts
  pairwise; both normalize to ``(frozenset({a, b}), key)`` pairs.
- EXT/INT records normalize to ``(axiom, tid, key, repr(expected),
  repr(actual))``; SESSION and Eq. 1 records to ``(axiom, tid)``.
"""

from __future__ import annotations

from typing import FrozenSet, List, Set, Tuple

from repro.core.chronos import Chronos
from repro.core.chronos_ser import ChronosSer
from repro.core.violations import Axiom, CheckResult, ConflictViolation, Violation
from repro.histories.model import Transaction

__all__ = ["ReferenceOnlineChecker", "normalize_violations"]


class ReferenceOnlineChecker:
    """Re-runs the offline checker on every received prefix.

    Quadratic and meant only for tests; ``mode`` selects ``"si"``
    (Chronos) or ``"ser"`` (Chronos-SER).
    """

    def __init__(self, mode: str = "si") -> None:
        if mode not in ("si", "ser"):
            raise ValueError(f"unknown mode {mode!r}")
        self._mode = mode
        self._received: List[Transaction] = []

    def receive(self, txn: Transaction) -> None:
        self._received.append(txn)

    def result(self) -> CheckResult:
        """Offline verdicts over everything received so far."""
        if self._mode == "si":
            return Chronos().check_transactions(self._received)
        return ChronosSer().check_transactions(self._received)

    @property
    def received(self) -> List[Transaction]:
        return list(self._received)


def normalize_violations(result: CheckResult) -> Set[Tuple]:
    """Map a result onto a set comparable across checkers."""
    normalized: Set[Tuple] = set()
    for violation in result.violations:
        normalized.update(_normalize_one(violation))
    return normalized


def _normalize_one(violation: Violation) -> List[Tuple]:
    axiom = violation.axiom
    if axiom is Axiom.NOCONFLICT:
        assert isinstance(violation, ConflictViolation)
        return [
            ("NOCONFLICT", _pair(violation.tid, other), violation.key)
            for other in violation.conflicting_tids
        ]
    if axiom in (Axiom.EXT, Axiom.INT):
        return [
            (
                axiom.value,
                violation.tid,
                getattr(violation, "key", ""),
                repr(getattr(violation, "expected", None)),
                repr(getattr(violation, "actual", None)),
            )
        ]
    return [(axiom.value, violation.tid)]


def _pair(a: int, b: int) -> FrozenSet[int]:
    return frozenset({a, b})
