"""Shared pieces of the timestamp-based checkers.

- :data:`BOTTOM` — the artificial value ``⊥v`` that no client can read
  (§II: "we assume an artificial value ⊥v ∉ V").
- :class:`SessionTracker` — the ``last_sno`` / ``last_cts`` bookkeeping of
  the SESSION axiom, shared by all four checkers.
- :func:`simulate_transaction_ops` — one program-order pass over a
  transaction's operations implementing the INT / EXT rules for both
  register (key-value) and list data, returning the *resolved* final
  writes (for appends, the full list value as of the transaction's
  snapshot), which is what the frontier must be advanced with.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.histories.model import BOTTOM, OpKind, Transaction
from repro.core.violations import Axiom, SessionViolation

__all__ = ["BOTTOM", "SessionTracker", "simulate_transaction_ops", "values_match"]

#: Timestamp smaller than every real timestamp (``⊥ts`` in Algorithm 2).
BOTTOM_TS = -1


def values_match(expected: Any, actual: Any) -> bool:
    """Compare a snapshot value with a client-observed read value.

    Clients cannot observe ⊥v directly; a read of a never-written key
    surfaces as ``None`` in the history (an absent row / empty result
    set), so ``None`` matches :data:`BOTTOM`.  Everything else compares
    by equality.
    """
    if expected is BOTTOM:
        return actual is None
    return expected == actual


class SessionTracker:
    """Tracks per-session progress for the SESSION axiom.

    ``mode='si'`` applies Algorithm 2 line 7: a transaction must carry the
    next sequence number of its session and must *start* no earlier than
    its predecessor committed.  ``mode='ser'`` ignores start timestamps
    (§VI-A) and instead requires the session's commit timestamps to be
    increasing, i.e. the serial commit order respects the session order.
    """

    __slots__ = ("_mode", "_last_sno", "_last_cts")

    def __init__(self, mode: str = "si") -> None:
        if mode not in ("si", "ser"):
            raise ValueError(f"unknown session mode {mode!r}")
        self._mode = mode
        self._last_sno: Dict[int, int] = {}
        self._last_cts: Dict[int, int] = {}

    def observe(self, txn: Transaction) -> Optional[SessionViolation]:
        """Record ``txn`` as its session's latest; return a violation if any."""
        sid = txn.sid
        expected_sno = self._last_sno.get(sid, -1) + 1
        last_cts = self._last_cts.get(sid, BOTTOM_TS)
        if self._mode == "si":
            bad = txn.sno != expected_sno or txn.start_ts < last_cts
        else:
            bad = txn.sno != expected_sno or txn.commit_ts < last_cts
        self._last_sno[sid] = txn.sno
        self._last_cts[sid] = txn.commit_ts
        if bad:
            return SessionViolation(
                axiom=Axiom.SESSION,
                tid=txn.tid,
                sid=sid,
                expected_sno=expected_sno,
                actual_sno=txn.sno,
                start_ts=txn.start_ts if self._mode == "si" else txn.commit_ts,
                last_commit_ts=last_cts,
            )
        return None


def simulate_transaction_ops(
    txn: Transaction,
    snapshot_of: Callable[[str], Any],
    on_ext_mismatch: Callable[[str, Any, Any], None],
    on_int_mismatch: Callable[[str, Any, Any], None],
) -> Dict[str, Any]:
    """Replay ``txn``'s operations in program order against a snapshot.

    ``snapshot_of(key)`` must return the committed value visible to the
    transaction (or :data:`BOTTOM` for a never-written key).  The two
    callbacks receive ``(key, expected, actual)`` for EXT and INT
    mismatches respectively; checking continues past mismatches, per the
    paper's report-and-continue policy.

    Returns the resolved final write per key — for plain writes the last
    written value, for appends the full list value built on top of the
    snapshot.  This is the value the committed frontier advances to.
    """
    local: Dict[str, Any] = {}
    resolved: Dict[str, Any] = {}
    for op in txn.ops:
        key = op.key
        if op.kind is OpKind.WRITE:
            local[key] = op.value
            resolved[key] = op.value
        elif op.kind is OpKind.APPEND:
            base = local.get(key, _MISSING)
            if base is _MISSING:
                base = snapshot_of(key)
                if base is BOTTOM:
                    base = ()
            if not isinstance(base, tuple):
                base = (base,)
            new_list = base + (op.value,)
            local[key] = new_list
            resolved[key] = new_list
        elif op.kind is OpKind.READ:
            if key in local:
                if local[key] != op.value:
                    on_int_mismatch(key, local[key], op.value)
            else:
                expected = snapshot_of(key)
                if not values_match(expected, op.value):
                    on_ext_mismatch(key, expected, op.value)
            local[key] = op.value
        else:  # OpKind.READ_LIST
            actual = op.value
            if key in local:
                if local[key] != actual:
                    on_int_mismatch(key, local[key], actual)
            else:
                expected = snapshot_of(key)
                if expected is BOTTOM:
                    expected = ()
                if expected != actual:
                    on_ext_mismatch(key, expected, actual)
            local[key] = actual
    return resolved


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<missing>"


_MISSING = _Missing()
