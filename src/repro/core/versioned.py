"""Timestamp-versioned structures backing Aion (Algorithm 3).

The paper extends Chronos's ``frontier`` and ``ongoing`` maps to
``frontier_ts`` and ``ongoing_ts``, "versioned by timestamps and
support[ing] timestamp-based search, returning the latest version before a
given timestamp".  Materializing a full map image per timestamp would be
quadratic; these classes store the equivalent information *per key*:

- :class:`VersionedFrontier` — for every key, versions ordered by commit
  timestamp, ``commit_ts -> (value, tid)``.  ``frontier_ts[ts][k]`` of
  the paper is exactly :meth:`VersionedFrontier.latest_at` (greatest
  version with ``commit_ts <= ts``); the strict variant serves Aion-SER.
  Keys with at most a handful of versions — the overwhelming majority
  under skewed workloads — are kept in a pair of plain parallel lists
  and only *promoted* to a :class:`~repro.util.sortedmap.SortedMap`
  when they outgrow the threshold, skipping the container object and
  method-dispatch overhead on the cold-key fast path.
- :class:`WriterIntervals` — for every key, the lifetimes
  ``[start_ts, commit_ts]`` of its writers; ``ongoing_ts[ts][k]`` is the
  set of intervals containing ``ts``, and NOCONFLICT re-checking (step ②)
  is an interval-overlap query.
- :class:`ExtReadIndex` — for every key, the external reads indexed by
  their snapshot point, so EXT re-checking (step ③) touches only reads
  whose visible version actually changed.

All three support eviction below a GC-safe timestamp and re-merging of
reloaded segments (the ``GARBAGE COLLECT`` / reload-on-demand protocol).
"""

from __future__ import annotations

import sys
from bisect import bisect_left, bisect_right
from heapq import heapify, heappop
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.util.intervals import Interval, IntervalIndex
from repro.util.sizeof import register_sizer
from repro.util.sortedmap import SortedMap

__all__ = ["FrontierVersion", "VersionedFrontier", "WriterIntervals", "ExtReadIndex"]

FrontierVersion = Tuple[int, Any, int]  # (commit_ts, value, writer tid)

#: Keys stay in the small-key representation (a ``(ts_list, payload_list)``
#: pair of plain parallel lists) until they hold more versions than this;
#: then they are promoted to a SortedMap.  Under the skewed key
#: distributions real workloads produce, most keys never promote.  The
#: threshold is deliberately large: a promoted key pays a method call and
#: a ``maxes`` descent per operation, which only starts winning once the
#: key outgrows a single SortedMap chunk — below that, a bisect plus a
#: ``list.insert`` memmove on one flat list is strictly cheaper.  On top
#: of that, every timestamp column here (frontier commit points, writer
#: interval ends, EXT snapshot points) arrives *near-sorted*, so inserts
#: land at or near the tail and the memmove is a few entries regardless
#: of key size — the chunked container's only real advantage (bounded
#: memmove on random-position inserts) never applies.  4096 keeps even
#: the hottest keys of the throughput workloads on the inline path;
#: promotion remains as the safety net for adversarial insert orders on
#: genuinely huge keys.
_SMALL_MAX = 4096


class VersionedFrontier:
    """Per-key committed versions ordered by commit timestamp.

    ``_by_key`` maps a key either to a ``(ts_list, payload_list)`` tuple
    of parallel sorted lists (the adaptive small-key representation) or,
    once the key accumulates more than ``_SMALL_MAX`` versions, to a
    :class:`SortedMap`.  All public methods branch on the representation;
    the small path is a single C-speed bisect on a short list with no
    container-object indirection.
    """

    __slots__ = ("_by_key", "_n_versions", "_gc_heap", "_gc_pending")

    def __init__(self) -> None:
        self._by_key: Dict[str, Any] = {}
        self._n_versions = 0
        #: Lazy GC min-heap of ``(commit_ts, key)`` — one entry pushed per
        #: *new* version inserted.  :meth:`evict_below` pops every entry at
        #: or below the watermark and runs per-key eviction only on the
        #: keys those entries name, so a sparse GC cycle costs the evicted
        #: keys instead of a full index walk.  Entries are never re-pushed
        #: for the retained newest-evictable version: if that version ever
        #: becomes evictable (a newer version of the key drops below a
        #: later watermark), the newer version's own entry re-touches the
        #: key.  After ``evict_below(ts)`` every remaining entry is > ts —
        #: no stale minima.
        self._gc_heap: List[Tuple[int, str]] = []
        #: Staging list for heap entries.  The ingest hot path appends here
        #: (a plain ``list.append`` instead of a ``heappush`` sift); entries
        #: are folded into ``_gc_heap`` with one ``heapify`` at the top of
        #: :meth:`evict_below` — the only reader that needs heap order.
        self._gc_pending: List[Tuple[int, str]] = []

    def __len__(self) -> int:
        return self._n_versions

    def insert(self, key: str, commit_ts: int, value: Any, tid: int) -> None:
        """Record that ``tid`` committed ``value`` for ``key`` at ``commit_ts``."""
        versions = self._by_key.get(key)
        payload = (value, tid)
        if versions is None:
            self._by_key[key] = ([commit_ts], [payload])
            self._n_versions += 1
            self._gc_pending.append((commit_ts, key))
            return
        if type(versions) is tuple:
            timestamps, payloads = versions
            j = bisect_left(timestamps, commit_ts)
            if j < len(timestamps) and timestamps[j] == commit_ts:
                payloads[j] = payload
                return
            timestamps.insert(j, commit_ts)
            payloads.insert(j, payload)
            self._n_versions += 1
            self._gc_pending.append((commit_ts, key))
            if len(timestamps) > _SMALL_MAX:
                self._by_key[key] = SortedMap._from_sorted(timestamps, payloads)
            return
        if not versions.set_item(commit_ts, payload):
            self._n_versions += 1
            self._gc_pending.append((commit_ts, key))

    def latest_at(self, key: str, ts: int) -> Optional[FrontierVersion]:
        """Greatest version with ``commit_ts <= ts`` (SI visibility, Def. 6)."""
        versions = self._by_key.get(key)
        if versions is None:
            return None
        if type(versions) is tuple:
            timestamps, payloads = versions
            j = bisect_right(timestamps, ts) - 1
            if j < 0:
                return None
            value, tid = payloads[j]
            return (timestamps[j], value, tid)
        item = versions.floor_item(ts)
        if item is None:
            return None
        commit_ts, (value, tid) = item
        return (commit_ts, value, tid)

    def value_at(self, key: str, ts: int, default: Any = None) -> Any:
        """The visible *value* at ``ts``, or ``default`` for no version.

        Equivalent to ``latest_at(key, ts)[1]`` without materializing the
        version tuple — the batch ingestion kernel issues this query per
        external read, where the tuple build is pure overhead.
        """
        versions = self._by_key.get(key)
        if versions is None:
            return default
        if type(versions) is tuple:
            timestamps = versions[0]
            j = bisect_right(timestamps, ts) - 1
            if j < 0:
                return default
            return versions[1][j][0]
        item = versions.floor_item(ts)
        if item is None:
            return default
        return item[1][0]

    def latest_before(self, key: str, ts: int) -> Optional[FrontierVersion]:
        """Greatest version with ``commit_ts < ts`` (serial predecessor)."""
        versions = self._by_key.get(key)
        if versions is None:
            return None
        if type(versions) is tuple:
            timestamps, payloads = versions
            j = bisect_left(timestamps, ts) - 1
            if j < 0:
                return None
            value, tid = payloads[j]
            return (timestamps[j], value, tid)
        item = versions.lower_item(ts)
        if item is None:
            return None
        commit_ts, (value, tid) = item
        return (commit_ts, value, tid)

    def value_before(self, key: str, ts: int, default: Any = None) -> Any:
        """The strict-predecessor *value* at ``ts``, or ``default``.

        Equivalent to ``latest_before(key, ts)[1]`` without materializing
        the version tuple — the Aion-SER batch kernel issues this query
        per external read.
        """
        versions = self._by_key.get(key)
        if versions is None:
            return default
        if type(versions) is tuple:
            timestamps = versions[0]
            j = bisect_left(timestamps, ts) - 1
            if j < 0:
                return default
            return versions[1][j][0]
        item = versions.lower_item(ts)
        if item is None:
            return default
        return item[1][0]

    def next_after(self, key: str, ts: int) -> Optional[FrontierVersion]:
        """Least version with ``commit_ts > ts`` (the overwriting version)."""
        versions = self._by_key.get(key)
        if versions is None:
            return None
        if type(versions) is tuple:
            timestamps, payloads = versions
            j = bisect_right(timestamps, ts)
            if j == len(timestamps):
                return None
            value, tid = payloads[j]
            return (timestamps[j], value, tid)
        item = versions.higher_item(ts)
        if item is None:
            return None
        commit_ts, (value, tid) = item
        return (commit_ts, value, tid)

    def insert_and_next(
        self, key: str, commit_ts: int, value: Any, tid: int
    ) -> Optional[FrontierVersion]:
        """Insert a version and return the one overwriting it, in one pass.

        Equivalent to :meth:`next_after` followed by :meth:`insert`, but a
        single descent — the exact pair of operations step ③ performs per
        written key.
        """
        versions = self._by_key.get(key)
        payload = (value, tid)
        if versions is None:
            self._by_key[key] = ([commit_ts], [payload])
            self._n_versions += 1
            self._gc_pending.append((commit_ts, key))
            return None
        if type(versions) is tuple:
            timestamps, payloads = versions
            j = bisect_left(timestamps, commit_ts)
            n = len(timestamps)
            if j < n and timestamps[j] == commit_ts:
                payloads[j] = payload
            else:
                timestamps.insert(j, commit_ts)
                payloads.insert(j, payload)
                self._n_versions += 1
                self._gc_pending.append((commit_ts, key))
                n += 1
            if j + 1 < n:
                next_ts = timestamps[j + 1]
                next_value, next_tid = payloads[j + 1]
                result = (next_ts, next_value, next_tid)
            else:
                result = None
            if n > _SMALL_MAX:
                self._by_key[key] = SortedMap._from_sorted(timestamps, payloads)
            return result
        was_present, successor = versions.set_and_higher(commit_ts, payload)
        if not was_present:
            self._n_versions += 1
            self._gc_pending.append((commit_ts, key))
        if successor is None:
            return None
        next_ts, (next_value, next_tid) = successor
        return (next_ts, next_value, next_tid)

    def insert_and_next_ts(
        self, key: str, commit_ts: int, value: Any, tid: int
    ) -> Optional[int]:
        """:meth:`insert_and_next` returning only the successor timestamp.

        The batch kernel's step ③ needs just the next-overwrite bound for
        the affected-reader sweep; skipping the version-tuple build per
        written key is measurable at batch scale.
        """
        versions = self._by_key.get(key)
        payload = (value, tid)
        if versions is None:
            self._by_key[key] = ([commit_ts], [payload])
            self._n_versions += 1
            self._gc_pending.append((commit_ts, key))
            return None
        if type(versions) is tuple:
            timestamps, payloads = versions
            j = bisect_left(timestamps, commit_ts)
            n = len(timestamps)
            if j < n and timestamps[j] == commit_ts:
                payloads[j] = payload
            else:
                timestamps.insert(j, commit_ts)
                payloads.insert(j, payload)
                self._n_versions += 1
                self._gc_pending.append((commit_ts, key))
                n += 1
            nxt = j + 1
            result = timestamps[nxt] if nxt < n else None
            if n > _SMALL_MAX:
                self._by_key[key] = SortedMap._from_sorted(timestamps, payloads)
            return result
        was_present, successor = versions.set_and_higher(commit_ts, payload)
        if not was_present:
            self._n_versions += 1
            self._gc_pending.append((commit_ts, key))
        return None if successor is None else successor[0]

    def evict_below(self, ts: int) -> Dict[str, List[Tuple[int, Any, int]]]:
        """Remove versions with ``commit_ts <= ts``, keeping one per key.

        The newest evictable version of each key is retained: it is still
        the visible version for future snapshots above ``ts``, so dropping
        it would corrupt floor queries (the paper's GC is "conservative"
        for the same reason).  Returns the evicted versions grouped by key
        for spilling.

        Driven by the lazy ``(commit_ts, key)`` min-heap instead of a full
        index walk: every heap entry at or below ``ts`` is popped and its
        key processed once, so a cycle costs the keys with evictable
        versions — not every key in the frontier.
        """
        evicted: Dict[str, List[Tuple[int, Any, int]]] = {}
        heap = self._gc_heap
        pending = self._gc_pending
        if pending:
            heap.extend(pending)
            pending.clear()
            heapify(heap)
        if not heap or heap[0][0] > ts:
            return evicted
        touched = set()
        while heap and heap[0][0] <= ts:
            touched.add(heappop(heap)[1])
        by_key = self._by_key
        for key in touched:
            versions = by_key.get(key)
            if versions is None:
                continue
            if type(versions) is tuple:
                timestamps, payloads = versions
                j = bisect_right(timestamps, ts)
                if j < 2:
                    # Zero or one evictable version: the newest evictable
                    # one stays, so nothing leaves memory.
                    continue
                removed = list(zip(timestamps[: j - 1], payloads[: j - 1]))
                del timestamps[: j - 1]
                del payloads[: j - 1]
            else:
                popped = versions.pop_below(ts, inclusive=True)
                if not popped:
                    continue
                keep_ts, keep_payload = popped[-1]
                versions[keep_ts] = keep_payload
                removed = popped[:-1]
            if removed:
                evicted[key] = [(cts, value, tid) for cts, (value, tid) in removed]
                self._n_versions -= len(removed)
        return evicted

    def merge(self, segment: Dict[str, List[Tuple[int, Any, int]]]) -> None:
        """Re-insert previously evicted versions (reload-on-demand)."""
        for key, versions in segment.items():
            for commit_ts, value, tid in versions:
                self.insert(key, commit_ts, value, tid)

    def min_retained_ts(self) -> Optional[int]:
        """Smallest version timestamp still in memory, across all keys."""
        smallest: Optional[int] = None
        for versions in self._by_key.values():
            if type(versions) is tuple:
                timestamps = versions[0]
                if not timestamps:
                    continue
                ts = timestamps[0]
            else:
                if len(versions) == 0:
                    continue
                ts, _ = versions.min_item()
            if smallest is None or ts < smallest:
                smallest = ts
        return smallest

    def staged_gc_entries(self) -> int:
        """Heap + staging entries awaiting the next ``evict_below`` — the
        GC-debt contribution of this frontier."""
        return len(self._gc_heap) + len(self._gc_pending)


class WriterIntervals:
    """Per-key interval index over writer lifetimes (``ongoing_ts``).

    Adaptive like :class:`VersionedFrontier`: ``_by_key[key]`` holds an
    ``(ends, starts, owners)`` triple of plain parallel lists sorted by
    interval *end* (= ``commit_ts``) while the key has at most
    ``_SMALL_MAX`` live intervals, promoting to an
    :class:`IntervalIndex` beyond that.  Commit timestamps arrive in
    near-sorted order, so the small rep inserts by appending at the
    tail; an overlap query for ``[start, end]`` bisects the first end
    reaching ``start`` and scans only the live suffix — the same
    answer-plus-slop cost profile as the reach-pruned chunk index, with
    no container object and no method dispatch for the overwhelmingly
    common small key.  GC truncates the dead prefix in one slice.
    """

    __slots__ = ("_by_key", "_n_intervals", "_gc_heap", "_gc_pending")

    def __init__(self) -> None:
        self._by_key: Dict[str, Any] = {}
        self._n_intervals = 0
        #: Lazy GC min-heap of ``(commit_ts, key)`` — one entry per added
        #: interval; see :attr:`VersionedFrontier._gc_heap`.  The eviction
        #: rule here is strict (``end < ts``), matching
        #: :meth:`IntervalIndex.pop_ending_before`.
        self._gc_heap: List[Tuple[int, str]] = []
        #: Staging list folded into the heap at :meth:`evict_below` entry;
        #: see :attr:`VersionedFrontier._gc_pending`.
        self._gc_pending: List[Tuple[int, str]] = []

    def __len__(self) -> int:
        return self._n_intervals

    @staticmethod
    def _promote(ends: List[int], starts: List[int], owners: List[int]) -> IntervalIndex:
        """Build an :class:`IntervalIndex` from the small-rep columns."""
        index = IntervalIndex()
        for i in range(len(ends)):
            index.insert(starts[i], ends[i], owners[i])
        return index

    def add(self, key: str, start_ts: int, commit_ts: int, tid: int) -> None:
        rep = self._by_key.get(key)
        if rep is None:
            self._by_key[key] = ([commit_ts], [start_ts], [tid])
        elif type(rep) is tuple:
            ends, starts, owners = rep
            if commit_ts >= ends[-1]:
                ends.append(commit_ts)
                starts.append(start_ts)
                owners.append(tid)
            else:
                j = bisect_right(ends, commit_ts)
                ends.insert(j, commit_ts)
                starts.insert(j, start_ts)
                owners.insert(j, tid)
            if len(ends) > _SMALL_MAX:
                self._by_key[key] = self._promote(ends, starts, owners)
        else:
            rep.insert(start_ts, commit_ts, tid)
        self._n_intervals += 1
        self._gc_pending.append((commit_ts, key))

    def overlapping(self, key: str, start_ts: int, commit_ts: int, *, exclude_tid: int) -> List[Interval]:
        """All writer intervals of ``key`` overlapping ``[start_ts, commit_ts]``."""
        rep = self._by_key.get(key)
        if rep is None:
            return []
        if type(rep) is tuple:
            ends, starts, owners = rep
            j = bisect_left(ends, start_ts)
            return [
                Interval(starts[i], ends[i], owners[i])
                for i in range(j, len(ends))
                if starts[i] <= commit_ts and owners[i] != exclude_tid
            ]
        hits = rep.overlapping(Interval(start_ts, commit_ts))
        return [hit for hit in hits if hit.owner != exclude_tid]

    def overlap_add(
        self, key: str, start_ts: int, commit_ts: int, tid: int
    ) -> List[Tuple[int, int]]:
        """Fused overlap query + insert for the batch kernel's step ②.

        Returns ``(owner_tid, owner_commit_ts)`` pairs for every interval
        of ``key`` overlapping ``[start_ts, commit_ts]`` excluding ``tid``
        itself, then records ``tid``'s own interval — one index descent
        for what :meth:`overlapping` + :meth:`add` do in two.
        """
        rep = self._by_key.get(key)
        if rep is None:
            self._by_key[key] = ([commit_ts], [start_ts], [tid])
            self._n_intervals += 1
            self._gc_pending.append((commit_ts, key))
            return []
        if type(rep) is tuple:
            ends, starts, owners = rep
            hits: List[Tuple[int, int]] = []
            j = bisect_left(ends, start_ts)
            for i in range(j, len(ends)):
                if starts[i] <= commit_ts:
                    owner = owners[i]
                    if owner != tid:
                        hits.append((owner, ends[i]))
            if commit_ts >= ends[-1]:
                ends.append(commit_ts)
                starts.append(start_ts)
                owners.append(tid)
            else:
                j = bisect_right(ends, commit_ts)
                ends.insert(j, commit_ts)
                starts.insert(j, start_ts)
                owners.insert(j, tid)
            if len(ends) > _SMALL_MAX:
                self._by_key[key] = self._promote(ends, starts, owners)
        else:
            hits = rep.overlap_add(start_ts, commit_ts, tid)
        self._n_intervals += 1
        self._gc_pending.append((commit_ts, key))
        return hits

    def evict_below(self, ts: int) -> Dict[str, List[Tuple[int, int, int]]]:
        """Remove intervals ending before ``ts`` (no future overlap possible).

        Heap-driven like :meth:`VersionedFrontier.evict_below`: only keys
        named by popped heap entries (``end < ts``) are swept.
        """
        evicted: Dict[str, List[Tuple[int, int, int]]] = {}
        heap = self._gc_heap
        pending = self._gc_pending
        if pending:
            heap.extend(pending)
            pending.clear()
            heapify(heap)
        if not heap or heap[0][0] >= ts:
            return evicted
        touched = set()
        while heap and heap[0][0] < ts:
            touched.add(heappop(heap)[1])
        by_key = self._by_key
        for key in touched:
            rep = by_key.get(key)
            if rep is None:
                continue
            if type(rep) is tuple:
                ends, starts, owners = rep
                j = bisect_left(ends, ts)
                if not j:
                    continue
                evicted[key] = list(zip(starts[:j], ends[:j], owners[:j]))
                self._n_intervals -= j
                if j == len(ends):
                    del by_key[key]
                else:
                    del ends[:j]
                    del starts[:j]
                    del owners[:j]
                continue
            removed = rep.pop_ending_before(ts)
            if removed:
                evicted[key] = [(iv.start, iv.end, iv.owner) for iv in removed]
                self._n_intervals -= len(removed)
        return evicted

    def merge(self, segment: Dict[str, List[Tuple[int, int, int]]]) -> None:
        for key, intervals in segment.items():
            for start_ts, commit_ts, tid in intervals:
                self.add(key, start_ts, commit_ts, tid)

    def scan_step_totals(self) -> Tuple[int, int]:
        """Summed ``(scan_steps, gc_scan_steps)`` over live promoted keys.

        Only keys promoted to an :class:`IntervalIndex` maintain scan
        counters (the small-rep fast path bisects flat lists and counts
        nothing); eviction never demotes a promoted key, so the live sum
        is cumulative for every key still promoted.  Observability-path
        only — an O(promoted keys) walk, never on ingest.
        """
        scan = 0
        gc_scan = 0
        for rep in self._by_key.values():
            if type(rep) is not tuple:
                scan += rep.scan_steps
                gc_scan += rep.gc_scan_steps
        return scan, gc_scan

    def staged_gc_entries(self) -> int:
        """Heap + staging entries awaiting the next ``evict_below`` — the
        GC-debt contribution of this index."""
        return len(self._gc_heap) + len(self._gc_pending)


class ExtReadIndex:
    """Per-key external reads indexed by snapshot point.

    Each entry maps ``snapshot_ts`` to its readers: a single
    ``(tid, actual_value)`` pair in the overwhelmingly common
    one-reader-per-snapshot case, promoted to a *list* of pairs when
    distinct transactions share a snapshot point (concurrent readers
    handed the same database snapshot all carry the same ``start_ts``).
    The promotion matters for correctness — storing only one reader per
    snapshot would let one reader clobber another at insertion, and
    finalizing one reader would evict the others from step-③ re-checking
    (silently dropped re-checks, i.e. missed EXT violations) — while the
    pair fast path matters for the hot path: the batch kernel adds one
    entry per external read, and allocating a one-element list per read
    was a measurable share of step ①.

    For Aion (SI) the snapshot point is the reader's ``start_ts``; for
    Aion-SER it is the reader's ``commit_ts``.  Entries are removed
    per-reader when that read's EXT verdict is finalized by timeout —
    finalized reads are never re-checked (Algorithm 3, lines 40–41),
    which keeps the index small.

    Like :class:`VersionedFrontier`, keys are adaptive: ``_by_key[key]``
    is a ``(ts_list, readers_list)`` pair of plain parallel lists while
    the key holds at most ``_SMALL_MAX`` distinct snapshot points, and is
    promoted to a :class:`SortedMap` beyond that.  Finalization churn —
    add on arrival, remove on timeout — stays on the C-speed bisect path
    for the overwhelming majority of keys.
    """

    __slots__ = ("_by_key", "_n_reads")

    def __init__(self) -> None:
        self._by_key: Dict[str, Any] = {}
        self._n_reads = 0

    def __len__(self) -> int:
        return self._n_reads

    def add(self, key: str, snapshot_ts: int, tid: int, actual: Any) -> None:
        pair = (tid, actual)
        index = self._by_key.get(key)
        if index is None:
            self._by_key[key] = ([snapshot_ts], [pair])
            self._n_reads += 1
            return
        if type(index) is tuple:
            ts_list, readers_list = index
            j = bisect_left(ts_list, snapshot_ts)
            if j < len(ts_list) and ts_list[j] == snapshot_ts:
                entry = readers_list[j]
                if type(entry) is list:
                    entry.append(pair)
                else:
                    readers_list[j] = [entry, pair]
            else:
                ts_list.insert(j, snapshot_ts)
                readers_list.insert(j, pair)
                if len(ts_list) > _SMALL_MAX:
                    self._by_key[key] = SortedMap._from_sorted(ts_list, readers_list)
            self._n_reads += 1
            return
        # Single-descent get-or-insert: a fresh snapshot point stores the
        # pair itself; a collision promotes the entry to a reader list.
        got = index.setdefault(snapshot_ts, pair)
        if got is not pair:
            if type(got) is list:
                got.append(pair)
            else:
                index[snapshot_ts] = [got, pair]
        self._n_reads += 1

    def remove(self, key: str, snapshot_ts: int, tid: int) -> None:
        """Drop ``tid``'s read of ``key`` at ``snapshot_ts``; other readers
        sharing the snapshot point stay indexed.  Idempotent."""
        index = self._by_key.get(key)
        if index is None:
            return
        if type(index) is tuple:
            ts_list, readers_list = index
            j = bisect_left(ts_list, snapshot_ts)
            if j == len(ts_list) or ts_list[j] != snapshot_ts:
                return
            entry = readers_list[j]
            if type(entry) is list:
                for position, (reader_tid, _actual) in enumerate(entry):
                    if reader_tid == tid:
                        del entry[position]
                        self._n_reads -= 1
                        if len(entry) == 1:
                            readers_list[j] = entry[0]
                        return
                return
            if entry[0] == tid:
                del ts_list[j]
                del readers_list[j]
                self._n_reads -= 1
            return
        entry = index.get(snapshot_ts)
        if entry is None:
            return
        if type(entry) is list:
            for position, (reader_tid, _actual) in enumerate(entry):
                if reader_tid == tid:
                    del entry[position]
                    self._n_reads -= 1
                    if len(entry) == 1:
                        index[snapshot_ts] = entry[0]
                    return
            return
        if entry[0] == tid:
            del index[snapshot_ts]
            self._n_reads -= 1

    def clear(self) -> None:
        """Drop every indexed read at once.

        The end-of-stream flush finalizes *all* pending verdicts in one
        batch; when the caller knows the batch covers the whole index
        (checked against ``len(self)``), clearing wholesale replaces one
        filtered rebuild per key.
        """
        self._by_key.clear()
        self._n_reads = 0

    def remove_batch(self, items: List[Tuple[str, int, int]]) -> None:
        """Drop a batch of ``(key, snapshot_ts, tid)`` reads.

        The grouped form of :meth:`remove` used when a timer expiry
        finalizes many verdicts at once; semantics are per-item identical.
        Removals are grouped per key, and a key losing a large fraction of
        its indexed reads (the shape of an end-of-stream flush, where a
        deadline finalizes *every* read of a key at once) is rebuilt in a
        single filtered pass instead of paying one descent-and-splice per
        removed read.
        """
        if not items:
            return
        by_key: Dict[str, List[Tuple[int, int]]] = {}
        for key, snapshot_ts, tid in items:
            group = by_key.get(key)
            if group is None:
                by_key[key] = [(snapshot_ts, tid)]
            else:
                group.append((snapshot_ts, tid))
        remove = self.remove
        for key, group in by_key.items():
            index = self._by_key.get(key)
            if index is None:
                continue
            if type(index) is tuple or len(group) * 4 < len(index):
                for snapshot_ts, tid in group:
                    remove(key, snapshot_ts, tid)
                continue
            # Bulk path: one filtered walk of the key's map.  ``len(index)``
            # counts distinct snapshot points (a lower bound on reads), so
            # this triggers only when most of the key is going away.
            doomed = set(group)
            kept_ts: List[int] = []
            kept_readers: List[Any] = []
            removed = 0
            for snapshot_ts, entry in index.items():
                if type(entry) is list:
                    survivors = [
                        pair for pair in entry if (snapshot_ts, pair[0]) not in doomed
                    ]
                    removed += len(entry) - len(survivors)
                    if survivors:
                        kept_ts.append(snapshot_ts)
                        kept_readers.append(
                            survivors[0] if len(survivors) == 1 else survivors
                        )
                elif (snapshot_ts, entry[0]) in doomed:
                    removed += 1
                else:
                    kept_ts.append(snapshot_ts)
                    kept_readers.append(entry)
            self._n_reads -= removed
            if not kept_ts:
                del self._by_key[key]
            elif len(kept_ts) <= _SMALL_MAX:
                self._by_key[key] = (kept_ts, kept_readers)
            else:
                self._by_key[key] = SortedMap._from_sorted(kept_ts, kept_readers)

    def affected_by(
        self,
        key: str,
        version_ts: int,
        next_version_ts: Optional[int],
        *,
        upper_inclusive: bool = False,
    ) -> Iterator[Tuple[int, int, Any]]:
        """Reads whose visible version becomes the one at ``version_ts``.

        Yields ``(snapshot_ts, tid, actual_value)`` for every reader with
        a snapshot point in ``[version_ts, next_version_ts)`` — or
        ``(version_ts, next_version_ts]`` with ``upper_inclusive=True``,
        the bound needed by Aion-SER where a reader at exactly the next
        version's commit timestamp is that version's own writer and sees
        the new version.
        """
        index = self._by_key.get(key)
        if index is None:
            return
        if type(index) is tuple:
            ts_list, readers_list = index
            lo = bisect_left(ts_list, version_ts)
            if next_version_ts is None:
                hi = len(ts_list)
            elif upper_inclusive:
                hi = bisect_right(ts_list, next_version_ts)
            else:
                hi = bisect_left(ts_list, next_version_ts)
            for j in range(lo, hi):
                snapshot_ts = ts_list[j]
                entry = readers_list[j]
                if type(entry) is list:
                    for tid, actual in list(entry):
                        yield snapshot_ts, tid, actual
                else:
                    yield snapshot_ts, entry[0], entry[1]
            return
        for snapshot_ts, entry in index.irange(
            version_ts, next_version_ts, inclusive=(True, upper_inclusive)
        ):
            if type(entry) is list:
                for tid, actual in list(entry):
                    yield snapshot_ts, tid, actual
            else:
                yield snapshot_ts, entry[0], entry[1]

    def collect_affected(
        self,
        key: str,
        version_ts: int,
        next_version_ts: Optional[int],
        exclude_tid: int,
        *,
        upper_inclusive: bool = False,
    ) -> List[Tuple[int, int, Any]]:
        """List-returning :meth:`affected_by` with the self-reader filter.

        The batch kernel's probe pass materializes re-check sets anyway
        (verdict application happens in a later pass); returning a plain
        list skips the generator frames, and folding in the
        ``reader_tid == writer_tid`` exclusion saves the per-row branch at
        the call sites.  Returns ``[]`` when no reader is affected.
        """
        index = self._by_key.get(key)
        if index is None:
            return []
        out: List[Tuple[int, int, Any]] = []
        if type(index) is tuple:
            ts_list, readers_list = index
            lo = bisect_left(ts_list, version_ts)
            if next_version_ts is None:
                hi = len(ts_list)
            elif upper_inclusive:
                hi = bisect_right(ts_list, next_version_ts)
            else:
                hi = bisect_left(ts_list, next_version_ts)
            for j in range(lo, hi):
                entry = readers_list[j]
                if type(entry) is list:
                    snapshot_ts = ts_list[j]
                    for tid, actual in entry:
                        if tid != exclude_tid:
                            out.append((snapshot_ts, tid, actual))
                elif entry[0] != exclude_tid:
                    out.append((ts_list[j], entry[0], entry[1]))
            return out
        got = index.range_lists(
            version_ts, next_version_ts, inclusive=(True, upper_inclusive)
        )
        if got is None:
            return out
        range_ts, range_entries = got
        for j, entry in enumerate(range_entries):
            if type(entry) is list:
                snapshot_ts = range_ts[j]
                for tid, actual in entry:
                    if tid != exclude_tid:
                        out.append((snapshot_ts, tid, actual))
            elif entry[0] != exclude_tid:
                out.append((range_ts[j], entry[0], entry[1]))
        return out

    def evict_below(self, ts: int) -> Dict[str, List[Tuple[int, int, Any]]]:
        evicted: Dict[str, List[Tuple[int, int, Any]]] = {}
        for key, index in self._by_key.items():
            flat: List[Tuple[int, int, Any]] = []
            if type(index) is tuple:
                ts_list, readers_list = index
                j = bisect_right(ts_list, ts)
                if not j:
                    continue
                for position in range(j):
                    snapshot_ts = ts_list[position]
                    entry = readers_list[position]
                    if type(entry) is list:
                        for tid, actual in entry:
                            flat.append((snapshot_ts, tid, actual))
                    else:
                        flat.append((snapshot_ts, entry[0], entry[1]))
                del ts_list[:j]
                del readers_list[:j]
            else:
                removed = index.pop_below(ts, inclusive=True)
                if not removed:
                    continue
                for snapshot_ts, entry in removed:
                    if type(entry) is list:
                        for tid, actual in entry:
                            flat.append((snapshot_ts, tid, actual))
                    else:
                        flat.append((snapshot_ts, entry[0], entry[1]))
            if flat:
                evicted[key] = flat
                self._n_reads -= len(flat)
        return evicted

    def merge(self, segment: Dict[str, List[Tuple[int, int, Any]]]) -> None:
        for key, reads in segment.items():
            for snapshot_ts, tid, actual in reads:
                self.add(key, snapshot_ts, tid, actual)


# ----------------------------------------------------------------------
# Columnar frontier-probe kernel
# ----------------------------------------------------------------------

def probe_columns(
    frontier: "VersionedFrontier",
    writers: "WriterIntervals",
    ext_reads: "ExtReadIndex",
    key_streams: Dict[str, List[int]],
    r_ts: List[int],
    r_tids: List[int],
    r_vals: List[Any],
    w_vals: List[Any],
    w_starts: List[int],
    w_cts: List[int],
    w_tids: List[int],
    optimized: bool,
    bottom: Any,
) -> Tuple[List[Any], List[Optional[List[Tuple[int, int]]]], List[Optional[list]]]:
    """Execute the batch kernel's frontier-probe pass over per-key streams.

    ``key_streams`` maps each key to its arrival-ordered op stream:
    ``index << 1`` encodes the external read at flat position ``index``,
    ``index << 1 | 1`` the write at that position.  The SI semantics are
    exactly those of :meth:`VersionedFrontier.value_at` +
    :meth:`ExtReadIndex.add` per read and
    :meth:`WriterIntervals.overlap_add` +
    :meth:`VersionedFrontier.insert_and_next_ts` +
    :meth:`ExtReadIndex.collect_affected` per write, in stream order.

    The pass lives here rather than in the checker because this layer
    owns all three per-key structures: each key's representation is
    fetched **once per stream** instead of once per op, and the adaptive
    small-key fast paths (plain parallel lists) are applied inline —
    dropping one dict descent and several method frames per operation.
    The inline branches are line-for-line twins of the per-op methods
    named above; keep them in lockstep (the kernel-vs-reference
    differential suite pins the equivalence).

    Returns ``(r_expected, w_conflicts, w_reevals)``: the visibility
    floor per read, and per write slot the NOCONFLICT hits and affected
    re-check rows (``None`` when empty).
    """
    n_reads = len(r_ts)
    n_writes = len(w_cts)
    r_expected: List[Any] = [None] * n_reads
    w_conflicts: List[Optional[List[Tuple[int, int]]]] = [None] * n_writes
    w_reevals: List[Optional[list]] = [None] * n_writes

    f_by_key = frontier._by_key
    f_gc_pending = frontier._gc_pending
    e_by_key = ext_reads._by_key
    w_by_key = writers._by_key
    w_gc_pending = writers._gc_pending
    value_at = frontier.value_at
    collect_affected = ext_reads.collect_affected
    new_versions = 0

    for key, stream in key_streams.items():
        fv = f_by_key.get(key)
        ev = e_by_key.get(key)
        iv = w_by_key.get(key)
        for code in stream:
            index = code >> 1
            if code & 1:
                # ---- write: step ② then step ③.
                commit_ts = w_cts[index]
                tid = w_tids[index]
                # Inline twin of WriterIntervals.overlap_add.
                start_ts = w_starts[index]
                if iv is None:
                    iv = w_by_key[key] = ([commit_ts], [start_ts], [tid])
                elif type(iv) is tuple:
                    ends, i_starts, owners = iv
                    hits = None
                    for i in range(bisect_left(ends, start_ts), len(ends)):
                        if i_starts[i] <= commit_ts:
                            owner = owners[i]
                            if owner != tid:
                                if hits is None:
                                    hits = w_conflicts[index] = []
                                hits.append((owner, ends[i]))
                    if commit_ts >= ends[-1]:
                        ends.append(commit_ts)
                        i_starts.append(start_ts)
                        owners.append(tid)
                    else:
                        j = bisect_right(ends, commit_ts)
                        ends.insert(j, commit_ts)
                        i_starts.insert(j, start_ts)
                        owners.insert(j, tid)
                    if len(ends) > _SMALL_MAX:
                        iv = w_by_key[key] = WriterIntervals._promote(
                            ends, i_starts, owners
                        )
                else:
                    hits = iv.overlap_add(start_ts, commit_ts, tid)
                    if hits:
                        w_conflicts[index] = hits
                w_gc_pending.append((commit_ts, key))
                # Inline twin of insert_and_next_ts.
                payload = (w_vals[index], tid)
                if fv is None:
                    fv = f_by_key[key] = ([commit_ts], [payload])
                    new_versions += 1
                    f_gc_pending.append((commit_ts, key))
                    nxt_ts = None
                elif type(fv) is tuple:
                    timestamps, payloads = fv
                    j = bisect_left(timestamps, commit_ts)
                    n = len(timestamps)
                    if j < n and timestamps[j] == commit_ts:
                        payloads[j] = payload
                    else:
                        timestamps.insert(j, commit_ts)
                        payloads.insert(j, payload)
                        new_versions += 1
                        f_gc_pending.append((commit_ts, key))
                        n += 1
                    nxt = j + 1
                    nxt_ts = timestamps[nxt] if nxt < n else None
                    if n > _SMALL_MAX:
                        fv = f_by_key[key] = SortedMap._from_sorted(
                            timestamps, payloads
                        )
                else:
                    was_present, successor = fv.set_and_higher(commit_ts, payload)
                    if not was_present:
                        new_versions += 1
                        f_gc_pending.append((commit_ts, key))
                    nxt_ts = None if successor is None else successor[0]
                if optimized:
                    # Inline twin of collect_affected for the small rep
                    # (``ev`` is already in hand; upper bound exclusive).
                    if ev is None:
                        pass
                    elif type(ev) is tuple:
                        ts_list, readers_list = ev
                        lo = bisect_left(ts_list, commit_ts)
                        hi = (
                            len(ts_list)
                            if nxt_ts is None
                            else bisect_left(ts_list, nxt_ts)
                        )
                        if lo < hi:
                            out = []
                            for j in range(lo, hi):
                                entry = readers_list[j]
                                if type(entry) is list:
                                    sts = ts_list[j]
                                    for reader_tid, actual in entry:
                                        if reader_tid != tid:
                                            out.append((sts, reader_tid, actual))
                                elif entry[0] != tid:
                                    out.append((ts_list[j], entry[0], entry[1]))
                            if out:
                                w_reevals[index] = out
                    else:
                        affected = collect_affected(key, commit_ts, nxt_ts, tid)
                        if affected:
                            w_reevals[index] = affected
                else:
                    # Ablation: every pending read of the key against a
                    # fresh visibility query (no range cutoff); the
                    # expected value must be resolved *here*, at this
                    # point of the key's stream.
                    affected = collect_affected(key, 0, None, tid)
                    if affected:
                        w_reevals[index] = [
                            (value_at(key, sts, bottom), reader_tid, actual)
                            for sts, reader_tid, actual in affected
                        ]
            else:
                # ---- read: step ①, inline twins of value_at + add.
                snapshot_ts = r_ts[index]
                if fv is None:
                    r_expected[index] = bottom
                elif type(fv) is tuple:
                    timestamps = fv[0]
                    j = bisect_right(timestamps, snapshot_ts) - 1
                    r_expected[index] = fv[1][j][0] if j >= 0 else bottom
                else:
                    item = fv.floor_item(snapshot_ts)
                    r_expected[index] = bottom if item is None else item[1][0]
                pair = (r_tids[index], r_vals[index])
                if ev is None:
                    ev = e_by_key[key] = ([snapshot_ts], [pair])
                elif type(ev) is tuple:
                    ts_list, readers_list = ev
                    j = bisect_left(ts_list, snapshot_ts)
                    if j < len(ts_list) and ts_list[j] == snapshot_ts:
                        entry = readers_list[j]
                        if type(entry) is list:
                            entry.append(pair)
                        else:
                            readers_list[j] = [entry, pair]
                    else:
                        ts_list.insert(j, snapshot_ts)
                        readers_list.insert(j, pair)
                        if len(ts_list) > _SMALL_MAX:
                            ev = e_by_key[key] = SortedMap._from_sorted(
                                ts_list, readers_list
                            )
                else:
                    got = ev.setdefault(snapshot_ts, pair)
                    if got is not pair:
                        if type(got) is list:
                            got.append(pair)
                        else:
                            ev[snapshot_ts] = [got, pair]

    frontier._n_versions += new_versions
    writers._n_intervals += n_writes
    ext_reads._n_reads += n_reads
    return r_expected, w_conflicts, w_reevals


# ----------------------------------------------------------------------
# deep_sizeof fast paths
#
# The memory sampler runs inside capped-memory experiments, so the flat
# layouts above — small-key parallel lists, GC heap entries — are sized
# inline rather than element-by-element through the generic memoized
# walk.  Each sizer returns the bytes beyond ``sys.getsizeof(obj)`` and
# pushes only rich sub-objects (SortedMap, IntervalIndex, history
# values) back onto the walk's stack; heap-entry keys alias the index's
# own keys and are deliberately not re-counted (see the tolerance note
# in :mod:`repro.util.sizeof`).
# ----------------------------------------------------------------------


def _gc_heap_bytes(heap: List[Tuple[int, str]]) -> int:
    getsizeof = sys.getsizeof
    total = getsizeof(heap)
    for entry in heap:
        total += getsizeof(entry) + getsizeof(entry[0])
    return total


def _frontier_bytes(frontier: VersionedFrontier, stack: List[Any]) -> int:
    getsizeof = sys.getsizeof
    by_key = frontier._by_key
    total = getsizeof(by_key) + _gc_heap_bytes(frontier._gc_heap) + _gc_heap_bytes(frontier._gc_pending)
    for key, versions in by_key.items():
        total += getsizeof(key)
        if type(versions) is tuple:
            timestamps, payloads = versions
            total += getsizeof(versions) + getsizeof(timestamps) + getsizeof(payloads)
            total += sum(map(getsizeof, timestamps))
            for payload in payloads:  # (value, tid)
                total += getsizeof(payload) + getsizeof(payload[1])
                stack.append(payload[0])
        else:
            stack.append(versions)
    return total


def _writer_intervals_bytes(writers: WriterIntervals, stack: List[Any]) -> int:
    getsizeof = sys.getsizeof
    by_key = writers._by_key
    total = getsizeof(by_key) + _gc_heap_bytes(writers._gc_heap) + _gc_heap_bytes(writers._gc_pending)
    for key, rep in by_key.items():
        total += getsizeof(key)
        if type(rep) is tuple:
            ends, starts, owners = rep
            total += getsizeof(rep) + getsizeof(ends) + getsizeof(starts) + getsizeof(owners)
            total += sum(map(getsizeof, ends))
            total += sum(map(getsizeof, starts))
            total += sum(map(getsizeof, owners))
        else:
            stack.append(rep)  # IntervalIndex has its own chunked fast path
    return total


def _ext_reads_bytes(ext_reads: ExtReadIndex, stack: List[Any]) -> int:
    getsizeof = sys.getsizeof
    by_key = ext_reads._by_key
    total = getsizeof(by_key)
    for key, index in by_key.items():
        total += getsizeof(key)
        if type(index) is tuple:
            ts_list, readers_list = index
            total += getsizeof(index) + getsizeof(ts_list) + getsizeof(readers_list)
            total += sum(map(getsizeof, ts_list))
            for entry in readers_list:  # (tid, actual) pair or list of pairs
                total += getsizeof(entry)
                if type(entry) is list:
                    for pair in entry:
                        total += getsizeof(pair) + getsizeof(pair[0])
                        stack.append(pair[1])
                else:
                    total += getsizeof(entry[0])
                    stack.append(entry[1])
        else:
            stack.append(index)
    return total


register_sizer(VersionedFrontier, _frontier_bytes)
register_sizer(WriterIntervals, _writer_intervals_bytes)
register_sizer(ExtReadIndex, _ext_reads_bytes)
