"""Timestamp-versioned structures backing Aion (Algorithm 3).

The paper extends Chronos's ``frontier`` and ``ongoing`` maps to
``frontier_ts`` and ``ongoing_ts``, "versioned by timestamps and
support[ing] timestamp-based search, returning the latest version before a
given timestamp".  Materializing a full map image per timestamp would be
quadratic; these classes store the equivalent information *per key*:

- :class:`VersionedFrontier` — for every key, versions ordered by commit
  timestamp, ``commit_ts -> (value, tid)``.  ``frontier_ts[ts][k]`` of
  the paper is exactly :meth:`VersionedFrontier.latest_at` (greatest
  version with ``commit_ts <= ts``); the strict variant serves Aion-SER.
  Keys with at most a handful of versions — the overwhelming majority
  under skewed workloads — are kept in a pair of plain parallel lists
  and only *promoted* to a :class:`~repro.util.sortedmap.SortedMap`
  when they outgrow the threshold, skipping the container object and
  method-dispatch overhead on the cold-key fast path.
- :class:`WriterIntervals` — for every key, the lifetimes
  ``[start_ts, commit_ts]`` of its writers; ``ongoing_ts[ts][k]`` is the
  set of intervals containing ``ts``, and NOCONFLICT re-checking (step ②)
  is an interval-overlap query.
- :class:`ExtReadIndex` — for every key, the external reads indexed by
  their snapshot point, so EXT re-checking (step ③) touches only reads
  whose visible version actually changed.

All three support eviction below a GC-safe timestamp and re-merging of
reloaded segments (the ``GARBAGE COLLECT`` / reload-on-demand protocol).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.util.intervals import Interval, IntervalIndex
from repro.util.sortedmap import SortedMap

__all__ = ["FrontierVersion", "VersionedFrontier", "WriterIntervals", "ExtReadIndex"]

FrontierVersion = Tuple[int, Any, int]  # (commit_ts, value, writer tid)

#: Keys stay in the small-key representation (a ``(ts_list, payload_list)``
#: pair of plain parallel lists) until they hold more versions than this;
#: then they are promoted to a SortedMap.  Under the skewed key
#: distributions real workloads produce, most keys never promote.
_SMALL_MAX = 8


class VersionedFrontier:
    """Per-key committed versions ordered by commit timestamp.

    ``_by_key`` maps a key either to a ``(ts_list, payload_list)`` tuple
    of parallel sorted lists (the adaptive small-key representation) or,
    once the key accumulates more than ``_SMALL_MAX`` versions, to a
    :class:`SortedMap`.  All public methods branch on the representation;
    the small path is a single C-speed bisect on a short list with no
    container-object indirection.
    """

    __slots__ = ("_by_key", "_n_versions")

    def __init__(self) -> None:
        self._by_key: Dict[str, Any] = {}
        self._n_versions = 0

    def __len__(self) -> int:
        return self._n_versions

    def insert(self, key: str, commit_ts: int, value: Any, tid: int) -> None:
        """Record that ``tid`` committed ``value`` for ``key`` at ``commit_ts``."""
        versions = self._by_key.get(key)
        payload = (value, tid)
        if versions is None:
            self._by_key[key] = ([commit_ts], [payload])
            self._n_versions += 1
            return
        if type(versions) is tuple:
            timestamps, payloads = versions
            j = bisect_left(timestamps, commit_ts)
            if j < len(timestamps) and timestamps[j] == commit_ts:
                payloads[j] = payload
                return
            timestamps.insert(j, commit_ts)
            payloads.insert(j, payload)
            self._n_versions += 1
            if len(timestamps) > _SMALL_MAX:
                self._by_key[key] = SortedMap._from_sorted(timestamps, payloads)
            return
        if not versions.set_item(commit_ts, payload):
            self._n_versions += 1

    def latest_at(self, key: str, ts: int) -> Optional[FrontierVersion]:
        """Greatest version with ``commit_ts <= ts`` (SI visibility, Def. 6)."""
        versions = self._by_key.get(key)
        if versions is None:
            return None
        if type(versions) is tuple:
            timestamps, payloads = versions
            j = bisect_right(timestamps, ts) - 1
            if j < 0:
                return None
            value, tid = payloads[j]
            return (timestamps[j], value, tid)
        item = versions.floor_item(ts)
        if item is None:
            return None
        commit_ts, (value, tid) = item
        return (commit_ts, value, tid)

    def value_at(self, key: str, ts: int, default: Any = None) -> Any:
        """The visible *value* at ``ts``, or ``default`` for no version.

        Equivalent to ``latest_at(key, ts)[1]`` without materializing the
        version tuple — the batch ingestion kernel issues this query per
        external read, where the tuple build is pure overhead.
        """
        versions = self._by_key.get(key)
        if versions is None:
            return default
        if type(versions) is tuple:
            timestamps = versions[0]
            j = bisect_right(timestamps, ts) - 1
            if j < 0:
                return default
            return versions[1][j][0]
        item = versions.floor_item(ts)
        if item is None:
            return default
        return item[1][0]

    def latest_before(self, key: str, ts: int) -> Optional[FrontierVersion]:
        """Greatest version with ``commit_ts < ts`` (serial predecessor)."""
        versions = self._by_key.get(key)
        if versions is None:
            return None
        if type(versions) is tuple:
            timestamps, payloads = versions
            j = bisect_left(timestamps, ts) - 1
            if j < 0:
                return None
            value, tid = payloads[j]
            return (timestamps[j], value, tid)
        item = versions.lower_item(ts)
        if item is None:
            return None
        commit_ts, (value, tid) = item
        return (commit_ts, value, tid)

    def next_after(self, key: str, ts: int) -> Optional[FrontierVersion]:
        """Least version with ``commit_ts > ts`` (the overwriting version)."""
        versions = self._by_key.get(key)
        if versions is None:
            return None
        if type(versions) is tuple:
            timestamps, payloads = versions
            j = bisect_right(timestamps, ts)
            if j == len(timestamps):
                return None
            value, tid = payloads[j]
            return (timestamps[j], value, tid)
        item = versions.higher_item(ts)
        if item is None:
            return None
        commit_ts, (value, tid) = item
        return (commit_ts, value, tid)

    def insert_and_next(
        self, key: str, commit_ts: int, value: Any, tid: int
    ) -> Optional[FrontierVersion]:
        """Insert a version and return the one overwriting it, in one pass.

        Equivalent to :meth:`next_after` followed by :meth:`insert`, but a
        single descent — the exact pair of operations step ③ performs per
        written key.
        """
        versions = self._by_key.get(key)
        payload = (value, tid)
        if versions is None:
            self._by_key[key] = ([commit_ts], [payload])
            self._n_versions += 1
            return None
        if type(versions) is tuple:
            timestamps, payloads = versions
            j = bisect_left(timestamps, commit_ts)
            n = len(timestamps)
            if j < n and timestamps[j] == commit_ts:
                payloads[j] = payload
            else:
                timestamps.insert(j, commit_ts)
                payloads.insert(j, payload)
                self._n_versions += 1
                n += 1
            if j + 1 < n:
                next_ts = timestamps[j + 1]
                next_value, next_tid = payloads[j + 1]
                result = (next_ts, next_value, next_tid)
            else:
                result = None
            if n > _SMALL_MAX:
                self._by_key[key] = SortedMap._from_sorted(timestamps, payloads)
            return result
        was_present, nxt = versions.set_and_higher(commit_ts, payload)
        if not was_present:
            self._n_versions += 1
        if nxt is None:
            return None
        next_ts, (next_value, next_tid) = nxt
        return (next_ts, next_value, next_tid)

    def evict_below(self, ts: int) -> Dict[str, List[Tuple[int, Any, int]]]:
        """Remove versions with ``commit_ts <= ts``, keeping one per key.

        The newest evictable version of each key is retained: it is still
        the visible version for future snapshots above ``ts``, so dropping
        it would corrupt floor queries (the paper's GC is "conservative"
        for the same reason).  Returns the evicted versions grouped by key
        for spilling.
        """
        evicted: Dict[str, List[Tuple[int, Any, int]]] = {}
        for key, versions in self._by_key.items():
            if type(versions) is tuple:
                timestamps, payloads = versions
                j = bisect_right(timestamps, ts)
                if j < 2:
                    # Zero or one evictable version: the newest evictable
                    # one stays, so nothing leaves memory.
                    continue
                removed = list(zip(timestamps[: j - 1], payloads[: j - 1]))
                del timestamps[: j - 1]
                del payloads[: j - 1]
            else:
                popped = versions.pop_below(ts, inclusive=True)
                if not popped:
                    continue
                keep_ts, keep_payload = popped[-1]
                versions[keep_ts] = keep_payload
                removed = popped[:-1]
            if removed:
                evicted[key] = [(cts, value, tid) for cts, (value, tid) in removed]
                self._n_versions -= len(removed)
        return evicted

    def merge(self, segment: Dict[str, List[Tuple[int, Any, int]]]) -> None:
        """Re-insert previously evicted versions (reload-on-demand)."""
        for key, versions in segment.items():
            for commit_ts, value, tid in versions:
                self.insert(key, commit_ts, value, tid)

    def min_retained_ts(self) -> Optional[int]:
        """Smallest version timestamp still in memory, across all keys."""
        smallest: Optional[int] = None
        for versions in self._by_key.values():
            if type(versions) is tuple:
                timestamps = versions[0]
                if not timestamps:
                    continue
                ts = timestamps[0]
            else:
                if len(versions) == 0:
                    continue
                ts, _ = versions.min_item()
            if smallest is None or ts < smallest:
                smallest = ts
        return smallest


class WriterIntervals:
    """Per-key interval index over writer lifetimes (``ongoing_ts``)."""

    __slots__ = ("_by_key", "_n_intervals")

    def __init__(self) -> None:
        self._by_key: Dict[str, IntervalIndex] = {}
        self._n_intervals = 0

    def __len__(self) -> int:
        return self._n_intervals

    def add(self, key: str, start_ts: int, commit_ts: int, tid: int) -> None:
        index = self._by_key.get(key)
        if index is None:
            index = self._by_key[key] = IntervalIndex()
        index.add(Interval(start_ts, commit_ts, tid))
        self._n_intervals += 1

    def overlapping(self, key: str, start_ts: int, commit_ts: int, *, exclude_tid: int) -> List[Interval]:
        """All writer intervals of ``key`` overlapping ``[start_ts, commit_ts]``."""
        index = self._by_key.get(key)
        if index is None:
            return []
        hits = index.overlapping(Interval(start_ts, commit_ts))
        return [hit for hit in hits if hit.owner != exclude_tid]

    def evict_below(self, ts: int) -> Dict[str, List[Tuple[int, int, int]]]:
        """Remove intervals ending before ``ts`` (no future overlap possible)."""
        evicted: Dict[str, List[Tuple[int, int, int]]] = {}
        for key, index in self._by_key.items():
            removed = index.pop_ending_before(ts)
            if removed:
                evicted[key] = [(iv.start, iv.end, iv.owner) for iv in removed]
                self._n_intervals -= len(removed)
        return evicted

    def merge(self, segment: Dict[str, List[Tuple[int, int, int]]]) -> None:
        for key, intervals in segment.items():
            for start_ts, commit_ts, tid in intervals:
                self.add(key, start_ts, commit_ts, tid)


class ExtReadIndex:
    """Per-key external reads indexed by snapshot point.

    Each entry is ``snapshot_ts -> [(tid, actual_value), ...]`` — a *list*
    of readers, because distinct transactions may share a snapshot point
    (concurrent readers handed the same database snapshot all carry the
    same ``start_ts``).  Storing a single reader per snapshot would let
    one reader clobber another at insertion, and finalizing one reader
    would evict the others from step-③ re-checking — silently dropped
    re-checks, i.e. missed EXT violations.

    For Aion (SI) the snapshot point is the reader's ``start_ts``; for
    Aion-SER it is the reader's ``commit_ts``.  Entries are removed
    per-reader when that read's EXT verdict is finalized by timeout —
    finalized reads are never re-checked (Algorithm 3, lines 40–41),
    which keeps the index small.
    """

    __slots__ = ("_by_key", "_n_reads")

    def __init__(self) -> None:
        self._by_key: Dict[str, SortedMap] = {}
        self._n_reads = 0

    def __len__(self) -> int:
        return self._n_reads

    def add(self, key: str, snapshot_ts: int, tid: int, actual: Any) -> None:
        index = self._by_key.get(key)
        if index is None:
            index = self._by_key[key] = SortedMap()
        # Single-descent get-or-insert: the reader list for a fresh
        # snapshot point is created and located in one chunk search.
        index.setdefault(snapshot_ts, []).append((tid, actual))
        self._n_reads += 1

    def remove(self, key: str, snapshot_ts: int, tid: int) -> None:
        """Drop ``tid``'s read of ``key`` at ``snapshot_ts``; other readers
        sharing the snapshot point stay indexed.  Idempotent."""
        index = self._by_key.get(key)
        if index is None:
            return
        readers = index.get(snapshot_ts)
        if readers is None:
            return
        for position, (reader_tid, _actual) in enumerate(readers):
            if reader_tid == tid:
                del readers[position]
                self._n_reads -= 1
                break
        else:
            return
        if not readers:
            del index[snapshot_ts]

    def affected_by(
        self,
        key: str,
        version_ts: int,
        next_version_ts: Optional[int],
        *,
        upper_inclusive: bool = False,
    ) -> Iterator[Tuple[int, int, Any]]:
        """Reads whose visible version becomes the one at ``version_ts``.

        Yields ``(snapshot_ts, tid, actual_value)`` for every reader with
        a snapshot point in ``[version_ts, next_version_ts)`` — or
        ``(version_ts, next_version_ts]`` with ``upper_inclusive=True``,
        the bound needed by Aion-SER where a reader at exactly the next
        version's commit timestamp is that version's own writer and sees
        the new version.
        """
        index = self._by_key.get(key)
        if index is None:
            return
        for snapshot_ts, readers in index.irange(
            version_ts, next_version_ts, inclusive=(True, upper_inclusive)
        ):
            for tid, actual in list(readers):
                yield snapshot_ts, tid, actual

    def evict_below(self, ts: int) -> Dict[str, List[Tuple[int, int, Any]]]:
        evicted: Dict[str, List[Tuple[int, int, Any]]] = {}
        for key, index in self._by_key.items():
            removed = index.pop_below(ts, inclusive=True)
            if removed:
                flat = [
                    (sts, tid, actual)
                    for sts, readers in removed
                    for tid, actual in readers
                ]
                evicted[key] = flat
                self._n_reads -= len(flat)
        return evicted

    def merge(self, segment: Dict[str, List[Tuple[int, int, Any]]]) -> None:
        for key, reads in segment.items():
            for snapshot_ts, tid, actual in reads:
                self.add(key, snapshot_ts, tid, actual)
