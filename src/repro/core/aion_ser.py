"""Aion-SER — the online timestamp-based serializability checker (§VI).

Serializability in commit-timestamp order simplifies the online problem:
start timestamps are ignored and NOCONFLICT is not needed, so the checker
keeps only the versioned frontier and the external-read index.  A
transaction's snapshot point is its *commit* timestamp, and an external
read must return the value of the greatest version *strictly below* that
point (the serial predecessor).

Out-of-order arrival still destabilizes EXT: a transaction slotting into
the middle of the serial order changes the predecessor of later readers.
Re-checking mirrors Aion's step ③ with the boundary adjusted: a version
inserted at ``cts`` affects readers with snapshot points in
``(cts, next-version]`` — the upper bound is inclusive because the reader
committing exactly at the next version is that version's own writer and
reads strictly below itself.

Like Cobra, Aion-SER is an online SER checker, but it needs no fence
transactions and keeps checking past violations (Fig 12a/25).
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Any, Callable, DefaultDict, Dict, List, Optional, Tuple

from repro.core.aion import AionConfig, GcReport, _TID_MAX
from repro.core.common import BOTTOM, SessionTracker, simulate_transaction_ops, values_match
from repro.core.ext_status import (
    EV_ACTUAL,
    EV_EXPECTED,
    EV_KEY,
    EV_SNAPSHOT_TS,
    EV_TID,
    ExtStatusTracker,
    ExtVerdict,
    FlipFlopStats,
)
from repro.core.kernel import KernelStats, resolve_columns, resolve_writes
from repro.core.spill import SpillStore
from repro.core.versioned import ExtReadIndex, VersionedFrontier
from repro.core.violations import (
    Axiom,
    CheckResult,
    ExtViolation,
    IntViolation,
    TimestampOrderViolation,
    Violation,
)
from repro.histories.model import OpKind, Transaction
from repro.core.colpack import ColumnarBatch
from repro.util.sizeof import deep_sizeof
from repro.util.sortedmap import SortedMap

__all__ = ["AionSer"]


class AionSer:
    """Online SER checker over key-value histories."""

    def __init__(
        self,
        config: Optional[AionConfig] = None,
        *,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.config = config or AionConfig()
        self._clock = clock if clock is not None else time.monotonic
        self._frontier = VersionedFrontier()
        self._ext_reads = ExtReadIndex()
        self._sessions = SessionTracker(mode="ser")
        self._ext = ExtStatusTracker(
            timeout=self.config.timeout,
            on_violation=self._report_ext_violation,
            on_finalized_batch=self._drop_finalized_reads,
        )
        self._result = CheckResult()
        self._fresh: List[Violation] = []
        self._resident: dict[int, Transaction] = {}
        self._resident_by_cts: SortedMap = SortedMap()
        self._spill: Optional[SpillStore] = None
        self._collected_upto: Optional[int] = None
        self._kernel_stats = KernelStats()
        self.processed = 0

    # ------------------------------------------------------------------

    def receive(self, txn: Transaction) -> None:
        """Process one incoming transaction for online SER checking."""
        now = self._clock()
        self._ext.advance_to(now)
        self._receive_one(txn, now)
        self._ext.arm_timer(txn.tid, now)

    def receive_many(self, txns: List[Transaction]) -> None:
        """Batched ingestion through the staged batch kernel.

        The SER shape of :meth:`repro.core.aion.Aion.receive_many` —
        route, frontier probe, verdict — with the serial-order
        adjustments: the snapshot point is the commit timestamp, the
        visibility floor is the *strict* predecessor, step ③'s re-check
        range is upper-inclusive, there is no writer-interval step, and
        Eq. 1 violations do not reject the transaction.
        """
        # Whole-batch validation up front, as in Aion.receive_many.
        batch = txns if isinstance(txns, ColumnarBatch) else None
        if batch is not None:
            if batch.has_appends:
                raise ValueError(
                    "Aion-SER checks key-value histories online; list "
                    "(append) histories are checked offline by Chronos-SER"
                )
        else:
            if not isinstance(txns, (list, tuple)):
                txns = list(txns)
            for txn in txns:
                for op in txn.ops:
                    if op.kind is OpKind.APPEND:
                        raise ValueError(
                            "Aion-SER checks key-value histories online; list "
                            "(append) histories are checked offline by Chronos-SER"
                        )
        now = self._clock()
        ext = self._ext
        ext.advance_to(now)
        if not txns:
            return
        collected = self._collected_upto
        stats = self._kernel_stats
        perf_counter = time.perf_counter
        timing = stats.timing_enabled()
        track_total = timing or stats.slow_threshold > 0.0
        t_batch0 = perf_counter() if track_total else 0.0
        stats.batches += 1
        n = len(txns)
        stats.txns += n
        if n > stats.max_batch:
            stats.max_batch = n

        # Reload-on-demand hoisted to the batch boundary (see Aion's
        # kernel for the equivalence argument; here the snapshot point —
        # and hence the boundary test — is the commit timestamp).
        if self._spill is not None and len(self._spill) > 0 and collected is not None:
            if batch is not None:
                need_reload = any(cts <= collected for cts in batch.commits)
            else:
                need_reload = any(txn.commit_ts <= collected for txn in txns)
            if need_reload:
                self._reload_below(None)

        # ---- route ----
        t_route0 = perf_counter() if timing else 0.0
        sessions = self._sessions
        r_keys: List[str] = []
        r_ts: List[int] = []
        r_tids: List[int] = []
        r_vals: List[Any] = []
        w_keys: List[str] = []
        w_vals: List[Any] = []
        w_cts: List[int] = []
        w_tids: List[int] = []
        key_streams: DefaultDict[str, List[int]] = defaultdict(list)
        entries: List[Tuple[Transaction, Optional[List[Violation]], int, int]] = []
        if batch is not None:
            # Columnar arrivals: route straight off the flat arrays (see
            # Aion.receive_many for the lazy-Transaction rationale).  SER
            # shape: Eq. 1 reports but does not reject, the snapshot point
            # is the commit timestamp.
            tids_col = batch.tids
            starts_col = batch.starts
            commits_col = batch.commits
            offsets_col = batch.op_offsets
            kinds_col = batch.op_kinds
            keys_col = batch.op_keys
            vals_col = batch.op_values
            transaction_at = batch.transaction_at
            for position in range(n):
                tid = tids_col[position]
                commit_ts = commits_col[position]
                lo = offsets_col[position]
                hi = offsets_col[position + 1]
                stats.route_ops += hi - lo
                pre: Optional[List[Violation]] = None
                if starts_col[position] > commit_ts:
                    pre = [
                        TimestampOrderViolation(
                            axiom=Axiom.TS_ORDER,
                            tid=tid,
                            start_ts=starts_col[position],
                            commit_ts=commit_ts,
                        )
                    ]
                txn = transaction_at(position)
                violation = sessions.observe(txn)
                external, writes, int_mismatches = resolve_columns(
                    kinds_col, keys_col, vals_col, lo, hi
                )
                if violation is not None or int_mismatches is not None:
                    if pre is None:
                        pre = []
                    if violation is not None:
                        pre.append(violation)
                    if int_mismatches is not None:
                        for key, exp, act in int_mismatches:
                            pre.append(
                                IntViolation(
                                    axiom=Axiom.INT, tid=tid, key=key, expected=exp, actual=act
                                )
                            )
                for key, value in external:
                    key_streams[key].append(len(r_keys) << 1)
                    r_keys.append(key)
                    r_ts.append(commit_ts)
                    r_tids.append(tid)
                    r_vals.append(value)
                w_lo = len(w_keys)
                for key, value in writes.items():
                    key_streams[key].append((len(w_keys) << 1) | 1)
                    w_keys.append(key)
                    w_vals.append(value)
                    w_cts.append(commit_ts)
                    w_tids.append(tid)
                entries.append((txn, pre, w_lo, len(w_keys)))
        else:
            for txn in txns:
                tid = txn.tid
                commit_ts = txn.commit_ts
                stats.route_ops += len(txn.ops)
                pre = None
                if txn.start_ts > commit_ts:
                    # SER checking ignores start timestamps: report Eq. 1 but
                    # still process the transaction at its commit point.
                    pre = [
                        TimestampOrderViolation(
                            axiom=Axiom.TS_ORDER,
                            tid=tid,
                            start_ts=txn.start_ts,
                            commit_ts=commit_ts,
                        )
                    ]
                violation = sessions.observe(txn)
                writes, int_mismatches = resolve_writes(txn.ops)
                if violation is not None or int_mismatches is not None:
                    if pre is None:
                        pre = []
                    if violation is not None:
                        pre.append(violation)
                    if int_mismatches is not None:
                        for key, exp, act in int_mismatches:
                            pre.append(
                                IntViolation(
                                    axiom=Axiom.INT, tid=tid, key=key, expected=exp, actual=act
                                )
                            )
                for key, op in txn.external_reads.items():
                    key_streams[key].append(len(r_keys) << 1)
                    r_keys.append(key)
                    r_ts.append(commit_ts)
                    r_tids.append(tid)
                    r_vals.append(op.value)
                w_lo = len(w_keys)
                for key, value in writes.items():
                    key_streams[key].append((len(w_keys) << 1) | 1)
                    w_keys.append(key)
                    w_vals.append(value)
                    w_cts.append(commit_ts)
                    w_tids.append(tid)
                entries.append((txn, pre, w_lo, len(w_keys)))

        n_reads = len(r_keys)
        n_writes = len(w_keys)
        stats.probe_reads += n_reads
        stats.probe_writes += n_writes
        if timing:
            t_probe0 = perf_counter()
            stats.route_seconds += t_probe0 - t_route0
        else:
            t_probe0 = 0.0

        # ---- frontier probe ----
        frontier = self._frontier
        ext_reads = self._ext_reads
        value_before = frontier.value_before
        insert_and_next_ts = frontier.insert_and_next_ts
        read_add = ext_reads.add
        collect_affected = ext_reads.collect_affected
        r_expected: List[Any] = [None] * n_reads
        w_reevals: Dict[int, List[Tuple[int, int, Any]]] = {}
        for key, stream in key_streams.items():
            for code in stream:
                index = code >> 1
                if code & 1:
                    commit_ts = w_cts[index]
                    tid = w_tids[index]
                    nxt_ts = insert_and_next_ts(key, commit_ts, w_vals[index], tid)
                    affected = collect_affected(
                        key,
                        commit_ts,
                        nxt_ts,
                        tid,
                        upper_inclusive=True,
                    )
                    if affected:
                        w_reevals[index] = affected
                else:
                    r_expected[index] = value_before(key, r_ts[index], BOTTOM)
                    read_add(key, r_ts[index], r_tids[index], r_vals[index])
        if timing:
            t_verdict0 = perf_counter()
            stats.probe_seconds += t_verdict0 - t_probe0
        else:
            t_verdict0 = 0.0

        # ---- verdict ----
        if n_reads:
            ext.track_columns(r_tids, r_keys, r_ts, r_vals, r_expected, now, BOTTOM)
            stats.verdict_tracks += n_reads

        report = self._report
        reevaluate = ext.reevaluate
        resident = self._resident
        resident_by_cts = self._resident_by_cts
        n_reevals = 0
        for txn, pre, w_lo, w_hi in entries:
            if pre is not None:
                for violation in pre:
                    report(violation)
            for index in range(w_lo, w_hi):
                affected = w_reevals.get(index)
                if affected is not None:
                    key = w_keys[index]
                    value = w_vals[index]
                    n_reevals += len(affected)
                    for _sts, reader_tid, actual in affected:
                        reevaluate(reader_tid, key, actual == value, value, now)
            tid = txn.tid
            resident[tid] = txn
            resident_by_cts[(txn.commit_ts, tid)] = tid
            self.processed += 1
        stats.verdict_reevals += n_reevals
        if batch is not None:
            ext.arm_timers(batch.tids, now)
        else:
            ext.arm_timers([txn.tid for txn in txns], now)
        if track_total:
            t_end = perf_counter()
            total = t_end - t_batch0
            if timing:
                stats.timed_batches += 1
                stats.verdict_seconds += t_end - t_verdict0
                stats.batch_seconds += total
            if stats.slow_threshold > 0.0 and total >= stats.slow_threshold:
                top = sorted(
                    key_streams.items(), key=lambda item: len(item[1]), reverse=True
                )[:5]
                stats.record_slow(
                    {
                        "checker": "aion-ser",
                        "seconds": round(total, 6),
                        "batch_txns": n,
                        "reads": n_reads,
                        "writes": n_writes,
                        "distinct_keys": len(key_streams),
                        "route_s": round(t_probe0 - t_route0, 6) if timing else None,
                        "probe_s": round(t_verdict0 - t_probe0, 6) if timing else None,
                        "verdict_s": round(t_end - t_verdict0, 6) if timing else None,
                        "top_keys": [[key, len(ops)] for key, ops in top],
                    }
                )

    def _receive_one(self, txn: Transaction, now: float) -> None:
        if txn.start_ts > txn.commit_ts:
            self._report(
                TimestampOrderViolation(
                    axiom=Axiom.TS_ORDER,
                    tid=txn.tid,
                    start_ts=txn.start_ts,
                    commit_ts=txn.commit_ts,
                )
            )
            # SER checking ignores start timestamps, so the transaction is
            # still simulated at its commit point.

        for op in txn.ops:
            if op.kind is OpKind.APPEND:
                raise ValueError(
                    "Aion-SER checks key-value histories online; list "
                    "(append) histories are checked offline by Chronos-SER"
                )

        # Restore all spilled state: the re-check boundary (next version
        # of each written key) may be spilled in a higher segment.
        if self._collected_upto is not None and txn.commit_ts <= self._collected_upto:
            self._reload_below(None)

        violation = self._sessions.observe(txn)
        if violation is not None:
            self._report(violation)

        tid = txn.tid
        snapshot_ts = txn.commit_ts

        writes = simulate_transaction_ops(
            txn,
            lambda key: self._predecessor_value(key, snapshot_ts),
            lambda key, exp, act: None,  # EXT handled with tracking below
            lambda key, exp, act: self._report(
                IntViolation(axiom=Axiom.INT, tid=tid, key=key, expected=exp, actual=act)
            ),
        )
        for key, op in txn.external_reads.items():
            expected = self._predecessor_value(key, snapshot_ts)
            self._ext.track(
                tid, key, snapshot_ts, op.value, ok=values_match(expected, op.value),
                expected=expected, now=now,
            )
            self._ext_reads.add(key, snapshot_ts, tid, op.value)

        for key, value in writes.items():
            nxt = self._frontier.insert_and_next(key, txn.commit_ts, value, tid)
            next_ts = nxt[0] if nxt is not None else None
            for _, reader_tid, actual in self._ext_reads.affected_by(
                key, txn.commit_ts, next_ts, upper_inclusive=True
            ):
                if reader_tid == tid:
                    continue  # a writer never observes its own version
                self._ext.reevaluate(reader_tid, key, actual == value, value, now)

        self._resident[tid] = txn
        self._resident_by_cts[(txn.commit_ts, tid)] = tid
        self.processed += 1

    # ------------------------------------------------------------------

    def poll(self) -> List[Violation]:
        """Drain violations reported since the previous poll."""
        self._ext.advance_to(self._clock())
        fresh, self._fresh = self._fresh, []
        return fresh

    def finalize(self) -> CheckResult:
        """Force-finalize all pending EXT verdicts and return the result."""
        self._ext.flush()
        return self._result

    @property
    def result(self) -> CheckResult:
        return self._result

    @property
    def flipflop_stats(self) -> FlipFlopStats:
        return self._ext.stats

    @property
    def kernel_stats(self) -> KernelStats:
        """Per-stage operation counters of the staged batch kernel."""
        return self._kernel_stats

    @property
    def resident_txn_count(self) -> int:
        return len(self._resident)

    @property
    def spill_store(self) -> Optional[SpillStore]:
        return self._spill

    def estimated_bytes(self) -> int:
        """Deep-size estimate of the checker's live structures."""
        return deep_sizeof((self._frontier, self._ext_reads, self._resident, self._ext))

    def gc_debt(self) -> int:
        """Entries staged for the next collection cycle (SER keeps no
        writer intervals, so only the frontier contributes)."""
        return self._frontier.staged_gc_entries()

    def scan_step_totals(self) -> Tuple[int, int]:
        """SER keeps no writer-interval index; no scan counters accrue."""
        return 0, 0

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def gc_safe_ts(self) -> Optional[int]:
        """Default collection watermark: everything currently resident.

        See :meth:`repro.core.aion.Aion.gc_safe_ts` — the same
        keep-newest / reload-on-demand argument applies without the
        interval index."""
        if not self._resident_by_cts:
            return None
        (max_cts, _), _ = self._resident_by_cts.max_item()
        return max_cts

    def suggest_gc_ts(self, keep_recent: int = 2000) -> Optional[int]:
        """Watermark sparing the newest residents (see Aion's variant)."""
        excess = len(self._resident_by_cts) - keep_recent
        if excess <= 0:
            return None
        for index, ((cts, _tid), _) in enumerate(self._resident_by_cts.items()):
            if index == excess - 1:
                return cts
        return None

    def collect_below(self, ts: Optional[int] = None) -> GcReport:
        """Transfer structures with timestamps <= ``ts`` to disk.

        Report contract as for :meth:`repro.core.aion.Aion.collect_below`:
        an empty checker yields a zero-count report whose ``effective_ts``
        echoes the requested ``ts`` (``-1`` only when no ``ts`` was given).
        """
        t0 = time.perf_counter()
        safe = self.gc_safe_ts()
        if safe is None:
            requested = ts if ts is not None else -1
            return GcReport(requested, requested, 0, 0, 0, time.perf_counter() - t0)
        effective = safe if ts is None else min(ts, safe)

        frontier_segment = self._frontier.evict_below(effective)
        evicted_txns: List[Transaction] = []
        for (cts, tid), _ in self._resident_by_cts.pop_below((effective, _TID_MAX)):
            txn = self._resident.pop(tid, None)
            if txn is not None:
                evicted_txns.append(txn)

        n_versions = sum(len(v) for v in frontier_segment.values())
        if frontier_segment or evicted_txns:
            if self._spill is None:
                self._spill = SpillStore(self.config.spill_dir)
            from repro.histories.serialization import txn_to_dict

            content_min = effective
            for versions in frontier_segment.values():
                for cts, _value, _tid in versions:
                    if cts < content_min:
                        content_min = cts
            for txn in evicted_txns:
                if txn.start_ts < content_min:
                    content_min = txn.start_ts
            self._spill.spill(
                content_min,
                effective,
                {
                    "frontier": {k: v for k, v in frontier_segment.items()},
                    "txns": [txn_to_dict(t) for t in evicted_txns],
                },
                n_items=n_versions + len(evicted_txns),
            )
        if self._collected_upto is None or effective > self._collected_upto:
            self._collected_upto = effective
        return GcReport(
            requested_ts=ts if ts is not None else safe,
            effective_ts=effective,
            evicted_versions=n_versions,
            evicted_intervals=0,
            evicted_txns=len(evicted_txns),
            seconds=time.perf_counter() - t0,
        )

    def close(self) -> None:
        if self._spill is not None:
            self._spill.close()
            self._spill = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _predecessor_value(self, key: str, commit_ts: int) -> Any:
        version = self._frontier.latest_before(key, commit_ts)
        # A strict floor below the collected boundary may be stale or
        # absent while newer spilled versions exist; reload in that case.
        if (
            self._spill is not None
            and self._collected_upto is not None
            and commit_ts <= self._collected_upto
        ):
            spilled_min = self._spill.min_spilled_ts()
            if spilled_min is not None and spilled_min < commit_ts:
                self._reload_below(commit_ts)
                version = self._frontier.latest_before(key, commit_ts)
        return BOTTOM if version is None else version[1]

    def _reload_below(self, ts: Optional[int]) -> None:
        """Reload spilled segments overlapping [0, ts] (None = all)."""
        if self._spill is None:
            return
        for payload in self._spill.reload_overlapping(0, ts):
            self._frontier.merge(
                {k: [tuple(v) for v in versions] for k, versions in payload["frontier"].items()}
            )

    def _report(self, violation: Violation) -> None:
        self._result.add(violation)
        self._fresh.append(violation)

    def _report_ext_violation(self, verdict: ExtVerdict) -> None:
        self._report(
            ExtViolation(
                axiom=Axiom.EXT,
                tid=verdict[EV_TID],
                key=verdict[EV_KEY],
                expected=verdict[EV_EXPECTED],
                actual=verdict[EV_ACTUAL],
            )
        )

    def _drop_finalized_reads(self, verdicts: List[ExtVerdict]) -> None:
        # Same 1:1 invariant as Aion: a finalized batch as large as the
        # index covers it entirely (end-of-stream flush shape).
        ext_reads = self._ext_reads
        if len(verdicts) == len(ext_reads):
            ext_reads.clear()
            return
        ext_reads.remove_batch(
            [(v[EV_KEY], v[EV_SNAPSHOT_TS], v[EV_TID]) for v in verdicts]
        )
