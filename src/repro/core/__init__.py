"""The paper's primary contribution: timestamp-based isolation checkers.

- :mod:`repro.core.chronos` — **Chronos**, the offline SI checker
  (Algorithm 2): sort all start/commit timestamps, simulate execution in
  timestamp order, check SESSION / INT / EXT / NOCONFLICT on the fly.
- :mod:`repro.core.chronos_ser` — **Chronos-SER**: the same simulation in
  commit-timestamp order for serializability (no NOCONFLICT, start
  timestamps ignored).
- :mod:`repro.core.aion` — **Aion**, the online SI checker (Algorithm 3):
  incremental checking under out-of-order arrival with timestamp-versioned
  structures, EXT re-checking with timeouts, and conservative GC.
- :mod:`repro.core.aion_ser` — **Aion-SER**, the online SER checker.
- :mod:`repro.core.sharded` — **ShardedAion**, the sharded, batch-oriented
  ingestion frontend with Aion-identical verdicts.
- :mod:`repro.core.reference` — a slow replay oracle used by the test
  suite to validate Aion differentially against Chronos.

All checkers consume :class:`repro.histories.History` /
:class:`repro.histories.Transaction` values and report
:class:`repro.core.violations.Violation` records; they never terminate at
the first violation (§III-B2).
"""

from repro.core.aion import Aion, AionConfig
from repro.core.aion_ser import AionSer
from repro.core.chronos import Chronos, ChronosReport, GcMode
from repro.core.chronos_ser import ChronosSer
from repro.core.reference import ReferenceOnlineChecker
from repro.core.sharded import ShardedAion, shard_of
from repro.core.violations import (
    Axiom,
    CheckResult,
    ConflictViolation,
    ExtViolation,
    IntViolation,
    SessionViolation,
    TimestampOrderViolation,
    Violation,
)

__all__ = [
    "Aion",
    "AionConfig",
    "AionSer",
    "Axiom",
    "CheckResult",
    "Chronos",
    "ChronosReport",
    "ChronosSer",
    "ConflictViolation",
    "ExtViolation",
    "GcMode",
    "IntViolation",
    "ReferenceOnlineChecker",
    "SessionViolation",
    "ShardedAion",
    "TimestampOrderViolation",
    "Violation",
    "shard_of",
]
