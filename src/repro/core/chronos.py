"""Chronos — the offline timestamp-based SI checker (Algorithm 2).

Chronos simulates the execution of a database assuming the start and
commit events of transactions happen in timestamp order (the arbitration
order of Definition 5).  Walking the ``2N`` events in one pass it checks:

- **SESSION** at each start event — the transaction carries the next
  sequence number of its session and starts after its predecessor commits;
- **INT / EXT** at each start event — every read is replayed against the
  transaction's own partial state (INT) or the committed ``frontier``
  (EXT), which at that moment holds exactly the snapshot of Definition 6;
- **Eq. 1** and **NOCONFLICT** at each commit event — removing the
  transaction from the per-key ``ongoing`` writer sets and reporting any
  writers still in flight.

Complexity is ``O(N log N + M)``: one sort of the timestamps plus
amortized constant work per operation (§III-B3).  All violations in a
history are reported; the checker never stops at the first one.

Garbage collection (§V-C): per-transaction state (``int_val`` /
``ext_val``) is always dropped at commit, as in the pseudocode.  The
*periodic* recycling of processed transactions studied in Fig 6/9/10 is
controlled by ``gc_every`` and ``gc_mode``; ``GcMode.FULL`` additionally
invokes the host garbage collector, reproducing the paper's
cost-of-frequent-GC effect with real (not simulated) work.
"""

from __future__ import annotations

import enum
import gc as _host_gc
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from repro.core.common import BOTTOM, SessionTracker, simulate_transaction_ops
from repro.core.violations import (
    Axiom,
    CheckResult,
    ConflictViolation,
    ExtViolation,
    IntViolation,
    TimestampOrderViolation,
)
from repro.histories.model import History, Transaction

__all__ = ["Chronos", "ChronosReport", "GcMode"]


class GcMode(enum.Enum):
    """How the periodic transaction-recycling GC behaves.

    - ``NONE`` — never recycle (``gc-∞`` in Fig 6); per-txn cleanup of
      ``int_val``/``ext_val`` still happens at every commit.
    - ``LIGHT`` — drop references to processed transactions every
      ``gc_every`` commits; cheap, frees memory if the caller consumed
      the history.
    - ``FULL`` — as LIGHT, plus a full host garbage collection each
      cycle, whose cost grows with live-heap size — the effect behind
      the gc-10k ≫ gc-50k runtimes of Fig 6a.
    """

    NONE = "none"
    LIGHT = "light"
    FULL = "full"


@dataclass
class ChronosReport:
    """Stage timing and counters for one check (Fig 8/9 decomposition)."""

    sort_seconds: float = 0.0
    check_seconds: float = 0.0
    gc_seconds: float = 0.0
    gc_runs: int = 0
    n_transactions: int = 0
    n_operations: int = 0
    #: Peak number of transactions retained in the working set between GCs.
    peak_retained: int = 0
    #: Memory samples as ``(processed_txns, estimated_bytes)`` pairs, only
    #: populated when a sampler is installed (Fig 10).
    memory_samples: List[tuple] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.sort_seconds + self.check_seconds + self.gc_seconds


class Chronos:
    """Offline SI checker over key-value and list histories.

    Parameters
    ----------
    gc_every:
        Recycle processed transactions every this many commits
        (``gc-10k`` / ``gc-20k`` / ... in the figures).  ``None`` means
        never (``gc-∞``).
    gc_mode:
        See :class:`GcMode`.  Ignored when ``gc_every`` is None.
    memory_sampler:
        Optional callable invoked as ``sampler(checker)`` after every
        ``sample_every`` commits; its return value is recorded in the
        report together with the processed-transaction count.
    """

    def __init__(
        self,
        *,
        gc_every: Optional[int] = None,
        gc_mode: GcMode = GcMode.LIGHT,
        memory_sampler: Optional[Callable[["Chronos"], int]] = None,
        sample_every: int = 1000,
    ) -> None:
        if gc_every is not None and gc_every <= 0:
            raise ValueError("gc_every must be positive or None")
        self._gc_every = gc_every
        self._gc_mode = gc_mode if gc_every is not None else GcMode.NONE
        self._memory_sampler = memory_sampler
        self._sample_every = max(1, sample_every)
        self.report = ChronosReport()
        # Live checker state, exposed for the memory sampler.
        self.frontier: Dict[str, object] = {}
        self.ongoing: Dict[str, Set[int]] = {}
        self.int_ext_state: Dict[int, Dict[str, object]] = {}
        self.retained: List[Transaction] = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def check(self, history: History) -> CheckResult:
        """Check an entire history for SI; returns all violations found."""
        return self.check_transactions(history.transactions)

    def check_transactions(
        self, transactions: Sequence[Transaction], *, consume: bool = False
    ) -> CheckResult:
        """Check a list of transactions.

        With ``consume=True`` the checker drops its references to
        processed transactions as it goes (and, under a periodic GC mode,
        in batches), so that a caller that also relinquishes its own
        references observes the diminishing-memory behaviour of §III-B3.
        """
        result = CheckResult()
        report = self.report = ChronosReport(
            n_transactions=len(transactions),
            n_operations=sum(len(t.ops) for t in transactions),
        )

        # --- Eq. 1 pre-scan: malformed transactions are reported and
        # excluded from the simulation so their events cannot poison the
        # ongoing/frontier state (the paper reports the error inline at
        # the commit event; the verdict set is identical).
        valid: List[Transaction] = []
        for txn in transactions:
            if txn.start_ts > txn.commit_ts:
                result.add(
                    TimestampOrderViolation(
                        axiom=Axiom.TS_ORDER,
                        tid=txn.tid,
                        start_ts=txn.start_ts,
                        commit_ts=txn.commit_ts,
                    )
                )
            else:
                valid.append(txn)

        # --- Sorting stage (line 2:2).
        t0 = time.perf_counter()
        events: List[Optional[tuple]] = []
        for txn in valid:
            events.append((txn.start_ts, 0, txn))
            events.append((txn.commit_ts, 1, txn))
        events.sort(key=_event_key)
        report.sort_seconds = time.perf_counter() - t0

        # --- Checking stage (lines 2:3 – 2:33).
        t0 = time.perf_counter()
        frontier = self.frontier
        ongoing = self.ongoing
        state = self.int_ext_state
        sessions = SessionTracker(mode="si")
        resolved_writes: Dict[int, Dict[str, object]] = {}
        start_index: Dict[int, int] = {}
        gc_pending = 0
        processed = 0

        def snapshot_of(key: str) -> object:
            return frontier.get(key, BOTTOM)

        for index, event in enumerate(events):
            ts, phase, txn = event  # type: ignore[misc]
            tid = txn.tid
            if phase == 0:
                # ---- start event: SESSION, INT, EXT; register writes.
                violation = sessions.observe(txn)
                if violation is not None:
                    result.add(violation)

                ext_reports: List[ExtViolation] = []
                int_reports: List[IntViolation] = []
                writes = simulate_transaction_ops(
                    txn,
                    snapshot_of,
                    lambda key, exp, act: ext_reports.append(
                        ExtViolation(axiom=Axiom.EXT, tid=tid, key=key, expected=exp, actual=act)
                    ),
                    lambda key, exp, act: int_reports.append(
                        IntViolation(axiom=Axiom.INT, tid=tid, key=key, expected=exp, actual=act)
                    ),
                )
                for violation_record in ext_reports:
                    result.add(violation_record)
                for violation_record in int_reports:
                    result.add(violation_record)
                resolved_writes[tid] = writes
                for key in writes:
                    ongoing.setdefault(key, set()).add(tid)
                state[tid] = writes  # exposed for memory sampling
                if consume:
                    start_index[tid] = index
            else:
                # ---- commit event: NOCONFLICT; advance frontier; GC.
                writes = resolved_writes.pop(tid, {})
                for key, value in writes.items():
                    writers = ongoing.get(key)
                    if writers is not None:
                        writers.discard(tid)
                        if writers:
                            result.add(
                                ConflictViolation(
                                    axiom=Axiom.NOCONFLICT,
                                    tid=tid,
                                    key=key,
                                    conflicting_tids=frozenset(writers),
                                )
                            )
                        else:
                            del ongoing[key]
                    frontier[key] = value
                state.pop(tid, None)  # gc int_val / ext_val (lines 31–32)
                processed += 1
                self.retained.append(txn)
                if consume:
                    events[index] = None
                    started_at = start_index.pop(tid, None)
                    if started_at is not None:
                        events[started_at] = None
                if len(self.retained) > report.peak_retained:
                    report.peak_retained = len(self.retained)

                if self._gc_every is not None:
                    gc_pending += 1
                    if gc_pending >= self._gc_every:
                        gc_pending = 0
                        t_gc = time.perf_counter()
                        self._run_gc()
                        report.gc_seconds += time.perf_counter() - t_gc
                        report.gc_runs += 1

                if self._memory_sampler is not None and processed % self._sample_every == 0:
                    report.memory_samples.append((processed, self._memory_sampler(self)))

        report.check_seconds = time.perf_counter() - t0 - report.gc_seconds
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _run_gc(self) -> None:
        """Recycle processed transactions (line 2:33)."""
        self.retained.clear()
        if self._gc_mode is GcMode.FULL:
            _host_gc.collect()


def _event_key(event: Optional[tuple]) -> tuple:
    ts, phase, txn = event  # type: ignore[misc]
    return (ts, phase, txn.tid)
