"""Aion — the online timestamp-based SI checker (Algorithm 3).

Aion receives committed transactions one at a time, in an order that
respects each session but is otherwise arbitrary (asynchrony may deliver
transactions far from timestamp order), and maintains the same verdicts
Chronos would produce on the full history.  Per arrival it performs the
three steps of Algorithm 3:

① check SESSION / INT / EXT for the new transaction ``T``, evaluating
  external reads against the *versioned* frontier at ``T.start_ts``
  (:class:`~repro.core.versioned.VersionedFrontier`);

② re-check NOCONFLICT for transactions overlapping ``T``: an interval
  overlap query on the per-key writer index
  (:class:`~repro.core.versioned.WriterIntervals`), reporting each
  conflicting pair once, attributed to the transaction with the smaller
  commit timestamp;

③ re-check EXT for transactions whose snapshot now sees ``T``'s writes:
  exactly the external reads of keys in ``T.wkey`` with snapshot points in
  ``[T.commit_ts, next-overwrite)`` — the paper's three optimizations
  (only keys written by ``T``, not yet overwritten, stop at overwrite)
  fall out of the per-key read index
  (:class:`~repro.core.versioned.ExtReadIndex`).

EXT verdicts are tentative (they can flip as delayed transactions arrive)
and are only *reported* when the transaction's timer expires
(:class:`~repro.core.ext_status.ExtStatusTracker`); INT, SESSION and
NOCONFLICT verdicts are stable and reported immediately.

Garbage collection (:meth:`Aion.collect_below`) transfers frontier
versions, writer intervals, and resident transactions below a GC-safe
timestamp to a disk :class:`~repro.core.spill.SpillStore`; the checker
transparently reloads overlapping segments when a severely delayed
transaction forces a query below the in-memory boundary.

Per-arrival complexity is ``O(log N + M)`` plus the size of the affected
re-check sets (§III-C4).

Scope note: list (append) operations are supported offline by Chronos;
online re-resolution of appends under asynchrony cascades and is left as
the paper leaves it (the online evaluation, §VI, uses key-value
histories).  Aion raises :class:`ValueError` when handed an append.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, DefaultDict, Dict, List, Optional, Tuple

from repro.core.common import BOTTOM, SessionTracker, simulate_transaction_ops, values_match
from repro.core.ext_status import (
    EV_ACTUAL,
    EV_EXPECTED,
    EV_KEY,
    EV_SNAPSHOT_TS,
    EV_TID,
    ExtStatusTracker,
    ExtVerdict,
    FlipFlopStats,
)
from repro.core.kernel import KernelStats, resolve_columns, resolve_writes
from repro.core.spill import SpillStore
from repro.core.versioned import (
    ExtReadIndex,
    VersionedFrontier,
    WriterIntervals,
    probe_columns,
)
from repro.core.violations import (
    Axiom,
    CheckResult,
    ConflictViolation,
    ExtViolation,
    IntViolation,
    TimestampOrderViolation,
    Violation,
)
from repro.histories.model import OpKind, Transaction
from repro.core.colpack import ColumnarBatch
from repro.util.sizeof import deep_sizeof
from repro.util.sortedmap import SortedMap

__all__ = ["Aion", "AionConfig", "GcReport"]


@dataclass
class AionConfig:
    """Tunables of the online checker.

    ``timeout`` is the EXT re-checking deadline per transaction (the paper
    conservatively uses 5 seconds, §IV-A).  ``spill_dir`` fixes where GC
    segments are written; None uses a temporary directory.

    ``optimized_recheck`` enables the paper's three step-③ optimizations
    (re-check only keys written by the arrival, only reads whose visible
    version actually changed, stop at the next overwrite).  Disabling it
    re-evaluates *every* pending external read of each written key
    against a fresh frontier query — still correct, but the ablation the
    throughput benchmarks quantify.
    """

    timeout: float = 5.0
    spill_dir: Optional[Path] = None
    optimized_recheck: bool = True


@dataclass
class GcReport:
    """Outcome of one garbage collection cycle."""

    requested_ts: int
    effective_ts: int
    evicted_versions: int
    evicted_intervals: int
    evicted_txns: int
    seconds: float


class Aion:
    """Online SI checker over key-value histories.

    Parameters
    ----------
    config:
        See :class:`AionConfig`.
    clock:
        A zero-argument callable returning the current time in seconds.
        Defaults to :func:`time.monotonic`; the online experiment runner
        injects a virtual clock so timeout behaviour is deterministic.
    """

    def __init__(
        self,
        config: Optional[AionConfig] = None,
        *,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.config = config or AionConfig()
        self._clock = clock if clock is not None else time.monotonic
        self._frontier = VersionedFrontier()
        self._writers = WriterIntervals()
        self._ext_reads = ExtReadIndex()
        self._sessions = SessionTracker(mode="si")
        self._ext = ExtStatusTracker(
            timeout=self.config.timeout,
            on_violation=self._report_ext_violation,
            on_finalized_batch=self._drop_finalized_reads,
        )
        self._result = CheckResult()
        self._fresh: List[Violation] = []
        self._resident: Dict[int, Transaction] = {}
        self._resident_by_cts: SortedMap = SortedMap()
        #: Commit-order entries not yet merged into ``_resident_by_cts``.
        #: Only the GC paths read the commit-ordered index, so the hot
        #: path appends ``(commit_ts, tid)`` here and the ordered merge
        #: is deferred to :meth:`_resident_map` — amortized off ingestion
        #: without changing what any GC cycle observes.
        self._resident_cts_pending: List[Tuple[int, int]] = []
        self._spill: Optional[SpillStore] = None
        self._collected_upto: Optional[int] = None
        self._kernel_stats = KernelStats()
        self.processed = 0

    # ------------------------------------------------------------------
    # Receiving transactions
    # ------------------------------------------------------------------

    def receive(self, txn: Transaction) -> None:
        """Process one incoming transaction (ONLINE_CHECK_SI, Algorithm 3).

        The single-arrival twin of :meth:`receive_many`: identical
        semantics (the differential suite asserts it), but paying the
        clock read, timer-queue advancement, deadline arming, and
        structure lookups per call — a batch can amortize those, one
        arrival cannot.
        """
        now = self._clock()
        self._ext.advance_to(now)

        if txn.start_ts > txn.commit_ts:  # Eq. 1 (lines 3:4–3:5)
            self._report(
                TimestampOrderViolation(
                    axiom=Axiom.TS_ORDER,
                    tid=txn.tid,
                    start_ts=txn.start_ts,
                    commit_ts=txn.commit_ts,
                )
            )
            return

        for op in txn.ops:
            if op.kind is OpKind.APPEND:
                raise ValueError(
                    "Aion checks key-value histories online; list (append) "
                    "histories are checked offline by Chronos"
                )

        # Severely delayed transaction below the GC boundary: restore ALL
        # spilled state (reload-on-demand, ▧); see receive_many.
        if self._collected_upto is not None and txn.start_ts <= self._collected_upto:
            self._reload_below(None)

        violation = self._sessions.observe(txn)  # lines 3:7–3:10
        if violation is not None:
            self._report(violation)

        tid = txn.tid

        # ---- step ①: INT immediately, EXT tentatively (lines 3:11–3:25).
        writes = simulate_transaction_ops(
            txn,
            lambda key: self._visible_value(key, txn.start_ts),
            lambda key, exp, act: None,  # EXT handled below with tracking
            lambda key, exp, act: self._report(
                IntViolation(axiom=Axiom.INT, tid=tid, key=key, expected=exp, actual=act)
            ),
        )
        for key, op in txn.external_reads.items():
            expected = self._visible_value(key, txn.start_ts)
            self._ext.track(
                tid, key, txn.start_ts, op.value, ok=values_match(expected, op.value),
                expected=expected, now=now,
            )
            self._ext_reads.add(key, txn.start_ts, tid, op.value)

        # ---- step ②: NOCONFLICT re-check via interval overlap.
        for key in writes:
            for hit in self._writers.overlapping(
                key, txn.start_ts, txn.commit_ts, exclude_tid=tid
            ):
                self._report_conflict(txn, hit.owner, hit.end, key)
            self._writers.add(key, txn.start_ts, txn.commit_ts, tid)

        # ---- step ③: EXT re-check for snapshots that now see T's writes.
        for key, value in writes.items():
            nxt = self._frontier.insert_and_next(key, txn.commit_ts, value, tid)
            next_ts = nxt[0] if nxt is not None else None
            if self.config.optimized_recheck:
                for _, reader_tid, actual in self._ext_reads.affected_by(
                    key, txn.commit_ts, next_ts
                ):
                    if reader_tid == tid:
                        continue
                    self._ext.reevaluate(reader_tid, key, actual == value, value, now)
            else:
                for snapshot_ts, reader_tid, actual in self._ext_reads.affected_by(
                    key, 0, None
                ):
                    if reader_tid == tid:
                        continue
                    expected = self._visible_value(key, snapshot_ts)
                    self._ext.reevaluate(
                        reader_tid, key, values_match(expected, actual), expected, now
                    )

        self._resident[tid] = txn
        self._resident_cts_pending.append((txn.commit_ts, tid))
        self.processed += 1
        self._ext.arm_timer(tid, now)  # line 3:3

    def receive_many(self, txns) -> None:
        """Process a batch of arrivals through the staged batch kernel.

        Semantically identical to calling :meth:`receive` per transaction
        with a clock frozen for the duration of the batch (the
        differential suite asserts the equivalence), but structured as
        three flat passes over parallel op arrays instead of a per-
        transaction walk of Algorithm 3:

        **route** — decode the batch into columnar arrays (read keys /
        snapshot points / readers / observed values; write keys / values /
        intervals) plus one op stream per key, running the order-stable
        per-transaction work (Eq. 1, session tracking, the transaction-
        local INT simulation) as it goes;

        **frontier probe** — walk each key's op stream in arrival order
        against the versioned structures: visibility floors for external
        reads, fused overlap-query-plus-insert on the writer intervals,
        fused insert-plus-successor on the frontier, and the affected-
        reader sweep — per-key grouping amortizes the index descents a
        per-op walk pays per operation;

        **verdict** — track all EXT verdicts in one bulk call, then walk
        the batch in arrival order emitting violations and applying
        re-evaluations, so reported order matches the per-op path.

        Correctness rests on the same argument as ShardedAion's command
        streams: per-key operations preserve arrival order within each
        stream (a transaction's reads precede its writes, matching steps
        ① and ③), operations on distinct keys touch disjoint state and
        commute, and global effects are applied in arrival order by the
        verdict pass.  Tracking a batch's reads before applying its
        re-evaluations is safe because a pair's re-evaluations only ever
        originate from writes later in its key's stream than the pair's
        own read.
        """
        # Validate the whole batch before mutating any state: a rejected
        # append mid-loop would otherwise leave earlier batch members
        # tracked but timer-less.
        batch = txns if isinstance(txns, ColumnarBatch) else None
        if batch is not None:
            if batch.has_appends:
                raise ValueError(
                    "Aion checks key-value histories online; list (append) "
                    "histories are checked offline by Chronos"
                )
        else:
            if not isinstance(txns, (list, tuple)):
                txns = list(txns)
            for txn in txns:
                for op in txn.ops:
                    if op.kind is OpKind.APPEND:
                        raise ValueError(
                            "Aion checks key-value histories online; list (append) "
                            "histories are checked offline by Chronos"
                        )
        now = self._clock()
        ext = self._ext
        ext.advance_to(now)
        if not txns:
            return
        optimized = self.config.optimized_recheck
        collected = self._collected_upto
        stats = self._kernel_stats
        perf_counter = time.perf_counter
        timing = stats.timing_enabled()
        track_total = timing or stats.slow_threshold > 0.0
        t_batch0 = perf_counter() if track_total else 0.0
        stats.batches += 1
        n = len(txns)
        stats.txns += n
        if n > stats.max_batch:
            stats.max_batch = n

        # Reload-on-demand (▧), hoisted to the batch boundary: a severely
        # delayed transaction below the GC boundary forces ALL spilled
        # state back (the step-③ re-check range is bounded by *next*
        # versions, which may sit in higher segments), and the ablation
        # re-checks arbitrarily old snapshot points on every write.
        # Reloading before the batch instead of at the transaction's
        # sequence point is verdict-equivalent: reloaded data is strictly
        # older than each key's retained newest-evictable version, so no
        # floor/successor query issued by the preceding above-boundary
        # transactions can observe it.
        if self._spill is not None and len(self._spill) > 0:
            need_reload = False
            if batch is not None:
                starts = batch.starts
                commits = batch.commits
                offsets = batch.op_offsets
                kinds = batch.op_kinds
                if collected is not None:
                    for position in range(n):
                        start_ts = starts[position]
                        if start_ts <= collected and start_ts <= commits[position]:
                            need_reload = True
                            break
                if not need_reload and not optimized:
                    for position in range(n):
                        if starts[position] > commits[position]:
                            continue
                        if 1 in kinds[offsets[position] : offsets[position + 1]]:
                            need_reload = True
                            break
            else:
                if collected is not None:
                    for txn in txns:
                        if txn.start_ts <= collected and txn.start_ts <= txn.commit_ts:
                            need_reload = True
                            break
                if not need_reload and not optimized:
                    for txn in txns:
                        if txn.start_ts > txn.commit_ts:
                            continue
                        for op in txn.ops:
                            if op.kind is OpKind.WRITE:
                                need_reload = True
                                break
                        if need_reload:
                            break
            if need_reload:
                self._reload_below(None)

        # ---- route: decode into flat parallel arrays + per-key streams.
        t_route0 = perf_counter() if timing else 0.0
        sessions = self._sessions
        r_keys: List[str] = []
        r_ts: List[int] = []
        r_tids: List[int] = []
        r_vals: List[Any] = []
        w_keys: List[str] = []
        w_vals: List[Any] = []
        w_starts: List[int] = []
        w_cts: List[int] = []
        w_tids: List[int] = []
        #: Per key, arrival-ordered op stream: ``index << 1`` encodes the
        #: read at ``index``; ``index << 1 | 1`` the write at ``index``.
        key_streams: DefaultDict[str, List[int]] = defaultdict(list)
        r_keys_append = r_keys.append
        r_ts_append = r_ts.append
        r_tids_append = r_tids.append
        r_vals_append = r_vals.append
        w_keys_append = w_keys.append
        w_vals_append = w_vals.append
        w_starts_append = w_starts.append
        w_cts_append = w_cts.append
        w_tids_append = w_tids.append
        # Per txn: (txn, pre-violations, w_lo, w_hi) — or None for Eq. 1
        # rejects, which own no probe work (their pre-violation is kept in
        # batch position so report order matches the per-op path).
        entries: List[Tuple[Transaction, Optional[List[Violation]], int, int]] = []
        rejected: Dict[int, Violation] = {}
        if batch is not None:
            # Columnar arrivals (wire frames, packed WALs): route straight
            # off the batch's flat arrays — no Operation objects, no
            # per-transaction derived views.  ``resolve_columns`` fuses the
            # external-read detection into the INT/write simulation walk,
            # and the Transaction objects entering the verdict pass are
            # lazy (``from_parts``): their op tuples materialize only if
            # something off the hot path (GC spill, repr) asks.
            tids_col = batch.tids
            starts_col = batch.starts
            commits_col = batch.commits
            offsets_col = batch.op_offsets
            kinds_col = batch.op_kinds
            keys_col = batch.op_keys
            vals_col = batch.op_values
            transaction_at = batch.transaction_at
            for position in range(n):
                tid = tids_col[position]
                start_ts = starts_col[position]
                commit_ts = commits_col[position]
                lo = offsets_col[position]
                hi = offsets_col[position + 1]
                stats.route_ops += hi - lo
                if start_ts > commit_ts:  # Eq. 1 (lines 3:4–3:5)
                    rejected[position] = TimestampOrderViolation(
                        axiom=Axiom.TS_ORDER,
                        tid=tid,
                        start_ts=start_ts,
                        commit_ts=commit_ts,
                    )
                    continue
                txn = transaction_at(position)
                violation = sessions.observe(txn)  # lines 3:7–3:10
                external, writes, int_mismatches = resolve_columns(
                    kinds_col, keys_col, vals_col, lo, hi
                )
                pre: Optional[List[Violation]] = None
                if violation is not None or int_mismatches is not None:
                    pre = []
                    if violation is not None:
                        pre.append(violation)
                    if int_mismatches is not None:
                        for key, exp, act in int_mismatches:
                            pre.append(
                                IntViolation(
                                    axiom=Axiom.INT, tid=tid, key=key, expected=exp, actual=act
                                )
                            )
                for key, value in external:
                    key_streams[key].append(len(r_keys) << 1)
                    r_keys_append(key)
                    r_ts_append(start_ts)
                    r_tids_append(tid)
                    r_vals_append(value)
                w_lo = len(w_keys)
                for key, value in writes.items():
                    key_streams[key].append((len(w_keys) << 1) | 1)
                    w_keys_append(key)
                    w_vals_append(value)
                    w_starts_append(start_ts)
                    w_cts_append(commit_ts)
                    w_tids_append(tid)
                entries.append((txn, pre, w_lo, len(w_keys)))
        else:
            for position, txn in enumerate(txns):
                tid = txn.tid
                start_ts = txn.start_ts
                commit_ts = txn.commit_ts
                stats.route_ops += len(txn.ops)
                if start_ts > commit_ts:  # Eq. 1 (lines 3:4–3:5)
                    rejected[position] = TimestampOrderViolation(
                        axiom=Axiom.TS_ORDER,
                        tid=tid,
                        start_ts=start_ts,
                        commit_ts=commit_ts,
                    )
                    continue
                violation = sessions.observe(txn)  # lines 3:7–3:10
                writes, int_mismatches = resolve_writes(txn.ops)
                pre = None
                if violation is not None or int_mismatches is not None:
                    pre = []
                    if violation is not None:
                        pre.append(violation)
                    if int_mismatches is not None:
                        for key, exp, act in int_mismatches:
                            pre.append(
                                IntViolation(
                                    axiom=Axiom.INT, tid=tid, key=key, expected=exp, actual=act
                                )
                            )
                for key, op in txn.external_reads.items():
                    key_streams[key].append(len(r_keys) << 1)
                    r_keys_append(key)
                    r_ts_append(start_ts)
                    r_tids_append(tid)
                    r_vals_append(op.value)
                w_lo = len(w_keys)
                for key, value in writes.items():
                    key_streams[key].append((len(w_keys) << 1) | 1)
                    w_keys_append(key)
                    w_vals_append(value)
                    w_starts_append(start_ts)
                    w_cts_append(commit_ts)
                    w_tids_append(tid)
                entries.append((txn, pre, w_lo, len(w_keys)))

        n_reads = len(r_keys)
        n_writes = len(w_keys)
        stats.probe_reads += n_reads
        stats.probe_writes += n_writes
        if timing:
            t_probe0 = perf_counter()
            stats.route_seconds += t_probe0 - t_route0
        else:
            t_probe0 = 0.0

        # ---- frontier probe: per-key streams in arrival order, executed
        # by the versioned layer's columnar kernel (one representation
        # fetch per key instead of one per op — see probe_columns).
        r_expected, w_conflicts, w_reevals = probe_columns(
            self._frontier,
            self._writers,
            self._ext_reads,
            key_streams,
            r_ts,
            r_tids,
            r_vals,
            w_vals,
            w_starts,
            w_cts,
            w_tids,
            optimized,
            BOTTOM,
        )
        if timing:
            t_verdict0 = perf_counter()
            stats.probe_seconds += t_verdict0 - t_probe0
        else:
            t_verdict0 = 0.0

        # ---- verdict: bulk-track, then walk the batch in arrival order.
        if n_reads:
            ext.track_columns(r_tids, r_keys, r_ts, r_vals, r_expected, now, BOTTOM)
            stats.verdict_tracks += n_reads

        report = self._report
        reevaluate = ext.reevaluate
        resident = self._resident
        pending_cts = self._resident_cts_pending.append
        armed: List[int] = []
        armed_append = armed.append
        rejected_get = rejected.get
        cursor = 0
        n_reevals = 0
        n_conflicts = 0
        for position in range(n):
            reject = rejected_get(position)
            if reject is not None:
                report(reject)
                continue
            txn, pre, w_lo, w_hi = entries[cursor]
            cursor += 1
            if pre is not None:
                for violation in pre:
                    report(violation)
            tid = txn.tid
            for index in range(w_lo, w_hi):
                hits = w_conflicts[index]
                if hits is not None:
                    key = w_keys[index]
                    n_conflicts += len(hits)
                    for owner, end in hits:
                        self._report_conflict(txn, owner, end, key)
                affected = w_reevals[index]
                if affected is not None:
                    key = w_keys[index]
                    n_reevals += len(affected)
                    if optimized:
                        value = w_vals[index]
                        for _sts, reader_tid, actual in affected:
                            reevaluate(reader_tid, key, actual == value, value, now)
                    else:
                        for expected, reader_tid, actual in affected:
                            ok = (actual is None) if expected is BOTTOM else (expected == actual)
                            reevaluate(reader_tid, key, ok, expected, now)
            resident[tid] = txn
            pending_cts((txn.commit_ts, tid))
            armed_append(tid)
        self.processed += len(armed)
        stats.verdict_reevals += n_reevals
        stats.verdict_conflicts += n_conflicts
        ext.arm_timers(armed, now)  # line 3:3
        if track_total:
            t_end = perf_counter()
            total = t_end - t_batch0
            if timing:
                stats.timed_batches += 1
                stats.verdict_seconds += t_end - t_verdict0
                stats.batch_seconds += total
            if stats.slow_threshold > 0.0 and total >= stats.slow_threshold:
                top = sorted(
                    key_streams.items(), key=lambda item: len(item[1]), reverse=True
                )[:5]
                stats.record_slow(
                    {
                        "checker": "aion",
                        "seconds": round(total, 6),
                        "batch_txns": n,
                        "reads": n_reads,
                        "writes": n_writes,
                        "distinct_keys": len(key_streams),
                        "route_s": round(t_probe0 - t_route0, 6) if timing else None,
                        "probe_s": round(t_verdict0 - t_probe0, 6) if timing else None,
                        "verdict_s": round(t_end - t_verdict0, 6) if timing else None,
                        "top_keys": [[key, len(ops)] for key, ops in top],
                    }
                )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def poll(self) -> List[Violation]:
        """Drain violations reported since the previous poll.

        Also fires any EXT timeouts that are due at the current clock.
        """
        self._ext.advance_to(self._clock())
        fresh, self._fresh = self._fresh, []
        return fresh

    def finalize(self) -> CheckResult:
        """Force-finalize all pending EXT verdicts and return the result.

        Used at end of stream; equivalent to waiting out every timer.
        """
        self._ext.flush()
        return self._result

    @property
    def result(self) -> CheckResult:
        """Violations reported so far (EXT only after finalization)."""
        return self._result

    @property
    def flipflop_stats(self) -> FlipFlopStats:
        return self._ext.stats

    @property
    def kernel_stats(self) -> KernelStats:
        """Per-stage operation counters of the staged batch kernel."""
        return self._kernel_stats

    @property
    def resident_txn_count(self) -> int:
        """Transactions currently held in memory (GC threshold input)."""
        return len(self._resident)

    @property
    def spill_store(self) -> Optional[SpillStore]:
        return self._spill

    def estimated_bytes(self) -> int:
        """Deep-size estimate of the checker's live structures."""
        return deep_sizeof(
            (
                self._frontier,
                self._writers,
                self._ext_reads,
                self._resident,
                self._ext,
            )
        )

    def gc_debt(self) -> int:
        """Entries staged for the next collection cycle: lazy GC heap and
        staging-list entries in the frontier and writer indexes, plus
        deferred resident-index inserts — the work the next
        ``collect_garbage`` pays before any eviction starts."""
        return (
            self._frontier.staged_gc_entries()
            + self._writers.staged_gc_entries()
            + len(self._resident_cts_pending)
        )

    def scan_step_totals(self) -> Tuple[int, int]:
        """Summed ``(scan_steps, gc_scan_steps)`` over live promoted
        writer-interval keys (see ``WriterIntervals.scan_step_totals``)."""
        return self._writers.scan_step_totals()

    # ------------------------------------------------------------------
    # Garbage collection (lines 3:62–3:66)
    # ------------------------------------------------------------------

    def gc_safe_ts(self) -> Optional[int]:
        """Default collection watermark: everything currently resident.

        Eviction is safe at any timestamp because (a) the versioned
        frontier always retains the newest evicted version per key, so
        visibility queries above the watermark stay exact, (b) pending
        EXT verdicts and their re-check index live outside the evicted
        structures, and (c) a severely delayed transaction below the
        watermark transparently reloads the spilled segments.  None when
        nothing is resident."""
        by_cts = self._resident_map()
        if not by_cts:
            return None
        (max_cts, _), _ = by_cts.max_item()
        return max_cts

    def _resident_map(self) -> SortedMap:
        """The commit-ordered resident index, with deferred entries merged."""
        pending = self._resident_cts_pending
        if pending:
            by_cts = self._resident_by_cts
            for entry in pending:
                by_cts[entry] = entry[1]
            pending.clear()
        return self._resident_by_cts

    def suggest_gc_ts(self, keep_recent: int = 2000) -> Optional[int]:
        """A collection watermark that spares the ``keep_recent`` newest
        resident transactions.

        Arrivals lag at most the collector's delay spread behind the
        newest commit, so keeping a recency margin makes dips below the
        collected boundary — each of which forces a segment reload —
        rare instead of constant.  Returns None when the margin already
        covers everything resident.
        """
        by_cts = self._resident_map()
        excess = len(by_cts) - keep_recent
        if excess <= 0:
            return None
        for index, ((cts, _tid), _) in enumerate(by_cts.items()):
            if index == excess - 1:
                return cts
        return None

    def collect_below(self, ts: Optional[int] = None) -> GcReport:
        """Transfer structures with timestamps <= ``ts`` to disk.

        ``ts`` defaults to (and is always clamped by) :meth:`gc_safe_ts`.

        Report contract: ``requested_ts`` echoes the caller's ``ts`` (the
        safe watermark when ``ts`` was None), and ``effective_ts`` is the
        watermark actually applied.  When nothing is resident the cycle is
        a no-op with zero counts; ``effective_ts`` then equals the
        requested ``ts`` — or the ``-1`` sentinel only when no ``ts`` was
        given either, i.e. there was no watermark at all.
        """
        t0 = time.perf_counter()
        safe = self.gc_safe_ts()
        if safe is None:
            requested = ts if ts is not None else -1
            return GcReport(requested, requested, 0, 0, 0, time.perf_counter() - t0)
        effective = safe if ts is None else min(ts, safe)

        frontier_segment = self._frontier.evict_below(effective)
        interval_segment = self._writers.evict_below(effective)
        evicted_txns: List[Transaction] = []
        for (cts, tid), _ in self._resident_map().pop_below((effective, _TID_MAX)):
            txn = self._resident.pop(tid, None)
            if txn is not None:
                evicted_txns.append(txn)

        n_versions = sum(len(v) for v in frontier_segment.values())
        n_intervals = sum(len(v) for v in interval_segment.values())
        if frontier_segment or interval_segment or evicted_txns:
            if self._spill is None:
                self._spill = SpillStore(self.config.spill_dir)
            from repro.histories.serialization import txn_to_dict

            # The segment's range must bound its *content*: reloaded and
            # re-evicted data can be much older than the previous GC
            # boundary, and a range that overstates min_ts would hide the
            # segment from reloads that need it.
            content_min = effective
            for versions in frontier_segment.values():
                for cts, _value, _tid in versions:
                    if cts < content_min:
                        content_min = cts
            for intervals in interval_segment.values():
                for start_ts, _end_ts, _tid in intervals:
                    if start_ts < content_min:
                        content_min = start_ts
            for txn in evicted_txns:
                if txn.start_ts < content_min:
                    content_min = txn.start_ts
            self._spill.spill(
                content_min,
                effective,
                {
                    "frontier": {k: v for k, v in frontier_segment.items()},
                    "intervals": {k: v for k, v in interval_segment.items()},
                    "txns": [txn_to_dict(t) for t in evicted_txns],
                },
                n_items=n_versions + n_intervals + len(evicted_txns),
            )
        if self._collected_upto is None or effective > self._collected_upto:
            self._collected_upto = effective
        return GcReport(
            requested_ts=ts if ts is not None else safe,
            effective_ts=effective,
            evicted_versions=n_versions,
            evicted_intervals=n_intervals,
            evicted_txns=len(evicted_txns),
            seconds=time.perf_counter() - t0,
        )

    def close(self) -> None:
        """Release the spill directory, if any."""
        if self._spill is not None:
            self._spill.close()
            self._spill = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _visible_value(self, key: str, ts: int) -> Any:
        version = self._frontier.latest_at(key, ts)
        # A floor below the collected boundary may be stale (or absent):
        # newer versions still <= ts can live in spilled segments.
        if (
            self._spill is not None
            and self._collected_upto is not None
            and ts <= self._collected_upto
        ):
            spilled_min = self._spill.min_spilled_ts()
            if spilled_min is not None and spilled_min <= ts:
                self._reload_below(ts)
                version = self._frontier.latest_at(key, ts)
        return BOTTOM if version is None else version[1]

    def _reload_below(self, ts: Optional[int]) -> None:
        """Reload spilled segments overlapping [0, ts] (None = all)."""
        if self._spill is None:
            return
        for payload in self._spill.reload_overlapping(0, ts):
            self._frontier.merge(
                {k: [tuple(v) for v in versions] for k, versions in payload["frontier"].items()}
            )
            self._writers.merge(
                {k: [tuple(v) for v in ivs] for k, ivs in payload["intervals"].items()}
            )

    def _report(self, violation: Violation) -> None:
        self._result.add(violation)
        self._fresh.append(violation)

    def _report_conflict(self, txn: Transaction, other_tid: int, other_cts: int, key: str) -> None:
        # One report per pair, attributed to the smaller commit timestamp
        # (matches Chronos's commit-event reporting convention).
        if txn.commit_ts < other_cts:
            earlier, later = txn.tid, other_tid
        else:
            earlier, later = other_tid, txn.tid
        self._report(
            ConflictViolation(
                axiom=Axiom.NOCONFLICT,
                tid=earlier,
                key=key,
                conflicting_tids=frozenset({later}),
            )
        )

    def _report_ext_violation(self, verdict: ExtVerdict) -> None:
        self._report(
            ExtViolation(
                axiom=Axiom.EXT,
                tid=verdict[EV_TID],
                key=verdict[EV_KEY],
                expected=verdict[EV_EXPECTED],
                actual=verdict[EV_ACTUAL],
            )
        )

    def _drop_finalized_reads(self, verdicts: List[ExtVerdict]) -> None:
        # Live index entries correspond 1:1 to live unfinalized verdicts
        # (every add is paired with a track, removal only happens here,
        # and pending reads are never GC-evicted), so a finalized batch
        # as large as the index covers it entirely — the shape of the
        # end-of-stream flush.
        ext_reads = self._ext_reads
        if len(verdicts) == len(ext_reads):
            ext_reads.clear()
            return
        ext_reads.remove_batch(
            [(v[EV_KEY], v[EV_SNAPSHOT_TS], v[EV_TID]) for v in verdicts]
        )


class _TidMax:
    """Sentinel comparing greater than any tid in resident-eviction keys."""

    __slots__ = ()

    def __lt__(self, other: Any) -> bool:
        return False

    def __gt__(self, other: Any) -> bool:
        return other is not self


_TID_MAX = _TidMax()
