"""Fixed-capacity SPSC ring buffers over POSIX shared memory.

The transport under the sharded executor's ``shm-process`` mode: each
shard worker gets a *request lane* (coordinator → worker) and a *result
lane* (worker → coordinator), both a :class:`ShmRing` — one
``multiprocessing.shared_memory`` segment holding a small header and a
byte ring of length-prefixed frames.  A frame crosses the process
boundary as exactly one copy into the ring on push; the consumer reads
it *in place* through a ``memoryview`` slice and releases the slot
afterwards, so the request path carries no pickle and no receive-side
copy.

Single-producer / single-consumer by construction (one coordinator, one
worker per lane), which makes the ring lock-free with plain aligned
stores:

- ``head`` (total bytes produced) is written only by the producer,
  ``tail`` (total bytes consumed) only by the consumer; both are
  monotonically increasing u64 counters, so fill = ``head - tail``
  with no modular ambiguity.
- A push writes the payload first and publishes the length-prefixed
  frame by advancing ``head`` *last*; a producer killed mid-push leaves
  ``head`` untouched and the partial frame invisible — torn writes
  cannot be observed (CPython's interpreter lock plus 8-byte aligned
  stores keep the counter update indivisible on every platform the
  checkers target).
- Frames never wrap: when the contiguous space before the ring edge
  cannot hold the next frame, the producer publishes a *wrap marker*
  (length ``0xFFFFFFFF``) and the frame starts at offset 0.  Any frame
  up to :attr:`ShmRing.max_frame` is therefore guaranteed to fit in an
  empty ring regardless of where the previous frame ended.

The header also carries a **heartbeat** word the worker increments every
loop iteration (busy or idle); the coordinator detects a wedged —
alive-but-stalled — consumer by watching the heartbeat freeze, which
process liveness alone cannot see.

``multiprocessing.shared_memory`` may be missing or unusable (no
``/dev/shm``, sandboxed platforms): :func:`shm_available` probes once
and the executor refuses ``shm-process`` cleanly when it fails.
"""

from __future__ import annotations

import os
import struct
import time
from typing import Callable, Optional

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - stripped-down builds
    _shared_memory = None  # type: ignore[assignment]

__all__ = ["ShmRing", "shm_available"]

_U64 = struct.Struct("<Q")
_LEN = struct.Struct("<I")

#: Header layout (one u64 per field, 8-byte aligned; data begins at 64).
_OFF_HEAD = 0        # total bytes produced (producer-owned)
_OFF_TAIL = 8        # total bytes consumed (consumer-owned)
_OFF_HEARTBEAT = 16  # consumer loop-iteration counter (consumer-owned)
_OFF_PUSHED = 24     # frames published (producer-owned)
_OFF_POPPED = 32     # frames consumed (consumer-owned)
_OFF_CAPACITY = 40   # ring capacity in bytes (set once at create)
_HEADER_SIZE = 64

#: Length prefix marking "skip to the ring edge, frame starts at 0".
_WRAP = 0xFFFFFFFF

_MIN_CAPACITY = 4096

#: Hot-spin iterations before a blocking wait starts yielding.  Spinning
#: only helps when the peer can make progress *concurrently*; on a
#: single-core host every spin steals the CPU the peer needs, so the
#: wait yields immediately there.
_HOT_SPINS = 64 if (os.cpu_count() or 1) > 1 else 0

_sched_yield = getattr(os, "sched_yield", None) or (lambda: time.sleep(0))

_available: Optional[bool] = None


def shm_available() -> bool:
    """Whether shared-memory segments can actually be created here.

    Probes once per process (creates and unlinks a tiny segment); the
    sharded executor and the test suite gate ``shm-process`` on it so
    platforms without ``/dev/shm`` degrade to a clean error / skip
    instead of a late crash in a worker.
    """
    global _available
    if _available is None:
        if _shared_memory is None:
            _available = False
        else:
            try:
                probe = _shared_memory.SharedMemory(create=True, size=16)
            except (OSError, ValueError):
                _available = False
            else:
                try:
                    probe.close()
                    probe.unlink()
                except OSError:  # pragma: no cover - cleanup race
                    pass
                _available = True
    return _available


def _untrack(name: str) -> None:
    """Detach an attached segment from this process's resource tracker.

    The creator owns unlinking; an attach that *registers* makes a
    spawn-mode worker's own tracker unlink (and warn about) the segment
    when the worker exits — the double cleanup the ``track=False``
    parameter of newer Pythons exists to prevent.  Forked workers share
    the parent's tracker instead: there the attach-side register is a
    duplicate-set no-op and must stay, because unregistering would strip
    the create-side entry and make the eventual unlink fail noisily
    inside the tracker process.
    """
    try:  # pragma: no cover - private API, best effort
        import multiprocessing
        from multiprocessing import resource_tracker

        if multiprocessing.get_start_method(allow_none=True) == "fork":
            return
        resource_tracker.unregister(name, "shared_memory")
    except Exception:
        pass


class ShmRing:
    """One SPSC byte ring of length-prefixed frames in shared memory.

    Create with :meth:`create` (owner side, unlinks on
    :meth:`close(unlink=True) <close>`) and :meth:`attach` (peer side).
    The producer calls :meth:`try_push` / :meth:`push`; the consumer
    calls :meth:`try_pop` / :meth:`pop`, decodes the returned
    ``memoryview`` in place, and must call :meth:`consume` before the
    next pop — that releases the view and frees the slot.
    """

    __slots__ = ("_shm", "_buf", "capacity", "_owner", "_pending")

    def __init__(self, shm, capacity: int, owner: bool) -> None:
        self._shm = shm
        self._buf = shm.buf
        self.capacity = capacity
        self._owner = owner
        #: (memoryview, bytes_to_advance) of the frame returned by the
        #: last try_pop and not yet consumed.
        self._pending: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, capacity: int) -> "ShmRing":
        """Allocate a fresh ring with at least ``capacity`` data bytes."""
        if _shared_memory is None:  # pragma: no cover - stripped builds
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        capacity = max(int(capacity), _MIN_CAPACITY)
        shm = _shared_memory.SharedMemory(create=True, size=_HEADER_SIZE + capacity)
        shm.buf[:_HEADER_SIZE] = b"\x00" * _HEADER_SIZE
        _U64.pack_into(shm.buf, _OFF_CAPACITY, capacity)
        return cls(shm, capacity, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        """Attach to an existing ring by segment name (worker side)."""
        if _shared_memory is None:  # pragma: no cover - stripped builds
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        shm = _shared_memory.SharedMemory(name=name)
        _untrack(shm._name)  # noqa: SLF001 - see _untrack
        capacity = _U64.unpack_from(shm.buf, _OFF_CAPACITY)[0]
        return cls(shm, capacity, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self, unlink: bool = False) -> None:
        """Release the mapping; the owner may also unlink the segment."""
        if self._pending is not None:
            self._pending[0].release()
            self._pending = None
        buf, self._buf = self._buf, None
        if buf is not None:
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - leaked view upstream
                pass
        if unlink and self._owner:
            try:
                self._shm.unlink()
            except OSError:  # pragma: no cover - already gone
                pass

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------

    def _read(self, offset: int) -> int:
        return _U64.unpack_from(self._buf, offset)[0]

    def _write(self, offset: int, value: int) -> None:
        _U64.pack_into(self._buf, offset, value)

    @property
    def max_frame(self) -> int:
        """Largest payload guaranteed pushable into an empty ring.

        With the wrap-marker scheme a push needs at most
        ``skip + 4 + len`` bytes where the skip is only taken when the
        frame does not fit contiguously; bounding payloads at
        ``capacity // 2 - 8`` makes the worst-case total fit whatever
        offset the previous frame ended at.
        """
        return self.capacity // 2 - 8

    def lag(self) -> int:
        """Unconsumed bytes currently in the ring (producer - consumer)."""
        return self._read(_OFF_HEAD) - self._read(_OFF_TAIL)

    def heartbeat(self) -> int:
        """Consumer loop-iteration counter (see :meth:`beat`)."""
        return self._read(_OFF_HEARTBEAT)

    def beat(self) -> None:
        """Bump the heartbeat — the consumer calls this every loop
        iteration, busy or idle, so a frozen counter means a wedged
        consumer rather than an idle one."""
        _U64.pack_into(self._buf, _OFF_HEARTBEAT, self._read(_OFF_HEARTBEAT) + 1)

    def frames_pushed(self) -> int:
        return self._read(_OFF_PUSHED)

    def frames_popped(self) -> int:
        return self._read(_OFF_POPPED)

    def bytes_pushed(self) -> int:
        """Total payload+framing bytes ever produced into this ring."""
        return self._read(_OFF_HEAD)

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def try_push(self, payload) -> bool:
        """Publish one frame if it fits *right now*; never blocks.

        Returns False when the payload exceeds :attr:`max_frame` or the
        ring lacks space — the sharded coordinator treats either as
        "take the pipe fallback for this batch".
        """
        buf = self._buf
        length = len(payload)
        if length > self.max_frame:
            return False
        capacity = self.capacity
        head = self._read(_OFF_HEAD)
        tail = self._read(_OFF_TAIL)
        free = capacity - (head - tail)
        need = 4 + length
        position = head % capacity
        contiguous = capacity - position
        if contiguous < need:
            # Frame will not fit before the edge: publish a wrap marker
            # (when there is room for one) and start at offset 0.  The
            # skipped stretch counts as produced bytes until consumed.
            if free < contiguous + need:
                return False
            if contiguous >= 4:
                _LEN.pack_into(buf, _HEADER_SIZE + position, _WRAP)
            head += contiguous
            position = 0
        elif free < need:
            return False
        data_at = _HEADER_SIZE + position
        buf[data_at + 4 : data_at + 4 + length] = payload
        _LEN.pack_into(buf, data_at, length)
        self._write(_OFF_PUSHED, self._read(_OFF_PUSHED) + 1)
        # Publication point: the frame (and any marker) becomes visible
        # to the consumer in this single counter store.
        self._write(_OFF_HEAD, head + need)
        return True

    def push(
        self,
        payload,
        *,
        abort: Optional[Callable[[], bool]] = None,
        timeout: Optional[float] = None,
    ) -> bool:
        """Blocking :meth:`try_push`: spin briefly, then sleep-poll.

        Returns False only when ``abort()`` turns true or ``timeout``
        elapses; oversized payloads raise — waiting would never help.
        """
        if len(payload) > self.max_frame:
            raise ValueError(
                f"payload of {len(payload)} bytes exceeds ring max_frame {self.max_frame}"
            )
        deadline = None if timeout is None else time.monotonic() + timeout
        spins = 0
        while not self.try_push(payload):
            spins += 1
            if spins < _HOT_SPINS:
                continue
            if abort is not None and spins % 32 == 0 and abort():
                return False
            if deadline is not None and time.monotonic() > deadline:
                return False
            if spins < 2048:
                _sched_yield()
            else:
                time.sleep(0.00005 if spins < 8192 else 0.0005)
        return True

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------

    def try_pop(self) -> Optional[memoryview]:
        """Return the next frame as an in-place ``memoryview``, or None.

        The caller decodes the view and then calls :meth:`consume`; the
        slot is not reusable (and the next frame not poppable) until it
        does.
        """
        if self._pending is not None:
            raise RuntimeError("previous frame not consumed")
        buf = self._buf
        capacity = self.capacity
        head = self._read(_OFF_HEAD)
        tail = self._read(_OFF_TAIL)
        while True:
            if head == tail:
                return None
            position = tail % capacity
            contiguous = capacity - position
            if contiguous < 4:
                # Too narrow even for a marker; both sides skip by rule.
                tail += contiguous
                self._write(_OFF_TAIL, tail)
                continue
            (length,) = _LEN.unpack_from(buf, _HEADER_SIZE + position)
            if length == _WRAP:
                tail += contiguous
                self._write(_OFF_TAIL, tail)
                continue
            data_at = _HEADER_SIZE + position + 4
            view = memoryview(buf)[data_at : data_at + length]
            self._pending = (view, 4 + length)
            return view

    def consume(self) -> None:
        """Release the last popped frame's view and free its slot."""
        pending = self._pending
        if pending is None:
            raise RuntimeError("no pending frame to consume")
        self._pending = None
        view, advance = pending
        view.release()
        self._write(_OFF_POPPED, self._read(_OFF_POPPED) + 1)
        self._write(_OFF_TAIL, self._read(_OFF_TAIL) + advance)

    def pop(
        self,
        *,
        abort: Optional[Callable[[], bool]] = None,
        timeout: Optional[float] = None,
    ) -> Optional[memoryview]:
        """Blocking :meth:`try_pop`: spin briefly, then sleep-poll.

        Returns None when ``abort()`` turns true (e.g. the peer process
        died — the caller must poll that; a dead producer can never
        satisfy the wait) or ``timeout`` elapses.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        spins = 0
        while True:
            view = self.try_pop()
            if view is not None:
                return view
            spins += 1
            if spins < _HOT_SPINS:
                continue
            if abort is not None and spins % 32 == 0 and abort():
                return None
            if deadline is not None and time.monotonic() > deadline:
                return None
            if spins < 2048:
                _sched_yield()
            else:
                time.sleep(0.00005 if spins < 8192 else 0.0005)
