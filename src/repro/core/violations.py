"""Violation records and check results.

The axiomatic semantics of SI (Definition 4) decomposes into the SESSION,
INT, EXT, PREFIX and NOCONFLICT axioms; with timestamp-based VIS/AR
(Definitions 5 and 6) PREFIX holds by construction, so the checkers report
violations of the remaining four, plus violations of Eq. 1
(``start_ts <= commit_ts``).

Each violation is a frozen record carrying enough context to debug the
offending transaction.  :class:`CheckResult` aggregates them; checkers
never stop at the first violation (§III-B2), so a result may contain many.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

__all__ = [
    "Axiom",
    "Violation",
    "SessionViolation",
    "IntViolation",
    "ExtViolation",
    "ConflictViolation",
    "TimestampOrderViolation",
    "CheckResult",
]


class Axiom(enum.Enum):
    """The checkable axioms (plus the Eq. 1 timestamp sanity rule)."""

    SESSION = "SESSION"
    INT = "INT"
    EXT = "EXT"
    NOCONFLICT = "NOCONFLICT"
    TS_ORDER = "TS_ORDER"


@dataclass(frozen=True)
class Violation:
    """Base class: an axiom violated by a specific transaction."""

    axiom: Axiom
    tid: int

    def describe(self) -> str:
        return f"{self.axiom.value} violated by transaction {self.tid}"


@dataclass(frozen=True)
class SessionViolation(Violation):
    """SESSION: a transaction does not follow its session predecessor.

    Either its sequence number is not ``last_sno + 1`` or it started
    before its predecessor committed (Algorithm 2, line 7).
    """

    sid: int = -1
    expected_sno: int = -1
    actual_sno: int = -1
    start_ts: int = -1
    last_commit_ts: int = -1

    def describe(self) -> str:
        return (
            f"SESSION violated by txn {self.tid} (session {self.sid}): "
            f"expected sno {self.expected_sno}, got {self.actual_sno}; "
            f"start_ts {self.start_ts} vs predecessor commit_ts {self.last_commit_ts}"
        )


@dataclass(frozen=True)
class IntViolation(Violation):
    """INT: an internal read disagrees with the transaction's own state."""

    key: str = ""
    expected: Any = None
    actual: Any = None

    def describe(self) -> str:
        return (
            f"INT violated by txn {self.tid} on key {self.key!r}: "
            f"read {self.actual!r}, transaction-local value is {self.expected!r}"
        )


@dataclass(frozen=True)
class ExtViolation(Violation):
    """EXT: an external read disagrees with the committed frontier."""

    key: str = ""
    expected: Any = None
    actual: Any = None

    def describe(self) -> str:
        return (
            f"EXT violated by txn {self.tid} on key {self.key!r}: "
            f"read {self.actual!r}, snapshot value is {self.expected!r}"
        )


@dataclass(frozen=True)
class ConflictViolation(Violation):
    """NOCONFLICT: concurrent transactions wrote the same key.

    Reported once, attributed to the transaction with the smaller commit
    timestamp (Algorithm 2 commit handling / Algorithm 3 step ②).
    """

    key: str = ""
    conflicting_tids: FrozenSet[int] = frozenset()

    def describe(self) -> str:
        others = ", ".join(str(t) for t in sorted(self.conflicting_tids))
        return (
            f"NOCONFLICT violated: txn {self.tid} conflicts with "
            f"{{{others}}} on key {self.key!r}"
        )


@dataclass(frozen=True)
class TimestampOrderViolation(Violation):
    """Eq. 1 violated: ``start_ts > commit_ts``."""

    start_ts: int = -1
    commit_ts: int = -1

    def describe(self) -> str:
        return (
            f"timestamp order violated by txn {self.tid}: "
            f"start_ts {self.start_ts} > commit_ts {self.commit_ts}"
        )


@dataclass
class CheckResult:
    """Aggregated outcome of checking one history.

    ``violations`` preserves report order (for offline checkers, the
    simulation order; for online checkers, finalization order).
    """

    violations: List[Violation] = field(default_factory=list)

    @property
    def is_valid(self) -> bool:
        """True when no violation of any axiom was found."""
        return not self.violations

    def add(self, violation: Violation) -> None:
        self.violations.append(violation)

    def extend(self, other: "CheckResult") -> None:
        self.violations.extend(other.violations)

    def by_axiom(self, axiom: Axiom) -> List[Violation]:
        """All violations of one axiom, in report order."""
        return [v for v in self.violations if v.axiom is axiom]

    def counts(self) -> Dict[Axiom, int]:
        """Violation counts per axiom (axioms with zero omitted)."""
        totals: Dict[Axiom, int] = {}
        for violation in self.violations:
            totals[violation.axiom] = totals.get(violation.axiom, 0) + 1
        return totals

    def violating_tids(self) -> FrozenSet[int]:
        """The set of transactions named as violators."""
        return frozenset(v.tid for v in self.violations)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.is_valid:
            return "OK: no isolation violations"
        parts = ", ".join(f"{axiom.value}={count}" for axiom, count in sorted(
            self.counts().items(), key=lambda item: item[0].value))
        return f"VIOLATIONS ({len(self.violations)} total): {parts}"

    def __repr__(self) -> str:
        return f"CheckResult({self.summary()})"
