"""Shared pieces of the staged batch ingestion kernel.

The checkers' ``receive_many`` hot paths share one shape (PR 6): a
**route** pass decodes an arrival batch into flat parallel op arrays and
per-key groupings, a **frontier probe** pass walks those arrays against
the versioned structures, and a **verdict** pass applies the collected
results — tracking, re-evaluations, conflict reports — in arrival order.
This module holds the pieces common to :class:`~repro.core.aion.Aion`,
:class:`~repro.core.aion_ser.AionSer`, and
:class:`~repro.core.sharded.ShardedAion`:

- :class:`KernelStats` — per-stage operation counters, exposed through
  each checker's ``kernel_stats`` property and the service ``STATS``
  response, so the hot path is observable without a profiler (and so CI
  can gate on deterministic op counts instead of wall-clock).
- :func:`resolve_writes` — the route pass's callback-free transaction
  simulation: the INT rules of
  :func:`~repro.core.common.simulate_transaction_ops` for register
  histories, returning the resolved final writes plus any INT mismatches
  as plain tuples instead of driving per-op callbacks through lambdas.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.histories.model import OpKind, Operation

__all__ = ["KernelStats", "resolve_writes", "resolve_columns"]


class KernelStats:
    """Per-stage operation counters of the staged batch kernel.

    Counters are cumulative over the checker's lifetime and advanced only
    by the batch kernel (``receive_many``); the per-op reference path
    (``receive``) leaves them untouched, which is exactly what lets the
    smoke gate detect a regression back to per-op dispatch.
    """

    __slots__ = (
        "batches",
        "txns",
        "max_batch",
        "route_ops",
        "probe_reads",
        "probe_writes",
        "verdict_tracks",
        "verdict_reevals",
        "verdict_conflicts",
        "sample_every",
        "timed_batches",
        "route_seconds",
        "probe_seconds",
        "verdict_seconds",
        "batch_seconds",
        "slow_threshold",
        "slow_batches",
        "on_slow_batch",
    )

    def __init__(self) -> None:
        #: Batches routed through the kernel.
        self.batches = 0
        #: Transactions decoded by the route pass (including rejects).
        self.txns = 0
        #: Largest batch seen.
        self.max_batch = 0
        #: Raw history operations decoded by the route pass (every op of
        #: every routed transaction, rejects included — the flat arrays
        #: hold the deduplicated subset counted by the probe counters).
        self.route_ops = 0
        #: Frontier visibility probes issued for external reads.
        self.probe_reads = 0
        #: Frontier inserts (and fused overlap queries) for writes.
        self.probe_writes = 0
        #: EXT verdicts tracked by the verdict pass.
        self.verdict_tracks = 0
        #: EXT re-evaluations applied by the verdict pass.
        self.verdict_reevals = 0
        #: NOCONFLICT violations reported by the verdict pass.
        self.verdict_conflicts = 0
        #: Sample per-stage wall times on every Nth batch; 0 disables
        #: timing entirely (the library/bench default — a comparison and
        #: branch is all an untimed batch pays).
        self.sample_every = 0
        #: Batches whose stage timings were sampled.
        self.timed_batches = 0
        #: Accumulated wall time of sampled batches, per stage, seconds.
        self.route_seconds = 0.0
        self.probe_seconds = 0.0
        self.verdict_seconds = 0.0
        #: Whole-call wall time of sampled batches, seconds (covers the
        #: three stages plus routing glue; ≥ the stage sum).
        self.batch_seconds = 0.0
        #: Whole-call wall time (seconds) above which a batch is traced
        #: through :attr:`on_slow_batch`; 0.0 disables the trace.
        self.slow_threshold = 0.0
        #: Batches that crossed :attr:`slow_threshold`.
        self.slow_batches = 0
        #: Optional hook called with a structured trace record for each
        #: slow batch (e.g. :meth:`repro.obs.trace.SlowBatchLog.record`).
        self.on_slow_batch: Optional[Any] = None

    def timing_enabled(self) -> bool:
        """Whether the *next* batch should sample stage wall times."""
        return self.sample_every > 0 and self.batches % self.sample_every == 0

    def tracking_enabled(self) -> bool:
        """Whether the next batch needs a whole-call wall-time measure
        (sampled timing, or slow-batch tracing on every batch)."""
        return self.slow_threshold > 0.0 or self.timing_enabled()

    def record_slow(self, trace: Dict[str, Any]) -> None:
        """Count a slow batch and invoke the hook, swallowing hook errors
        — tracing must never change a verdict or kill ingestion."""
        self.slow_batches += 1
        hook = self.on_slow_batch
        if hook is not None:
            try:
                hook(trace)
            except Exception:  # pragma: no cover - defensive
                pass

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict snapshot for the service ``STATS`` response."""
        return {
            "batches": self.batches,
            "txns": self.txns,
            "max_batch": self.max_batch,
            "route_ops": self.route_ops,
            "probe_reads": self.probe_reads,
            "probe_writes": self.probe_writes,
            "verdict_tracks": self.verdict_tracks,
            "verdict_reevals": self.verdict_reevals,
            "verdict_conflicts": self.verdict_conflicts,
            "timed_batches": self.timed_batches,
            "route_seconds": self.route_seconds,
            "probe_seconds": self.probe_seconds,
            "verdict_seconds": self.verdict_seconds,
            "batch_seconds": self.batch_seconds,
            "slow_batches": self.slow_batches,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"KernelStats({self.as_dict()!r})"


def resolve_writes(
    ops: List[Operation],
) -> Tuple[Dict[str, Any], Optional[List[Tuple[str, Any, Any]]]]:
    """Resolve a register transaction's final writes and INT mismatches.

    The route-pass twin of
    :func:`~repro.core.common.simulate_transaction_ops` for batches that
    have already rejected appends: snapshot values feed only the EXT
    callback there (handled separately by the probe pass via the
    transaction's precomputed ``external_reads``), so the simulation
    reduces to the transaction-local INT rules — no snapshot resolver, no
    per-op callbacks.

    Returns ``(resolved_writes, int_mismatches)`` where ``resolved_writes``
    maps each written key to its final value and ``int_mismatches`` is
    ``None`` or a list of ``(key, expected, actual)`` in program order.
    """
    local: Dict[str, Any] = {}
    resolved: Dict[str, Any] = {}
    mismatches: Optional[List[Tuple[str, Any, Any]]] = None
    write = OpKind.WRITE
    local_get = local.get
    missing = resolved  # private sentinel: never a stored op value
    for op in ops:
        key = op.key
        value = op.value
        if op.kind is write:
            local[key] = value
            resolved[key] = value
        else:  # READ / READ_LIST: identical transaction-local INT rule
            prior = local_get(key, missing)
            if prior is not missing and prior != value:
                if mismatches is None:
                    mismatches = []
                mismatches.append((key, prior, value))
            local[key] = value
    return resolved, mismatches


def resolve_columns(
    kinds: Any,
    keys: List[str],
    values: List[Any],
    lo: int,
    hi: int,
) -> Tuple[
    List[Tuple[str, Any]],
    Dict[str, Any],
    Optional[List[Tuple[str, Any, Any]]],
]:
    """:func:`resolve_writes` over one transaction's slice of a columnar
    batch's flat op arrays — no :class:`Operation` objects.

    ``kinds`` is a bytes-like column of op codes (1 = write, everything
    else follows the read rule; appends are rejected batch-wide before
    routing), ``keys``/``values`` the parallel flat columns, ``[lo, hi)``
    the transaction's slice.  One fused walk also detects the external
    reads (first read of a key before any touch — the derived view
    ``Transaction.__init__`` precomputes for object batches), so the
    columnar route pass costs the same single pass the object route pass
    pays in ``resolve_writes`` alone.

    Returns ``(external_reads, resolved_writes, int_mismatches)`` with
    ``external_reads`` as ``(key, observed value)`` pairs in program
    order of each key's first read.
    """
    local: Dict[str, Any] = {}
    resolved: Dict[str, Any] = {}
    external: List[Tuple[str, Any]] = []
    mismatches: Optional[List[Tuple[str, Any, Any]]] = None
    local_get = local.get
    external_append = external.append
    missing = resolved  # private sentinel: never a stored op value
    for index in range(lo, hi):
        key = keys[index]
        value = values[index]
        if kinds[index] == 1:  # OP_WRITE
            local[key] = value
            resolved[key] = value
        else:
            prior = local_get(key, missing)
            if prior is missing:
                external_append((key, value))
            elif prior != value:
                if mismatches is None:
                    mismatches = []
                mismatches.append((key, prior, value))
            local[key] = value
    return external, resolved, mismatches
