"""Throughput and memory metrics for the online experiments.

:class:`ThroughputSeries` buckets completion events into one-second
windows of virtual time — the Fig 12 curves are exactly this series.
:class:`MemorySampler` snapshots a checker's estimated resident bytes at
a configurable cadence — Fig 10/16 are these samples over time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

__all__ = ["ThroughputSeries", "MemorySampler"]


class ThroughputSeries:
    """Counts completions per fixed-width time bucket."""

    def __init__(self, bucket_seconds: float = 1.0) -> None:
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        self.bucket_seconds = bucket_seconds
        self._buckets: Dict[int, int] = {}
        self.total = 0

    def record(self, timestamp: float, count: int = 1) -> None:
        # Floor division, not int(): truncation toward zero would fold
        # every timestamp in (-1, 1) bucket widths into bucket 0, so
        # negative/straddling virtual times would share a bucket with
        # the first positive one.
        bucket = math.floor(timestamp / self.bucket_seconds)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + count
        self.total += count

    def series(self) -> List[Tuple[float, float]]:
        """(bucket start time, TPS) pairs, gaps filled with zero.

        The series always extends down to bucket 0 (the virtual start of
        the run), and further when negative timestamps were recorded.
        """
        if not self._buckets:
            return []
        first = min(0, min(self._buckets))
        last = max(self._buckets)
        return [
            (
                bucket * self.bucket_seconds,
                self._buckets.get(bucket, 0) / self.bucket_seconds,
            )
            for bucket in range(first, last + 1)
        ]

    def snapshot(self) -> Dict[str, Any]:
        """Counters in one dict — the service's ``STATS`` payload."""
        return {
            "total": self.total,
            "buckets": len(self._buckets),
            "bucket_seconds": self.bucket_seconds,
            "sustained_tps": round(self.sustained_tps(), 3),
            "peak_tps": round(self.peak_tps(), 3),
        }

    def sustained_tps(self, *, skip_warmup_buckets: int = 1) -> float:
        """Mean TPS after a warm-up prefix (the paper's 'sustained').

        Computed from the sparse bucket map, not the gap-filled
        :meth:`series` — a stats poller on a long-lived daemon must not
        pay O(uptime) per sample.
        """
        if not self._buckets:
            return 0.0
        first = min(0, min(self._buckets))
        last = max(self._buckets)
        n_points = last - first + 1
        if n_points > skip_warmup_buckets:
            skipped = sum(
                self._buckets.get(bucket, 0)
                for bucket in range(first, first + skip_warmup_buckets)
            )
            count, points = self.total - skipped, n_points - skip_warmup_buckets
        else:  # warm-up covers everything: fall back to the full series
            count, points = self.total, n_points
        return (count / self.bucket_seconds) / points

    def peak_tps(self) -> float:
        if not self._buckets:
            return 0.0
        # Gap buckets contribute zero; recorded counts are non-negative,
        # so the sparse maximum is the series maximum.
        return max(self._buckets.values()) / self.bucket_seconds


@dataclass
class MemorySampler:
    """Periodically samples a byte-estimate callable."""

    estimate: Callable[[], int]
    every_n: int = 1000
    samples: List[Tuple[float, int]] = field(default_factory=list)
    _countdown: int = 0

    def maybe_sample(self, timestamp: float) -> None:
        self._countdown += 1
        if self._countdown >= self.every_n:
            self._countdown = 0
            self.samples.append((timestamp, self.estimate()))

    def force_sample(self, timestamp: float) -> None:
        self.samples.append((timestamp, self.estimate()))

    @property
    def peak_bytes(self) -> int:
        return max((value for _, value in self.samples), default=0)
