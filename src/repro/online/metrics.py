"""Throughput and memory metrics for the online experiments.

:class:`ThroughputSeries` buckets completion events into one-second
windows of virtual time — the Fig 12 curves are exactly this series.
:class:`MemorySampler` snapshots a checker's estimated resident bytes at
a configurable cadence — Fig 10/16 are these samples over time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

__all__ = ["ThroughputSeries", "MemorySampler"]


class ThroughputSeries:
    """Counts completions per fixed-width time bucket."""

    def __init__(self, bucket_seconds: float = 1.0) -> None:
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        self.bucket_seconds = bucket_seconds
        self._buckets: Dict[int, int] = {}
        self.total = 0

    def record(self, timestamp: float, count: int = 1) -> None:
        bucket = int(timestamp / self.bucket_seconds)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + count
        self.total += count

    def series(self) -> List[Tuple[float, float]]:
        """(bucket start time, TPS) pairs, gaps filled with zero."""
        if not self._buckets:
            return []
        last = max(self._buckets)
        return [
            (
                bucket * self.bucket_seconds,
                self._buckets.get(bucket, 0) / self.bucket_seconds,
            )
            for bucket in range(0, last + 1)
        ]

    def sustained_tps(self, *, skip_warmup_buckets: int = 1) -> float:
        """Mean TPS after a warm-up prefix (the paper's 'sustained')."""
        points = self.series()[skip_warmup_buckets:]
        if not points:
            points = self.series()
        if not points:
            return 0.0
        return sum(tps for _, tps in points) / len(points)

    def peak_tps(self) -> float:
        points = self.series()
        return max((tps for _, tps in points), default=0.0)


@dataclass
class MemorySampler:
    """Periodically samples a byte-estimate callable."""

    estimate: Callable[[], int]
    every_n: int = 1000
    samples: List[Tuple[float, int]] = field(default_factory=list)
    _countdown: int = 0

    def maybe_sample(self, timestamp: float) -> None:
        self._countdown += 1
        if self._countdown >= self.every_n:
            self._countdown = 0
            self.samples.append((timestamp, self.estimate()))

    def force_sample(self, timestamp: float) -> None:
        self.samples.append((timestamp, self.estimate()))

    @property
    def peak_bytes(self) -> int:
        return max((value for _, value in self.samples), default=0)
