"""Online checking infrastructure (§VI).

- :mod:`repro.online.clock` — a deterministic virtual clock, injected
  into the checkers so timeout behaviour is reproducible;
- :mod:`repro.online.delays` — per-transaction delay models: the paper's
  batched delivery with normally distributed delays N(mu, sigma²);
- :mod:`repro.online.collector` — turns a history (or a live CDC feed)
  into a timed arrival schedule, preserving session order, in batches of
  500 transactions;
- :mod:`repro.online.metrics` — throughput buckets and memory sampling;
- :mod:`repro.online.runner` — drives a checker through a schedule in
  either *capacity mode* (wall-clock-paced, for the Fig 12 throughput
  curves, with pluggable GC strategies) or *tracking mode*
  (arrival-paced, for the flip-flop experiments of Figs 13/14/17–21).
"""

from repro.online.clock import SimClock
from repro.online.collector import ArrivalSchedule, HistoryCollector
from repro.online.delays import DelayModel, NoDelay, NormalDelay
from repro.online.metrics import MemorySampler, ThroughputSeries
from repro.online.runner import GcPolicy, OnlineRunReport, OnlineRunner

__all__ = [
    "ArrivalSchedule",
    "DelayModel",
    "GcPolicy",
    "HistoryCollector",
    "MemorySampler",
    "NoDelay",
    "NormalDelay",
    "OnlineRunReport",
    "OnlineRunner",
    "SimClock",
    "ThroughputSeries",
]
