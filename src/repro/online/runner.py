"""The online experiment runner (§VI).

Feeds an arrival schedule into an online checker and measures what the
paper's online figures report.  Two pacing modes:

- **capacity mode** (Fig 12): the checker is the bottleneck — arrivals
  queue up and virtual time advances by the *measured wall-clock cost*
  of each ``receive`` call (plus GC pauses), so the produced
  throughput-over-time series reflects the checker's real sustainable
  rate under the chosen GC policy, exactly like feeding pre-collected
  logs faster than the checker can drain them (§VI-A).
- **tracking mode** (Fig 13/14/17–21): the checker is assumed to keep
  up — virtual time snaps to each arrival's scheduled time, so EXT
  timeout and flip-flop timings are exact functions of the delay model.

A third, **batched capacity mode** feeds the checker whole collector
batches through ``receive_many`` — the sharded ingestion frontend's
native unit of work — with the same virtual-time accounting as capacity
mode.

GC policies reproduce the three Fig 12 strategies: ``no-gc``,
``checking-gc`` (threshold-triggered collection of everything below the
GC-safe timestamp) and ``full-gc`` (a hard resident cap enforced
immediately, collecting every time the cap is hit).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Tuple

from repro.core.violations import CheckResult
from repro.online.collector import ArrivalSchedule
from repro.online.clock import SimClock
from repro.online.metrics import MemorySampler, ThroughputSeries

__all__ = ["GcPolicy", "OnlineRunner", "OnlineRunReport", "OnlineChecker"]


class OnlineChecker(Protocol):
    """What the runner needs from Aion / Aion-SER / ShardedAion."""

    def receive(self, txn) -> None: ...
    def receive_many(self, txns) -> None: ...
    def finalize(self) -> CheckResult: ...
    @property
    def resident_txn_count(self) -> int: ...
    def collect_below(self, ts: Optional[int] = None): ...
    def suggest_gc_ts(self, keep_recent: int = 2000) -> Optional[int]: ...
    def estimated_bytes(self) -> int: ...


class GcPolicy(enum.Enum):
    """The three Fig 12 garbage-collection strategies."""

    NO_GC = "no-gc"
    CHECKING_GC = "checking-gc"
    FULL_GC = "full-gc"


@dataclass
class OnlineRunReport:
    """Everything the online figures need from one run."""

    throughput: ThroughputSeries
    result: CheckResult
    n_processed: int = 0
    n_gc_cycles: int = 0
    gc_seconds: float = 0.0
    wall_seconds: float = 0.0
    virtual_seconds: float = 0.0
    memory_samples: List[Tuple[float, int]] = field(default_factory=list)

    @property
    def sustained_tps(self) -> float:
        return self.throughput.sustained_tps()

    @property
    def overall_tps(self) -> float:
        """Processed transactions per second of virtual time."""
        if self.virtual_seconds <= 0:
            return 0.0
        return self.n_processed / self.virtual_seconds


class OnlineRunner:
    """Runs one checker over one schedule."""

    def __init__(
        self,
        checker: OnlineChecker,
        clock: SimClock,
        *,
        gc_policy: GcPolicy = GcPolicy.NO_GC,
        gc_threshold: int = 50_000,
        memory_sample_every: Optional[int] = None,
    ) -> None:
        self.checker = checker
        self.clock = clock
        self.gc_policy = gc_policy
        self.gc_threshold = gc_threshold
        self._memory_every = memory_sample_every

    # ------------------------------------------------------------------

    def run_capacity(self, schedule: ArrivalSchedule) -> OnlineRunReport:
        """Wall-clock-paced run: measures sustainable throughput."""
        throughput = ThroughputSeries()
        sampler = self._make_sampler()
        gc_seconds = 0.0
        n_gc = 0
        wall_start = time.perf_counter()

        for arrival_time, txn in schedule:
            # The checker may only start once the transaction arrived.
            self.clock.advance_to(arrival_time)
            t0 = time.perf_counter()
            self.checker.receive(txn)
            self.clock.advance(time.perf_counter() - t0)

            pause = self._maybe_collect()
            if pause is not None:
                gc_seconds += pause
                n_gc += 1

            throughput.record(self.clock.now())
            if sampler is not None:
                sampler.maybe_sample(self.clock.now())

        result = self.checker.finalize()
        return OnlineRunReport(
            throughput=throughput,
            result=result,
            n_processed=len(schedule),
            n_gc_cycles=n_gc,
            gc_seconds=gc_seconds,
            wall_seconds=time.perf_counter() - wall_start,
            virtual_seconds=self.clock.now(),
            memory_samples=sampler.samples if sampler is not None else [],
        )

    def _maybe_collect(self) -> Optional[float]:
        """Apply the configured GC policy once; return the pause if any.

        FULL_GC enforces a hard resident cap (evict everything; each
        subsequent dip below the boundary forces a segment reload — the
        paper's repeatedly re-triggered full GC).  CHECKING_GC keeps a
        recency margin so slightly late arrivals rarely touch spilled
        segments, and overlaps half of the pause with useful work (a
        background thread in the original system), so only half of the
        measured pause advances virtual time.
        """
        if self.gc_policy is GcPolicy.NO_GC:
            return None
        if self.checker.resident_txn_count < self.gc_threshold:
            return None
        t_gc = time.perf_counter()
        if self.gc_policy is GcPolicy.FULL_GC:
            self.checker.collect_below(None)
        else:
            target = self.checker.suggest_gc_ts(
                keep_recent=max(1, self.gc_threshold // 2)
            )
            if target is not None:
                self.checker.collect_below(target)
        pause = time.perf_counter() - t_gc
        if self.gc_policy is GcPolicy.FULL_GC:
            self.clock.advance(pause)
        else:
            self.clock.advance(pause * 0.5)
        return pause

    def run_capacity_batched(
        self, schedule: ArrivalSchedule, *, batch_size: int = 500
    ) -> OnlineRunReport:
        """Wall-clock-paced run feeding the checker whole batches.

        Groups consecutive arrivals into batches of ``batch_size`` and
        hands each to :meth:`OnlineChecker.receive_many` — the checker may
        only start a batch once its last member arrived, so virtual time
        first snaps to that arrival and then advances by the measured
        cost of the batch.  GC policies apply between batches.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        throughput = ThroughputSeries()
        sampler = self._make_sampler()
        gc_seconds = 0.0
        n_gc = 0
        wall_start = time.perf_counter()

        arrivals = list(schedule)
        for offset in range(0, len(arrivals), batch_size):
            chunk = arrivals[offset : offset + batch_size]
            self.clock.advance_to(chunk[-1][0])
            batch = [txn for _, txn in chunk]
            t0 = time.perf_counter()
            self.checker.receive_many(batch)
            self.clock.advance(time.perf_counter() - t0)

            pause = self._maybe_collect()
            if pause is not None:
                gc_seconds += pause
                n_gc += 1

            throughput.record(self.clock.now(), count=len(batch))
            if sampler is not None:
                for _ in batch:
                    sampler.maybe_sample(self.clock.now())

        result = self.checker.finalize()
        return OnlineRunReport(
            throughput=throughput,
            result=result,
            n_processed=len(schedule),
            n_gc_cycles=n_gc,
            gc_seconds=gc_seconds,
            wall_seconds=time.perf_counter() - wall_start,
            virtual_seconds=self.clock.now(),
            memory_samples=sampler.samples if sampler is not None else [],
        )

    def run_tracking(self, schedule: ArrivalSchedule) -> OnlineRunReport:
        """Arrival-paced run: exact virtual timing for EXT stability."""
        throughput = ThroughputSeries()
        sampler = self._make_sampler()
        wall_start = time.perf_counter()
        for arrival_time, txn in schedule:
            self.clock.advance_to(arrival_time)
            self.checker.receive(txn)
            throughput.record(self.clock.now())
            if sampler is not None:
                sampler.maybe_sample(self.clock.now())
        result = self.checker.finalize()
        return OnlineRunReport(
            throughput=throughput,
            result=result,
            n_processed=len(schedule),
            wall_seconds=time.perf_counter() - wall_start,
            virtual_seconds=self.clock.now(),
            memory_samples=sampler.samples if sampler is not None else [],
        )

    def run_memory_capped(
        self,
        schedule: ArrivalSchedule,
        *,
        max_bytes: int,
        check_every: int = 500,
    ) -> OnlineRunReport:
        """Fig 16 mode: GC whenever estimated memory exceeds a cap."""
        throughput = ThroughputSeries()
        sampler = MemorySampler(self.checker.estimated_bytes, every_n=check_every)
        gc_seconds = 0.0
        n_gc = 0
        wall_start = time.perf_counter()
        # Start the countdown one full window in so the very first
        # arrival triggers a sample (and GC decision): schedules shorter
        # than ``check_every`` still produce at least one memory sample.
        countdown = check_every
        for arrival_time, txn in schedule:
            self.clock.advance_to(arrival_time)
            t0 = time.perf_counter()
            self.checker.receive(txn)
            self.clock.advance(time.perf_counter() - t0)
            throughput.record(self.clock.now())
            countdown += 1
            if countdown >= check_every:
                countdown = 0
                sampler.force_sample(self.clock.now())
                if sampler.samples[-1][1] > max_bytes:
                    t_gc = time.perf_counter()
                    self.checker.collect_below(None)
                    pause = time.perf_counter() - t_gc
                    self.clock.advance(pause)
                    gc_seconds += pause
                    n_gc += 1
                    sampler.force_sample(self.clock.now())
        result = self.checker.finalize()
        return OnlineRunReport(
            throughput=throughput,
            result=result,
            n_processed=len(schedule),
            n_gc_cycles=n_gc,
            gc_seconds=gc_seconds,
            wall_seconds=time.perf_counter() - wall_start,
            virtual_seconds=self.clock.now(),
            memory_samples=sampler.samples,
        )

    # ------------------------------------------------------------------

    def _make_sampler(self) -> Optional[MemorySampler]:
        if self._memory_every is None:
            return None
        return MemorySampler(self.checker.estimated_bytes, every_n=self._memory_every)
