"""The history collector: database → timed arrival schedule.

The collector models the pipeline of Fig 3: committed transactions are
picked up from the database log in commit order, shipped to the checker
in batches (500 per batch in the paper), and each transaction inside a
batch suffers an individual network/processing delay.  Two constraints
shape the schedule:

- **session order is preserved** (§III-C1 assumes it): if a delay would
  reorder two transactions of one session, the later one is held back
  until just after its predecessor;
- batches leave at a fixed cadence derived from the offered arrival rate
  (``arrival_tps``), so a 500-txn batch at 25 000 TPS departs every
  20 ms.

The output is an :class:`ArrivalSchedule` — ``(arrival_time, txn)``
pairs sorted by time — consumed by the online runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.histories.model import History, Transaction
from repro.online.delays import DelayModel, NoDelay
from repro.util.rng import derive_rng

__all__ = ["ArrivalSchedule", "HistoryCollector"]

#: Minimum spacing injected between same-session arrivals when a delay
#: would otherwise invert them.
_SESSION_EPSILON = 1e-6


@dataclass
class ArrivalSchedule:
    """Timed arrivals, sorted by arrival time."""

    arrivals: List[Tuple[float, Transaction]]

    def __len__(self) -> int:
        return len(self.arrivals)

    def __iter__(self) -> Iterator[Tuple[float, Transaction]]:
        return iter(self.arrivals)

    @property
    def makespan(self) -> float:
        """Arrival time of the last transaction."""
        return self.arrivals[-1][0] if self.arrivals else 0.0

    def out_of_order_fraction(self) -> float:
        """Fraction of adjacent arrival pairs inverted w.r.t. commit_ts.

        A quick asynchrony measure used by tests: 0.0 for delay-free
        schedules, growing with the delay standard deviation.
        """
        if len(self.arrivals) < 2:
            return 0.0
        inversions = 0
        for (_, a), (_, b) in zip(self.arrivals, self.arrivals[1:]):
            if a.commit_ts > b.commit_ts:
                inversions += 1
        return inversions / (len(self.arrivals) - 1)


class HistoryCollector:
    """Builds arrival schedules from histories.

    Parameters
    ----------
    batch_size:
        Transactions per dispatched batch (paper: 500).
    arrival_tps:
        Offered load; sets the batch departure cadence.
    delay_model:
        Per-transaction delay within a batch (default: none).
    seed:
        Seed for the delay stream.
    """

    def __init__(
        self,
        *,
        batch_size: int = 500,
        arrival_tps: float = 25_000.0,
        delay_model: Optional[DelayModel] = None,
        seed: int = 2025,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if arrival_tps <= 0:
            raise ValueError("arrival_tps must be positive")
        self.batch_size = batch_size
        self.arrival_tps = arrival_tps
        self.delay_model = delay_model if delay_model is not None else NoDelay()
        self._rng: Random = derive_rng(seed, "collector")

    def schedule(self, history: History, *, start_time: float = 0.0) -> ArrivalSchedule:
        """Schedule an entire history (delivered in commit order)."""
        return self.schedule_transactions(history.by_commit_ts(), start_time=start_time)

    def iter_batches(
        self,
        transactions: Iterable[Transaction],
        *,
        start_time: float = 0.0,
    ) -> Iterator[Tuple[float, List[Transaction]]]:
        """Yield ``(departure_time, batch)`` pairs at the batch cadence.

        The streaming unit of the collector pipeline, before any
        per-transaction delay: batch *k* departs at
        ``start_time + k * batch_size / arrival_tps``.  The wire
        replayer (:mod:`repro.service.replay`) paces real submissions
        with exactly these departures; :meth:`schedule_transactions`
        layers the delay model on top to build simulated arrivals.
        """
        batch_interval = self.batch_size / self.arrival_tps
        batch: List[Transaction] = []
        index = 0
        for txn in transactions:
            batch.append(txn)
            if len(batch) >= self.batch_size:
                yield (start_time + index * batch_interval, batch)
                batch = []
                index += 1
        if batch:
            yield (start_time + index * batch_interval, batch)

    def schedule_transactions(
        self,
        transactions: Iterable[Transaction],
        *,
        start_time: float = 0.0,
    ) -> ArrivalSchedule:
        last_in_session: Dict[int, float] = {}
        arrivals: List[Tuple[float, Transaction]] = []

        for depart, batch in self.iter_batches(transactions, start_time=start_time):
            for position, txn in enumerate(batch):
                # The nano-scale spacing keeps a delay-free batch in exact
                # commit order once sorted; it is negligible against any
                # real delay model.
                arrival = (
                    depart
                    + position * 1e-9
                    + self.delay_model.delay_seconds(self._rng)
                )
                floor = last_in_session.get(txn.sid)
                if floor is not None and arrival <= floor:
                    arrival = floor + _SESSION_EPSILON
                last_in_session[txn.sid] = arrival
                arrivals.append((arrival, txn))

        # Stable sort keeps the session-order floors meaningful: equal
        # times preserve insertion (commit) order.
        arrivals.sort(key=lambda item: item[0])
        return ArrivalSchedule(arrivals)
