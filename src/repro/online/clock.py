"""A deterministic virtual clock.

The online checkers take a ``clock`` callable (defaulting to
:func:`time.monotonic`); experiments inject a :class:`SimClock` instead
so EXT timeouts, flip-flop timing, and rectify-time histograms are exact
functions of the configured delays rather than host scheduling noise.
"""

from __future__ import annotations

__all__ = ["SimClock"]


class SimClock:
    """Monotonic virtual time in (fractional) seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; negative advances are rejected."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance to an absolute time (no-op if already past it)."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now
