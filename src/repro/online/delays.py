"""Per-transaction delay models (§VI-C).

"As the history collector delivers transactions to the checker in
batches (500 transactions per batch), we introduce artificial random
delays for each transaction within each batch, following a normal
distribution, to mimic asynchrony."

Delays are expressed in **milliseconds** (as in the paper's N(100, 10²))
and converted to seconds on the schedule; negative samples clamp to 0.
"""

from __future__ import annotations

from random import Random
from typing import Protocol

__all__ = ["DelayModel", "NoDelay", "NormalDelay"]


class DelayModel(Protocol):
    """Draws one delay (in seconds) per delivered transaction."""

    def delay_seconds(self, rng: Random) -> float:
        ...


class NoDelay:
    """Perfectly synchronous delivery."""

    def delay_seconds(self, rng: Random) -> float:
        return 0.0


class NormalDelay:
    """N(mean_ms, std_ms²) millisecond delays, clamped at zero."""

    def __init__(self, mean_ms: float = 100.0, std_ms: float = 10.0) -> None:
        if std_ms < 0:
            raise ValueError("std_ms must be >= 0")
        self.mean_ms = mean_ms
        self.std_ms = std_ms

    def delay_seconds(self, rng: Random) -> float:
        sample = rng.gauss(self.mean_ms, self.std_ms) if self.std_ms > 0 else self.mean_ms
        return max(0.0, sample) / 1000.0

    def __repr__(self) -> str:
        return f"NormalDelay(N({self.mean_ms:g}, {self.std_ms:g}²) ms)"
