"""The chaos campaign runner: fault-scheduled live checking.

The online analogue of the paper's §V-D fault experiments — a Jepsen-
style loop for the timestamp-based checkers.  One campaign drives a
live simulated :class:`~repro.db.engine.Database` workload, ships its
CDC feed through a WAL file tailed by
:class:`~repro.db.cdc.WalTailer`, and streams the transactions into a
real checker daemon over the v2 wire — while a seeded
:class:`~repro.chaos.schedule.CampaignSchedule` injects connection
kills, hard daemon restarts, slow-network pauses, clock-skew bursts,
and history-level mutations with ground-truth labels.

The campaign then asserts, in its :class:`CampaignReport`:

- every injected fault label is flagged by its matching axiom;
- every skew-burst segment is flagged;
- no *clean* window produces a violation (zero false positives after
  attributing each violation to a label, a burst, or fault collateral);
- the daemon's final verdicts match an in-process reference checker run
  over the exact stream the daemon acked (the service layer neither
  lost, duplicated, nor invented anything);
- every scheduled daemon restart completed with client-transparent
  resume (the workload client never saw an error).

Restart semantics: a hard-killed daemon loses all state, so the runner
plays supervisor — it boots the successor on the same port and re-feeds
the acked prefix through a separate catch-up connection *before* the
workload client's auto-resume touches the new daemon.  The workload
client then reconnects, is handed a fresh session, and replays only its
unacked tail: between the two, the new daemon sees exactly the full
history once.
"""

from __future__ import annotations

import json
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from random import Random
from typing import Any, Dict, IO, List, Optional, Set, Tuple

from repro.chaos.schedule import CampaignSchedule
from repro.core.reference import normalize_violations
from repro.core.violations import CheckResult
from repro.db.cdc import WalTailer
from repro.db.engine import Database, IsolationLevel
from repro.db.faults import LiveFaultInjector, SkewedOracle
from repro.db.oracle import CentralizedOracle
from repro.histories.model import INIT_TID, Transaction
from repro.histories.serialization import txn_to_dict
from repro.service.client import CheckerClient
from repro.service.config import ServiceConfig
from repro.service.daemon import ServiceThread
from repro.workloads.driver import InterleavedDriver, TxnProgram

__all__ = ["CampaignRunner", "CampaignReport", "LabelOutcome"]


@dataclass
class LabelOutcome:
    """One injected mutation label and whether its axiom flagged it."""

    axiom: str
    tids: Tuple[int, ...]
    key: str
    segment: int
    detected: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "axiom": self.axiom,
            "tids": list(self.tids),
            "key": self.key,
            "segment": self.segment,
            "detected": self.detected,
        }


@dataclass
class CampaignReport:
    """Everything a chaos run proved (or failed to prove)."""

    seed: int
    checker: str
    level: str
    segments: int
    txns_sent: int
    processed: int
    violations_total: int
    labels: List[LabelOutcome]
    skipped_mutations: List[str]
    bursts: List[Dict[str, Any]]
    attributions: Dict[str, int]
    false_positives: List[str]
    restarts_scheduled: int
    restarts_completed: int
    kills_scheduled: int
    kills_armed: int
    pauses_scheduled: int
    reconnects: int
    replayed_batches: int
    recovered_acks: int
    daemon_sessions: Dict[str, Any]
    reference_match: bool
    duration_s: float = 0.0

    @property
    def labels_detected(self) -> int:
        return sum(1 for label in self.labels if label.detected)

    @property
    def bursts_detected(self) -> int:
        return sum(1 for burst in self.bursts if burst["detected"])

    @property
    def ok(self) -> bool:
        """The campaign's gate: detection complete, zero false alarms,
        resume genuinely transparent."""
        return (
            self.labels_detected == len(self.labels)
            and self.bursts_detected == len(self.bursts)
            and not self.false_positives
            and self.reference_match
            and self.restarts_completed == self.restarts_scheduled
            and self.reconnects >= self.kills_armed + self.restarts_completed
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "checker": self.checker,
            "level": self.level,
            "segments": self.segments,
            "txns_sent": self.txns_sent,
            "processed": self.processed,
            "violations_total": self.violations_total,
            "labels": [label.to_dict() for label in self.labels],
            "labels_detected": self.labels_detected,
            "skipped_mutations": list(self.skipped_mutations),
            "bursts": list(self.bursts),
            "attributions": dict(self.attributions),
            "false_positives": list(self.false_positives),
            "restarts": {
                "scheduled": self.restarts_scheduled,
                "completed": self.restarts_completed,
            },
            "kills": {"scheduled": self.kills_scheduled, "armed": self.kills_armed},
            "pauses_scheduled": self.pauses_scheduled,
            "resume": {
                "reconnects": self.reconnects,
                "replayed_batches": self.replayed_batches,
                "recovered_acks": self.recovered_acks,
            },
            "daemon_sessions": dict(self.daemon_sessions),
            "reference_match": self.reference_match,
            "duration_s": round(self.duration_s, 3),
        }

    def summary(self) -> str:
        lines = [
            f"chaos campaign: seed={self.seed} checker={self.checker} "
            f"segments={self.segments} ({self.duration_s:.1f}s)",
            f"  stream: {self.txns_sent} txns sent, {self.processed} processed, "
            f"{self.violations_total} violations",
            f"  mutations: {self.labels_detected}/{len(self.labels)} labels detected"
            + (
                f" ({len(self.skipped_mutations)} found no target)"
                if self.skipped_mutations
                else ""
            ),
            f"  skew bursts: {self.bursts_detected}/{len(self.bursts)} detected",
            f"  clean windows: {len(self.false_positives)} false positives",
            f"  faults ridden out: {self.restarts_completed}/{self.restarts_scheduled} "
            f"daemon restarts, {self.kills_armed} connection kills, "
            f"{self.pauses_scheduled} slow-network pauses",
            f"  resume: {self.reconnects} reconnects, "
            f"{self.replayed_batches} batches replayed, "
            f"{self.recovered_acks} lost acks recovered, "
            f"{self.daemon_sessions.get('deduped_txns', 0)} txns deduped by the daemon",
            f"  reference differential: "
            f"{'match' if self.reference_match else 'MISMATCH'}",
            f"  verdict: {'PASS' if self.ok else 'FAIL'}",
        ]
        return "\n".join(lines)


class CampaignRunner:
    """Execute one :class:`CampaignSchedule` against a live stack.

    Everything randomized derives from the schedule's seed — workload
    programs, interleavings, skew draws, mutation targets, kill frame
    offsets — so a campaign re-runs reproducibly from the seed alone.
    """

    def __init__(
        self,
        schedule: CampaignSchedule,
        *,
        level: str = "si",
        n_shards: int = 1,
        shard_executor: str = "serial",
        n_sessions: int = 4,
        n_keys: int = 12,
        txns_per_segment: int = 40,
        batch_size: int = 8,
        pause_ms: float = 25.0,
        wal_path: Optional[Path] = None,
    ) -> None:
        self.schedule = schedule
        self.level = level
        self.n_shards = n_shards
        self.shard_executor = shard_executor
        self.n_sessions = n_sessions
        self.n_keys = n_keys
        self.txns_per_segment = txns_per_segment
        self.batch_size = batch_size
        self.pause_ms = pause_ms
        self.wal_path = wal_path

    # ------------------------------------------------------------------

    def _service_config(self, port: int) -> ServiceConfig:
        # timeout=inf keeps verdicts independent of wall-clock: nothing
        # EXT-finalizes early during a pause or restart, so the same
        # seed yields the same verdicts on a loaded CI box.
        return ServiceConfig(
            port=port,
            level=self.level,
            n_shards=self.n_shards,
            shard_executor=self.shard_executor,
            timeout=float("inf"),
            protocol="v2",
        )

    def _factory(self, sid: int, rng: Any) -> TxnProgram:
        program = TxnProgram()
        for _ in range(rng.randint(2, 4)):
            key = f"k{rng.randrange(self.n_keys)}"
            if rng.random() < 0.5:
                program.read(key)
            else:
                program.write(key, rng.randrange(1_000_000))
        return program

    def _restart_daemon(
        self, handle: ServiceThread, port: int, sent: List[Transaction]
    ) -> ServiceThread:
        """Hard-kill the daemon, boot a successor on the same port, and
        re-feed the acked prefix before the workload client returns."""
        handle.kill()
        successor = ServiceThread(self._service_config(port)).start()
        catchup = CheckerClient("127.0.0.1", port, protocol=2)
        catchup.connect(retry_for=10.0)
        for start in range(0, len(sent), 500):
            catchup.submit_many(sent[start : start + 500])
        catchup.drain()
        catchup.close()
        return successor

    def _reference_result(self, sent: List[Transaction]) -> CheckResult:
        checker = self._service_config(port=0).build_checker(clock=lambda: 0.0)
        checker.receive_many(sent)
        return checker.finalize()

    # ------------------------------------------------------------------

    def run(self) -> CampaignReport:
        started = time.monotonic()
        schedule = self.schedule
        scheduled = schedule.counts()

        oracle = SkewedOracle(
            CentralizedOracle(),
            probability=0.0,
            stride=16,
            rng=Random(schedule.seed ^ 0x5EED),
        )
        database = Database(oracle, isolation=IsolationLevel(self.level))
        if self.wal_path is not None:
            wal_path = Path(self.wal_path)
            wal_file: IO[str] = wal_path.open("a", encoding="utf-8")
            wal_is_temp = False
        else:
            tmp = tempfile.NamedTemporaryFile(
                "a", suffix=".wal", prefix="repro-chaos-", delete=False, encoding="utf-8"
            )
            wal_path, wal_file = Path(tmp.name), tmp
            wal_is_temp = True

        def ship(record: Any) -> None:
            wal_file.write(
                "COMMIT "
                + json.dumps(txn_to_dict(record.to_transaction()), separators=(",", ":"))
                + "\n"
            )
            wal_file.flush()

        database.cdc.subscribe(ship)
        database.initialize(f"k{i}" for i in range(self.n_keys))
        tailer = WalTailer(wal_path)
        driver = InterleavedDriver(database, self.n_sessions, seed=schedule.seed ^ 0xD81)
        injector = LiveFaultInjector(seed=schedule.seed ^ 0x1AB)

        handle = ServiceThread(self._service_config(port=0)).start()
        host, port = handle.tcp_address
        client = CheckerClient(host, port, auto_resume=True, reconnect_timeout=15.0)
        client.connect()

        sent: List[Transaction] = []
        labels: List[LabelOutcome] = []
        skipped: List[str] = []
        bursts: List[Dict[str, Any]] = []
        burst_members: List[Tuple[Set[int], Set[int]]] = []  # (tids, sids) per burst
        burst_tids: Set[int] = set()
        burst_sids: Set[int] = set()
        burst_keys: Set[str] = set()
        label_tids: Set[int] = set()
        label_keys: Set[str] = set()
        kills_armed = 0
        restarts_completed = 0

        try:
            for segment in range(schedule.segments):
                events = schedule.events_for(segment)
                kinds = [event.kind for event in events]

                if "restart" in kinds:
                    handle = self._restart_daemon(handle, port, sent)
                    restarts_completed += 1

                burst = "skew_burst" in kinds
                oracle.probability = 1.0 if burst else 0.0
                driver.run(self._factory, self.txns_per_segment)
                batch = tailer.poll()

                seg_tids: Set[int] = set()
                seg_sids: Set[int] = set()
                for txn in batch:
                    if burst and txn.tid != INIT_TID:
                        seg_tids.add(txn.tid)
                        seg_sids.add(txn.sid)
                        burst_keys.update(txn.write_keys)
                if burst:
                    burst_tids |= seg_tids
                    burst_sids |= seg_sids
                    burst_members.append((seg_tids, seg_sids))
                    bursts.append(
                        {"segment": segment, "txns": len(seg_tids), "detected": False}
                    )

                for event in events:
                    if event.kind != "mutate":
                        continue
                    label = injector.inject(event.arg, batch)
                    if label is None:
                        skipped.append(event.arg)
                        continue
                    labels.append(
                        LabelOutcome(
                            axiom=label.axiom.value,
                            tids=label.tids,
                            key=label.key,
                            segment=segment,
                        )
                    )
                    label_tids.update(label.tids)
                    if label.key:
                        label_keys.add(label.key)
                injector.observe(batch)

                chunks = [
                    batch[start : start + self.batch_size]
                    for start in range(0, len(batch), self.batch_size)
                ]
                # Distinct offsets per segment: two kills collapsing on
                # one frame would sever the connection once but be
                # counted twice, and the resume gate would then demand a
                # reconnect that never needed to happen.  Same reason
                # offset 0 is off-limits in a restart segment — the
                # first frame after a restart finds a dead socket
                # already, so a kill there coalesces with the restart's
                # own reconnect.
                armed_offsets: Set[int] = set()
                if "restart" in kinds and chunks:
                    armed_offsets.add(0)
                for event in events:
                    if event.kind == "kill" and chunks:
                        offset = int(event.arg or 0) % len(chunks)
                        while offset in armed_offsets and len(armed_offsets) < len(chunks):
                            offset = (offset + 1) % len(chunks)
                        if offset in armed_offsets:
                            continue  # more kills than frames this segment
                        armed_offsets.add(offset)
                        client.chaos_kill_frames.add(client.frames_sent + 1 + offset)
                        kills_armed += 1
                pause = "pause" in kinds
                for chunk in chunks:
                    client.submit_many(chunk)
                    sent.extend(chunk)
                    if pause:
                        time.sleep(self.pause_ms / 1000.0)

            result = client.finalize()
            stats = client.stats(include_bytes=False)
        finally:
            client.close()
            handle.stop()
            wal_file.close()
            if wal_is_temp:
                try:
                    wal_path.unlink()
                except OSError:
                    pass

        # ------------------------------------------------------------------
        # Attribution: every violation must trace back to an injected
        # fault (mutation label, skew burst, or their collateral on the
        # same keys/sessions); anything left is a false positive.
        # ------------------------------------------------------------------

        def violation_tids(violation: Any) -> Set[int]:
            tids = {violation.tid}
            tids.update(getattr(violation, "conflicting_tids", ()) or ())
            return tids

        attributions = {"mutation": 0, "skew": 0, "collateral": 0, "false_positive": 0}
        false_positives: List[str] = []
        for violation in result.violations:
            tids = violation_tids(violation)
            sid = getattr(violation, "sid", None)
            key = getattr(violation, "key", "")
            if tids & label_tids:
                attributions["mutation"] += 1
            elif tids & burst_tids or (sid is not None and sid in burst_sids):
                attributions["skew"] += 1
                for burst_row, (member_tids, member_sids) in zip(bursts, burst_members):
                    if tids & member_tids or (sid is not None and sid in member_sids):
                        burst_row["detected"] = True
            elif key and (key in label_keys or key in burst_keys):
                attributions["collateral"] += 1
            else:
                attributions["false_positive"] += 1
                false_positives.append(str(violation))

        for label in labels:
            label.detected = any(
                violation.axiom.value == label.axiom
                and violation_tids(violation) & set(label.tids)
                for violation in result.violations
            )

        reference = self._reference_result(sent)
        reference_match = normalize_violations(reference) == normalize_violations(result)

        return CampaignReport(
            seed=schedule.seed,
            checker=self._service_config(port=0).checker_kind,
            level=self.level,
            segments=schedule.segments,
            txns_sent=len(sent),
            processed=stats["processed"],
            violations_total=len(result.violations),
            labels=labels,
            skipped_mutations=skipped,
            bursts=bursts,
            attributions=attributions,
            false_positives=false_positives,
            restarts_scheduled=scheduled.get("restart", 0),
            restarts_completed=restarts_completed,
            kills_scheduled=scheduled.get("kill", 0),
            kills_armed=kills_armed,
            pauses_scheduled=scheduled.get("pause", 0),
            reconnects=client.reconnects,
            replayed_batches=client.replayed_batches,
            recovered_acks=client.recovered_acks,
            daemon_sessions=stats.get("sessions", {}),
            reference_match=reference_match,
            duration_s=time.monotonic() - started,
        )
