"""Chaos campaigns: fault-scheduled live checking of a daemon.

See :mod:`repro.chaos.schedule` for the declarative fault schedule and
:mod:`repro.chaos.campaign` for the runner and its report — or run one
from the CLI with ``python -m repro chaos --seed N``.
"""

from repro.chaos.campaign import CampaignReport, CampaignRunner, LabelOutcome
from repro.chaos.schedule import CampaignSchedule, FaultEvent

__all__ = [
    "CampaignRunner",
    "CampaignReport",
    "CampaignSchedule",
    "FaultEvent",
    "LabelOutcome",
]
