"""Declarative, seeded fault schedules for chaos campaigns.

A :class:`CampaignSchedule` divides a campaign into numbered *segments*
(one workload round each) and pins :class:`FaultEvent`\\ s to segments.
Schedules are pure data: :meth:`CampaignSchedule.generate` derives one
deterministically from a seed, and ``to_dict``/``from_dict`` round-trip
the JSON file format, so a campaign can be re-run bit-for-bit from
either a seed or a saved schedule file (``repro chaos --schedule``).

Event kinds, applied by :class:`~repro.chaos.campaign.CampaignRunner`:

- ``kill`` — sever the workload client's connection after ``arg`` more
  submit frames; the client must resume transparently (exactly-once).
- ``restart`` — hard-kill the daemon (no drain, no finalize) and boot a
  fresh one on the same port; a supervisor re-feeds the acked prefix,
  then the client resumes.
- ``pause`` — slow network: sleep between this segment's sub-batches.
- ``skew_burst`` — the engine's :class:`~repro.db.faults.SkewedOracle`
  skews every timestamp it issues during this segment (clock-skew bug
  class, YugabyteDB v2.17.1.0).
- ``mutate`` — corrupt this segment's CDC batch with one
  axiom-targeted :class:`~repro.db.faults.LiveFaultInjector` fault;
  ``arg`` names the fault class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Any, Dict, List, Optional

from repro.db.faults import LiveFaultInjector

__all__ = ["FaultEvent", "CampaignSchedule", "EVENT_KINDS"]

#: Valid event kinds, in the order they apply within one segment.
EVENT_KINDS = ("restart", "skew_burst", "mutate", "kill", "pause")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: a kind pinned to a segment.

    ``arg`` is kind-specific: the fault class for ``mutate``, the
    sub-batch offset for ``kill``, unused otherwise.
    """

    segment: int
    kind: str
    arg: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.segment < 0:
            raise ValueError("segment must be >= 0")
        if self.kind == "mutate" and self.arg not in LiveFaultInjector.CLASSES:
            raise ValueError(f"unknown mutation class {self.arg!r}")

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"segment": self.segment, "kind": self.kind}
        if self.arg is not None:
            data["arg"] = self.arg
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        return cls(
            segment=int(data["segment"]), kind=data["kind"], arg=data.get("arg")
        )


@dataclass
class CampaignSchedule:
    """A seeded, reproducible fault plan over ``segments`` segments."""

    segments: int
    events: List[FaultEvent] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.segments < 1:
            raise ValueError("segments must be >= 1")
        for event in self.events:
            if event.segment >= self.segments:
                raise ValueError(
                    f"event {event} is beyond the last segment {self.segments - 1}"
                )

    def events_for(self, segment: int) -> List[FaultEvent]:
        """This segment's events, in application order."""
        mine = [event for event in self.events if event.segment == segment]
        mine.sort(key=lambda event: EVENT_KINDS.index(event.kind))
        return mine

    def counts(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for event in self.events:
            totals[event.kind] = totals.get(event.kind, 0) + 1
        return totals

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "segments": self.segments,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSchedule":
        return cls(
            segments=int(data["segments"]),
            events=[FaultEvent.from_dict(item) for item in data.get("events", [])],
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        segments: int = 8,
        kills: int = 2,
        restarts: int = 1,
        pauses: int = 1,
        skew_bursts: int = 1,
        mutations: int = 3,
    ) -> "CampaignSchedule":
        """Derive a schedule deterministically from ``seed``.

        Restarts land in distinct segments after the first (so the new
        daemon always has an acked prefix to be re-fed).  Mutations
        avoid segment 0 (the ``noconflict`` class needs an established
        last-writer map) and avoid skew-burst segments: a burst
        scrambles the segment's commit order, so order-sensitive
        mutations there cascade session/interval violations onto
        unlabelled transactions and the ground-truth label can no
        longer be attributed precisely.  Kills and pauses may land
        anywhere, including on top of each other.
        """
        if segments < 2:
            raise ValueError("a campaign needs at least 2 segments")
        if restarts > segments - 1:
            raise ValueError(
                f"{restarts} restarts do not fit in {segments - 1} eligible segments"
            )
        rng = Random(seed)
        events: List[FaultEvent] = []
        restart_pool = list(range(1, segments))
        rng.shuffle(restart_pool)
        for segment in sorted(restart_pool[:restarts]):
            events.append(FaultEvent(segment, "restart"))
        for _ in range(kills):
            events.append(FaultEvent(rng.randrange(segments), "kill", rng.randrange(4)))
        for _ in range(pauses):
            events.append(FaultEvent(rng.randrange(segments), "pause"))
        burst_segments = set()
        for _ in range(skew_bursts):
            segment = rng.randrange(segments)
            burst_segments.add(segment)
            events.append(FaultEvent(segment, "skew_burst"))
        mutation_pool = [
            segment for segment in range(1, segments) if segment not in burst_segments
        ] or list(range(1, segments))
        for index in range(mutations):
            fault = LiveFaultInjector.CLASSES[index % len(LiveFaultInjector.CLASSES)]
            events.append(FaultEvent(rng.choice(mutation_pool), "mutate", fault))
        events.sort(key=lambda event: (event.segment, EVENT_KINDS.index(event.kind)))
        return cls(segments=segments, events=events, seed=seed)
