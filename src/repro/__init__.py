"""repro — online timestamp-based transactional isolation checking.

A from-scratch Python reproduction of "Online Timestamp-based
Transactional Isolation Checking of Database Systems" (ICDE 2025):

- :mod:`repro.core` — the Chronos offline and Aion online SI/SER checkers;
- :mod:`repro.db` — a simulated MVCC database substrate (Algorithm 1);
- :mod:`repro.workloads` — Table I, Twitter, RUBiS, TPC-C, list workloads;
- :mod:`repro.baselines` — Elle, Emme-SI, PolySI, Viper, Cobra comparators;
- :mod:`repro.online` — collector, virtual clock, online experiment runner;
- :mod:`repro.bench` — the per-figure experiment harness.

Quickstart::

    from repro import Chronos, HistoryBuilder, read, write

    b = HistoryBuilder(keys=["x"])
    b.txn(sid=1, ops=[write("x", 1)])
    b.txn(sid=2, ops=[read("x", 1)])
    result = Chronos().check(b.build())
    assert result.is_valid
"""

from repro.core import (
    Aion,
    AionConfig,
    AionSer,
    Axiom,
    CheckResult,
    Chronos,
    ChronosSer,
    GcMode,
    ShardedAion,
    Violation,
)
from repro.histories import (
    History,
    HistoryBuilder,
    Operation,
    OpKind,
    Transaction,
    append,
    load_history,
    read,
    read_list,
    save_history,
    write,
)

__version__ = "1.0.0"

__all__ = [
    "Aion",
    "AionConfig",
    "AionSer",
    "Axiom",
    "CheckResult",
    "Chronos",
    "ChronosSer",
    "GcMode",
    "History",
    "HistoryBuilder",
    "OpKind",
    "Operation",
    "ShardedAion",
    "Transaction",
    "Violation",
    "append",
    "load_history",
    "read",
    "read_list",
    "save_history",
    "write",
    "__version__",
]
