"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``  — run a workload through the simulated database and write
                the collected history to a JSONL file;
``check``     — check a history file for SI or SER, offline (Chronos) or
                online (Aion, with a simulated asynchronous collector);
``inject``    — corrupt a history file with labelled faults (for testing
                checkers against known-bad inputs);
``stats``     — print a history file's descriptive statistics;
``serve``     — run the online checker as a long-lived daemon speaking
                the ndjson wire protocol (see :mod:`repro.service`);
``replay``    — stream a history file, WAL capture, anomaly fixture, or
                generated workload into a running daemon;
``chaos``     — run a seeded chaos campaign: live workload + daemon
                under scheduled faults, asserting every injected fault
                is detected and no clean window raises an alarm.

Examples
--------
::

    python -m repro generate --txns 10000 --out history.jsonl
    python -m repro check history.jsonl --level si
    python -m repro check history.jsonl --level ser --online
    python -m repro check history.jsonl --online --shards 4 --batch-size 500
    python -m repro inject history.jsonl --faults 5 --out bad.jsonl
    python -m repro check bad.jsonl
    python -m repro serve --port 7401 --shards 4
    python -m repro replay --history history.jsonl --port 7401
    python -m repro replay --anomaly dirty-read --port 7401 \\
        --expect violation --shutdown
    python -m repro chaos --seed 7 --segments 6
    python -m repro chaos --seed 7 --save-schedule plan.json
    python -m repro chaos --schedule plan.json --json
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.core.aion import Aion, AionConfig
from repro.core.aion_ser import AionSer
from repro.core.chronos import Chronos
from repro.core.chronos_ser import ChronosSer
from repro.core.sharded import ShardedAion
from repro.db.faults import HistoryFaultInjector, SkewedOracle
from repro.db.oracle import CentralizedOracle
from repro.histories.serialization import load_history, save_history
from repro.histories.stats import HistoryStats
from repro.online.clock import SimClock
from repro.online.collector import HistoryCollector
from repro.online.delays import NormalDelay
from repro.online.runner import OnlineRunner
from repro.workloads.generator import generate_default_history
from repro.workloads.list_workload import generate_list_history
from repro.workloads.rubis import generate_rubis_history
from repro.workloads.spec import WorkloadSpec
from repro.workloads.tpcc import generate_tpcc_history
from repro.workloads.twitter import generate_twitter_history

__all__ = ["main"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Online timestamp-based transactional isolation checking",
    )
    commands = parser.add_subparsers(required=True)

    generate = commands.add_parser("generate", help="generate a history file")
    generate.add_argument("--workload", default="default",
                          choices=["default", "list", "twitter", "rubis", "tpcc"])
    generate.add_argument("--txns", type=int, default=10_000)
    generate.add_argument("--sessions", type=int, default=24)
    generate.add_argument("--ops-per-txn", type=int, default=15)
    generate.add_argument("--read-ratio", type=float, default=0.5)
    generate.add_argument("--keys", type=int, default=1000)
    generate.add_argument("--distribution", default="zipfian",
                          choices=["uniform", "zipfian", "hotspot"])
    generate.add_argument("--isolation", default="si", choices=["si", "ser"])
    generate.add_argument("--seed", type=int, default=2025)
    generate.add_argument("--clock-skew", type=float, default=0.0,
                          help="probability of a skewed timestamp (bug injection)")
    generate.add_argument("--out", required=True)
    generate.set_defaults(handler=_cmd_generate)

    check = commands.add_parser("check", help="check a history file")
    check.add_argument("history")
    check.add_argument("--level", default="si", choices=["si", "ser"])
    check.add_argument("--online", action="store_true",
                       help="use the online checker with a simulated collector")
    check.add_argument("--timeout", type=float, default=5.0,
                       help="EXT re-checking timeout in (virtual) seconds")
    check.add_argument("--delay-mean-ms", type=float, default=100.0)
    check.add_argument("--delay-std-ms", type=float, default=10.0)
    check.add_argument("--max-report", type=int, default=10)
    check.add_argument("--shards", type=int, default=1,
                       help="hash-partition the online SI checker's state across "
                            "N shards (requires --online --level si)")
    check.add_argument("--batch-size", type=int, default=0,
                       help="feed the online checker batches of this size via "
                            "receive_many (0 = per-transaction ingestion)")
    check.set_defaults(handler=_cmd_check)

    inject = commands.add_parser("inject", help="inject labelled faults")
    inject.add_argument("history")
    inject.add_argument("--faults", type=int, default=5)
    inject.add_argument("--seed", type=int, default=0)
    inject.add_argument("--out", required=True)
    inject.set_defaults(handler=_cmd_inject)

    stats = commands.add_parser(
        "stats", help="describe a history file or a running daemon")
    stats.add_argument("history", nargs="?", default=None,
                       help="JSONL history file (omit to query a daemon)")
    stats.add_argument("--host", default="127.0.0.1")
    stats.add_argument("--port", type=int, default=None,
                       help="query a running daemon's STATS over the wire")
    stats.add_argument("--unix", default=None, metavar="PATH",
                       help="query the daemon via unix socket instead of TCP")
    stats.add_argument("--json", action="store_true",
                       help="print the raw STATS payload as JSON")
    stats.set_defaults(handler=_cmd_stats)

    serve = commands.add_parser("serve", help="run the checker daemon")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7401,
                       help="TCP port to listen on (0 = ephemeral)")
    serve.add_argument("--no-tcp", action="store_true",
                       help="disable the TCP listener (requires --unix)")
    serve.add_argument("--unix", default=None, metavar="PATH",
                       help="also listen on a unix socket at PATH")
    serve.add_argument("--level", default="si", choices=["si", "ser"])
    serve.add_argument("--shards", type=int, default=1,
                       help="shard the SI checker's state across N shards")
    serve.add_argument("--executor", default="serial",
                       choices=["serial", "process", "shm-process"],
                       help="how sharded batches execute (process = pickled "
                       "pipe worker pool, shm-process = shared-memory lanes)")
    serve.add_argument("--lane-kb", type=int, default=1024, metavar="KB",
                       help="shared-memory lane ring capacity per shard in "
                       "KiB (shm-process only; frames over half this fall "
                       "back to the pipe path)")
    serve.add_argument("--timeout", type=float, default=5.0,
                       help="EXT re-checking timeout in seconds ('inf' disables)")
    serve.add_argument("--queue-capacity", type=int, default=10_000,
                       help="ingest queue bound (transactions); full = backpressure")
    serve.add_argument("--batch-size", type=int, default=500,
                       help="max transactions per receive_many drain cycle")
    serve.add_argument("--gc-threshold", type=int, default=0,
                       help="collect when this many transactions are resident (0 = off)")
    serve.add_argument("--protocol", default="v2", choices=["v1", "v2"],
                        help="highest wire protocol to offer (v2 frames "
                        "still accept ndjson; v1 pins ndjson only)")
    serve.add_argument("--gc-keep-recent", type=int, default=None,
                       help="residents spared per GC cycle (default: half the threshold)")
    serve.add_argument("--http-port", type=int, default=None, metavar="PORT",
                       help="serve /metrics, /health and /stats over HTTP on "
                       "this port (0 = ephemeral; default: disabled)")
    serve.add_argument("--slow-batch-ms", type=float, default=None, metavar="MS",
                       help="trace any receive_many call slower than MS "
                       "milliseconds (structured record to stderr)")
    serve.add_argument("--kernel-sample-every", type=int, default=16, metavar="N",
                       help="sample per-stage kernel wall times every Nth "
                       "batch (0 = off)")
    serve.add_argument("--stats-bytes-ttl", type=float, default=2.0, metavar="S",
                       help="seconds the deep-sizeof byte estimate stays "
                       "cached between STATS/metrics requests")
    serve.set_defaults(handler=_cmd_serve)

    replay = commands.add_parser("replay", help="stream a history into a daemon")
    source = replay.add_mutually_exclusive_group(required=True)
    source.add_argument("--history", metavar="FILE", help="JSONL history file")
    source.add_argument("--wal", metavar="FILE", help="textual WAL capture")
    source.add_argument("--anomaly", metavar="NAME",
                        help="a fixture from histories/anomalies.py (e.g. dirty-read)")
    source.add_argument("--generate", type=int, metavar="N",
                        help="generate an N-transaction default workload")
    replay.add_argument("--host", default="127.0.0.1")
    replay.add_argument("--port", type=int, default=7401)
    replay.add_argument("--unix", default=None, metavar="PATH",
                        help="connect via unix socket instead of TCP")
    replay.add_argument("--batch-size", type=int, default=500)
    replay.add_argument("--rate", type=float, default=None, metavar="TPS",
                        help="pace submission at this offered load (default: flat out)")
    replay.add_argument("--no-ack", action="store_true",
                        help="fire-and-forget submission (TCP backpressure only)")
    replay.add_argument("--seed", type=int, default=2025,
                        help="workload seed for --generate")
    replay.add_argument("--connect-timeout", type=float, default=10.0,
                        help="seconds to keep retrying the initial connection")
    replay.add_argument("--protocol", default="auto", choices=["auto", "v1", "v2"],
                        help="wire codec: auto negotiates the highest the "
                        "daemon offers, v1 pins ndjson, v2 requires frames")
    replay.add_argument("--shutdown", action="store_true",
                        help="shut the daemon down after the replay (graceful drain)")
    replay.add_argument("--expect", default="any",
                        choices=["any", "valid", "violation"],
                        help="exit 0 only if the final verdict matches")
    replay.add_argument("--max-report", type=int, default=10)
    replay.set_defaults(handler=_cmd_replay)

    chaos = commands.add_parser(
        "chaos", help="run a fault-scheduled chaos campaign against a live daemon")
    chaos.add_argument("--seed", type=int, default=2025,
                       help="campaign seed; everything randomized derives from it")
    chaos.add_argument("--segments", type=int, default=8,
                       help="workload rounds in the campaign")
    chaos.add_argument("--txns-per-segment", type=int, default=40)
    chaos.add_argument("--sessions", type=int, default=4,
                       help="concurrent database sessions in the workload")
    chaos.add_argument("--keys", type=int, default=12)
    chaos.add_argument("--level", default="si", choices=["si", "ser"])
    chaos.add_argument("--shards", type=int, default=1,
                       help="shard the daemon's SI checker across N shards")
    chaos.add_argument("--executor", default="serial",
                       choices=["serial", "process", "shm-process"],
                       help="shard executor for the daemon under test")
    chaos.add_argument("--kills", type=int, default=2,
                       help="scheduled connection kills (client must resume)")
    chaos.add_argument("--restarts", type=int, default=1,
                       help="scheduled hard daemon restarts")
    chaos.add_argument("--pauses", type=int, default=1,
                       help="scheduled slow-network segments")
    chaos.add_argument("--skew-bursts", type=int, default=1,
                       help="scheduled clock-skew burst segments")
    chaos.add_argument("--mutations", type=int, default=3,
                       help="scheduled history-level fault injections")
    chaos.add_argument("--pause-ms", type=float, default=25.0,
                       help="inter-batch sleep during a pause segment")
    chaos.add_argument("--batch-size", type=int, default=8,
                       help="transactions per submit frame")
    chaos.add_argument("--schedule", metavar="FILE", default=None,
                       help="run a saved schedule file instead of generating "
                       "one (ignores the fault-count flags)")
    chaos.add_argument("--save-schedule", metavar="FILE", default=None,
                       help="write the generated schedule as JSON and exit")
    chaos.add_argument("--json", action="store_true",
                       help="print the full report as JSON instead of a summary")
    chaos.add_argument("--report", metavar="FILE", default=None,
                       help="also write the JSON report to FILE")
    chaos.set_defaults(handler=_cmd_chaos)

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.db.engine import IsolationLevel

    isolation = IsolationLevel.SI if args.isolation == "si" else IsolationLevel.SER
    oracle = None
    if args.clock_skew > 0:
        oracle = SkewedOracle(CentralizedOracle(), probability=args.clock_skew)

    t0 = time.perf_counter()
    if args.workload in ("default", "list"):
        spec = WorkloadSpec(
            n_sessions=args.sessions,
            n_transactions=args.txns,
            ops_per_txn=args.ops_per_txn,
            read_ratio=args.read_ratio,
            n_keys=args.keys,
            distribution=args.distribution,
            isolation=isolation,
            seed=args.seed,
        )
        generator = generate_default_history if args.workload == "default" else generate_list_history
        history = generator(spec, oracle=oracle)
    else:
        app = {
            "twitter": generate_twitter_history,
            "rubis": generate_rubis_history,
            "tpcc": generate_tpcc_history,
        }[args.workload]
        history = app(
            args.txns,
            n_sessions=args.sessions,
            seed=args.seed,
            oracle=oracle,
            isolation=isolation,
        )
    save_history(history, args.out)
    elapsed = time.perf_counter() - t0
    print(f"wrote {len(history)} transactions to {args.out} in {elapsed:.2f}s")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    # Flag validation precedes the (potentially large) history load.
    if args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2
    if args.shards > 1 and not (args.online and args.level == "si"):
        print("--shards requires --online --level si", file=sys.stderr)
        return 2
    if args.batch_size < 0:
        print("--batch-size must be >= 0", file=sys.stderr)
        return 2
    if args.batch_size > 0 and not args.online:
        print("--batch-size requires --online", file=sys.stderr)
        return 2
    history = load_history(args.history)
    t0 = time.perf_counter()
    if args.online:
        collector = HistoryCollector(
            batch_size=500,
            arrival_tps=25_000,
            delay_model=NormalDelay(args.delay_mean_ms, args.delay_std_ms),
        )
        schedule = collector.schedule(history)
        clock = SimClock()
        if args.shards > 1:
            checker = ShardedAion(
                AionConfig(timeout=args.timeout), n_shards=args.shards, clock=clock
            )
        elif args.level == "si":
            checker = Aion(AionConfig(timeout=args.timeout), clock=clock)
        else:
            checker = AionSer(AionConfig(timeout=args.timeout), clock=clock)
        runner = OnlineRunner(checker, clock)
        if args.batch_size > 0:
            report = runner.run_capacity_batched(schedule, batch_size=args.batch_size)
        else:
            report = runner.run_capacity(schedule)
        result = report.result
        checker.close()
        shard_note = f", {args.shards} shards" if args.shards > 1 else ""
        batch_note = f", batch={args.batch_size}" if args.batch_size > 0 else ""
        mode = (
            f"online {args.level.upper()} "
            f"({report.overall_tps:,.0f} TPS{shard_note}{batch_note})"
        )
    else:
        checker = Chronos() if args.level == "si" else ChronosSer()
        result = checker.check(history)
        mode = f"offline {args.level.upper()}"
    elapsed = time.perf_counter() - t0

    print(f"{mode}: {len(history)} transactions checked in {elapsed:.2f}s")
    print(result.summary())
    for violation in result.violations[: args.max_report]:
        print(f"  {violation.describe()}")
    if len(result.violations) > args.max_report:
        print(f"  ... and {len(result.violations) - args.max_report} more")
    return 0 if result.is_valid else 1


def _cmd_inject(args: argparse.Namespace) -> int:
    history = load_history(args.history)
    injector = HistoryFaultInjector(history, seed=args.seed)
    labels = injector.inject_mix(args.faults)
    save_history(injector.build(), args.out)
    print(f"injected {len(labels)} faults into {args.out}:")
    for label in labels:
        print(f"  {label.describe()}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.service import CheckerService, ServiceConfig

    if args.no_tcp and args.unix is None:
        print("--no-tcp requires --unix", file=sys.stderr)
        return 2
    config = ServiceConfig(
        host=args.host,
        port=None if args.no_tcp else args.port,
        unix_path=args.unix,
        level=args.level,
        n_shards=args.shards,
        shard_executor=args.executor,
        lane_capacity=args.lane_kb * 1024,
        timeout=args.timeout,
        queue_capacity=args.queue_capacity,
        batch_size=args.batch_size,
        gc_threshold=args.gc_threshold,
        gc_keep_recent=args.gc_keep_recent,
        protocol=args.protocol,
        http_port=args.http_port,
        slow_batch_ms=args.slow_batch_ms,
        kernel_sample_every=args.kernel_sample_every,
        stats_bytes_ttl=args.stats_bytes_ttl,
    )
    try:
        config.validate()
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    async def _serve() -> CheckerService:
        service = CheckerService(config)
        await service.start()
        if service.tcp_address is not None:
            host, port = service.tcp_address
            print(f"listening on {host}:{port} ({config.checker_kind})", flush=True)
        if service.unix_path is not None:
            print(f"listening on unix:{service.unix_path} ({config.checker_kind})", flush=True)
        if service.http_address is not None:
            http_host, http_port = service.http_address
            print(f"metrics on http://{http_host}:{http_port}/metrics", flush=True)
        loop = asyncio.get_running_loop()

        def _graceful() -> None:
            loop.create_task(service.shutdown())

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, _graceful)
            except NotImplementedError:  # pragma: no cover - non-unix hosts
                pass
        await service.wait_closed()
        return service

    service = asyncio.run(_serve())
    # Cheap mode: the summary never prints estimated_bytes, and the
    # deep-sizeof walk over a large resident set would delay exit.
    stats = service.stats(include_bytes=False)
    result = service.final_result
    print(f"served {stats['processed']} transactions "
          f"({stats['throughput']['sustained_tps']:,.0f} sustained TPS)")
    if result is not None:
        print(result.summary())
    # A clean drain-then-finalize exit is success regardless of verdict;
    # the verdict belongs to the replaying client (--expect).
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.db.cdc import iter_wal_file
    from repro.histories.anomalies import ANOMALY_CATALOG
    from repro.service import (
        CheckerClient,
        ServiceError,
        replay_transactions,
        transactions_in_commit_order,
    )
    from repro.workloads.generator import generate_default_history
    from repro.workloads.spec import WorkloadSpec

    if args.history is not None:
        source = load_history(args.history)
    elif args.wal is not None:
        source = list(iter_wal_file(args.wal))
    elif args.anomaly is not None:
        spec = ANOMALY_CATALOG.get(args.anomaly)
        if spec is None:
            names = ", ".join(sorted(ANOMALY_CATALOG))
            print(f"unknown anomaly {args.anomaly!r}; choose from: {names}", file=sys.stderr)
            return 2
        source = spec.build()
    else:
        source = generate_default_history(
            WorkloadSpec(
                n_sessions=12,
                n_transactions=args.generate,
                ops_per_txn=8,
                n_keys=200,
                seed=args.seed,
            )
        )
    txns = transactions_in_commit_order(source)

    preference = {"auto": None, "v1": 1, "v2": 2}[args.protocol]
    client = CheckerClient(args.host, args.port, unix_path=args.unix, protocol=preference)
    try:
        client.connect(retry_for=args.connect_timeout)
    except (OSError, ServiceError) as exc:
        print(f"cannot reach the daemon: {exc}", file=sys.stderr)
        return 2
    with client:
        report = replay_transactions(
            client,
            txns,
            batch_size=args.batch_size,
            arrival_tps=args.rate,
            ack=not args.no_ack,
            finalize=not args.shutdown,
        )
        result = client.shutdown() if args.shutdown else report.result

    print(f"replayed {report.sent} transactions in {report.batches} batches "
          f"({report.wire_tps:,.0f} end-to-end TPS)")
    print(f"daemon processed {report.stats.get('processed', '?')} total, "
          f"{report.stats.get('resident_txns', '?')} resident")
    assert result is not None
    print(result.summary())
    for violation in result.violations[: args.max_report]:
        print(f"  {violation.describe()}")
    if len(result.violations) > args.max_report:
        print(f"  ... and {len(result.violations) - args.max_report} more")
    if args.expect == "valid":
        return 0 if result.is_valid else 1
    if args.expect == "violation":
        return 0 if not result.is_valid else 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.chaos import CampaignRunner, CampaignSchedule

    if args.schedule is not None:
        schedule = CampaignSchedule.from_dict(
            json.loads(Path(args.schedule).read_text(encoding="utf-8"))
        )
    else:
        try:
            schedule = CampaignSchedule.generate(
                args.seed,
                segments=args.segments,
                kills=args.kills,
                restarts=args.restarts,
                pauses=args.pauses,
                skew_bursts=args.skew_bursts,
                mutations=args.mutations,
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.save_schedule is not None:
        Path(args.save_schedule).write_text(
            json.dumps(schedule.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote {len(schedule.events)}-event schedule to {args.save_schedule}")
        return 0

    runner = CampaignRunner(
        schedule,
        level=args.level,
        n_shards=args.shards,
        shard_executor=args.executor,
        n_sessions=args.sessions,
        n_keys=args.keys,
        txns_per_segment=args.txns_per_segment,
        batch_size=args.batch_size,
        pause_ms=args.pause_ms,
    )
    report = runner.run()
    if args.report is not None:
        Path(args.report).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    daemon_mode = args.port is not None or args.unix is not None
    if daemon_mode and args.history is not None:
        print("give either a history file or --port/--unix, not both", file=sys.stderr)
        return 2
    if daemon_mode:
        return _print_daemon_stats(args)
    if args.history is None:
        print("give a history file, or --port/--unix to query a daemon", file=sys.stderr)
        return 2
    history = load_history(args.history)
    stats = HistoryStats.of(history)
    print(f"transactions : {stats.n_transactions}")
    print(f"sessions     : {stats.n_sessions}")
    print(f"operations   : {stats.n_operations} ({stats.ops_per_txn:.1f} per txn)")
    print(f"reads        : {stats.n_reads} registers, {stats.n_list_reads} lists "
          f"({stats.read_ratio * 100:.0f}% of ops)")
    print(f"writes       : {stats.n_writes} registers, {stats.n_appends} appends")
    print(f"keys         : {stats.n_keys}")
    print(f"read-only    : {stats.n_read_only} transactions")
    return 0


def _print_daemon_stats(args: argparse.Namespace) -> int:
    import json

    from repro.service import CheckerClient

    port = args.port if args.port is not None else 0
    client = CheckerClient(args.host, port, unix_path=args.unix)
    try:
        client.connect()
    except OSError as exc:
        print(f"cannot reach the daemon: {exc}", file=sys.stderr)
        return 2
    with client:
        stats = client.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    throughput = stats.get("throughput", {})
    latency = stats.get("latency", {})
    gc = stats.get("gc", {})
    print(f"checker      : {stats.get('checker', '?')} (uptime {stats.get('uptime_s', 0):.1f}s)")
    print(f"processed    : {stats.get('processed', 0)} transactions "
          f"({throughput.get('sustained_tps', 0):,.0f} sustained TPS)")
    print(f"resident     : {stats.get('resident_txns', 0)} transactions"
          + (f", ~{stats['estimated_bytes']:,} bytes"
             if stats.get("estimated_bytes") is not None else ""))
    print(f"violations   : {stats.get('violations', 0)}")
    print(f"queue        : depth {stats.get('queue_depth', 0)}, "
          f"high-water {stats.get('queue_high_water', 0)} / "
          f"capacity {stats.get('queue_capacity', 0)} txns")
    if latency.get("count"):
        print(f"latency      : p50 {latency['p50_s'] * 1e3:.1f}ms, "
              f"p95 {latency['p95_s'] * 1e3:.1f}ms, "
              f"p99 {latency['p99_s'] * 1e3:.1f}ms "
              f"({latency['count']} samples)")
    print(f"gc           : {gc.get('cycles', 0)} cycles, "
          f"debt {gc.get('debt', 0)} staged entries")
    kernel = stats.get("kernel", {})
    if kernel:
        print(f"kernel       : {kernel.get('batches', 0)} batches, "
              f"{kernel.get('txns', 0)} txns, "
              f"{kernel.get('slow_batches', 0)} slow")
    shards = stats.get("shards")
    if shards:
        for row in shards:
            print(f"  shard {row['shard']:>2}  : {row['versions']} versions, "
                  f"{row['intervals']} intervals, {row['ext_reads']} ext-reads")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
