"""Emme-SI / Emme-SER: version-order recovery + whole-history graphs.

Emme (Clark et al., EuroSys'24) is the timestamp-based *offline* checker
the paper positions Chronos against.  Like Chronos it is white-box — the
version order of every key is recovered from commit timestamps — but
unlike Chronos it materializes a serialization graph over the *entire*
history and runs cycle detection on it (§I: "Emme-SI performs expensive
graph construction and cycle detection on the start-ordered serialization
graph of the entire history").  That whole-graph cost is what Fig 4/5
measure; this implementation intentionally keeps it.

**Emme-SI** = the start-ordered serialization graph conditions:

- *G-SIa (interference)*: every dependency edge must be start-ordered —
  a WW edge ``w1 → w2`` requires ``w1.commit_ts < w2.start_ts`` (else the
  writers are concurrent: NOCONFLICT); a WR edge ``w → r`` requires the
  read version to be visible (``w.commit_ts <= r.start_ts``); an SO edge
  requires the predecessor to commit before the successor starts.
- *Missed effects*: a read must observe the *last* visible version, not
  merely a visible one — the condition start-edges + RW cycles encode in
  Adya's SSG, checked here per read against the recovered order (this is
  what flags Fig 11, where black-box checkers accept).
- *Split-graph acyclicity* over the whole history (no cycle without two
  adjacent anti-dependency edges).

**Emme-SER** = DSG acyclicity over the same recovered order plus
commit-order external reads.
"""

from __future__ import annotations

import bisect
import time
from typing import Dict, List, Sequence, Tuple

from repro.baselines.depgraph import DependencyGraph
from repro.core.violations import (
    Axiom,
    CheckResult,
    ConflictViolation,
    ExtViolation,
    SessionViolation,
)
from repro.histories.model import History

__all__ = ["EmmeSi", "EmmeSer", "recover_version_order"]


def recover_version_order(history: History) -> Dict[str, List[int]]:
    """Per-key writer order by commit timestamp (white-box recovery)."""
    order: Dict[str, List[Tuple[int, int]]] = {}
    for txn in history:
        for key in txn.write_keys:
            order.setdefault(key, []).append((txn.commit_ts, txn.tid))
    return {
        key: [tid for _, tid in sorted(entries)]
        for key, entries in order.items()
    }


class _EmmeBase:
    """Shared construction; subclasses pick the verdict condition."""

    def __init__(self) -> None:
        self.build_seconds = 0.0
        self.check_seconds = 0.0

    def check(self, history: History) -> CheckResult:
        t0 = time.perf_counter()
        graph = DependencyGraph(history)
        version_order = recover_version_order(history)
        self.build_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        result = self._verdict(history, graph, version_order)
        self.check_seconds = time.perf_counter() - t0
        return result

    def _verdict(
        self,
        history: History,
        graph: DependencyGraph,
        version_order: Dict[str, Sequence[int]],
    ) -> CheckResult:
        raise NotImplementedError


class EmmeSi(_EmmeBase):
    """Offline SI checking via the start-ordered serialization graph."""

    def _verdict(
        self,
        history: History,
        graph: DependencyGraph,
        version_order: Dict[str, Sequence[int]],
    ) -> CheckResult:
        by_tid = {txn.tid: txn for txn in history}
        self._check_session_start_order(graph, by_tid)
        self._check_interference(history, version_order, graph, by_tid)
        self._check_reads(history, graph, by_tid)
        return graph.check_si(version_order)

    @staticmethod
    def _check_session_start_order(graph: DependencyGraph, by_tid: dict) -> None:
        for source_tid, target_tid in graph.session_edges():
            source, target = by_tid[source_tid], by_tid[target_tid]
            if source.commit_ts > target.start_ts:
                graph.result.add(
                    SessionViolation(
                        axiom=Axiom.SESSION,
                        tid=target.tid,
                        sid=target.sid,
                        expected_sno=source.sno + 1,
                        actual_sno=target.sno,
                        start_ts=target.start_ts,
                        last_commit_ts=source.commit_ts,
                    )
                )

    @staticmethod
    def _check_interference(
        history: History,
        version_order: Dict[str, Sequence[int]],
        graph: DependencyGraph,
        by_tid: dict,
    ) -> None:
        """G-SIa over WW edges: consecutive writers must not overlap."""
        for key, writers in version_order.items():
            for earlier_tid, later_tid in zip(writers, writers[1:]):
                earlier, later = by_tid[earlier_tid], by_tid[later_tid]
                if earlier.commit_ts > later.start_ts:
                    graph.result.add(
                        ConflictViolation(
                            axiom=Axiom.NOCONFLICT,
                            tid=earlier_tid,
                            key=key,
                            conflicting_tids=frozenset({later_tid}),
                        )
                    )

    @staticmethod
    def _check_reads(history: History, graph: DependencyGraph, by_tid: dict) -> None:
        """Visibility + missed effects: reads see the last visible version."""
        # Per-key committed versions sorted by commit_ts: (cts, tid, value).
        versions: Dict[str, List[Tuple[int, int, object]]] = {}
        for txn in history:
            for key, value in txn.last_writes.items():
                versions.setdefault(key, []).append((txn.commit_ts, txn.tid, value))
        for chain in versions.values():
            chain.sort()
        for reader_tid, key, value in graph.external_reads:
            reader = by_tid[reader_tid]
            chain = versions.get(key, [])
            index = bisect.bisect_right(chain, (reader.start_ts, float("inf"), None))
            if index == 0:
                expected: object = None
            else:
                expected = chain[index - 1][2]
            if expected != value:
                graph.result.add(
                    ExtViolation(
                        axiom=Axiom.EXT,
                        tid=reader_tid,
                        key=key,
                        expected=expected,
                        actual=value,
                    )
                )


class EmmeSer(_EmmeBase):
    """Offline SER checking via DSG acyclicity + commit-order reads."""

    def _verdict(
        self,
        history: History,
        graph: DependencyGraph,
        version_order: Dict[str, Sequence[int]],
    ) -> CheckResult:
        by_tid = {txn.tid: txn for txn in history}
        versions: Dict[str, List[Tuple[int, int, object]]] = {}
        for txn in history:
            for key, value in txn.last_writes.items():
                versions.setdefault(key, []).append((txn.commit_ts, txn.tid, value))
        for chain in versions.values():
            chain.sort()
        for reader_tid, key, value in graph.external_reads:
            reader = by_tid[reader_tid]
            chain = versions.get(key, [])
            index = bisect.bisect_left(chain, (reader.commit_ts, -1, None))
            expected = chain[index - 1][2] if index > 0 else None
            if expected != value:
                graph.result.add(
                    ExtViolation(
                        axiom=Axiom.EXT,
                        tid=reader_tid,
                        key=key,
                        expected=expected,
                        actual=value,
                    )
                )
        return graph.check_ser(version_order)
