"""Elle-style black-box checking (Kingsbury & Alvaro, VLDB'20).

Elle infers dependency edges from the *data type* of the objects under
test instead of timestamps:

- **ElleList** — for list (append) histories with unique elements, every
  observed list state reveals the exact append order of its elements, so
  the version order of a key is recoverable whenever reads observe it:
  all observed states of a key must form a prefix chain (else an
  immediate violation), the chain orders the observed appends, and
  appends never observed are constrained only to follow the chain.  This
  makes ElleList sound and (on read-rich workloads) close to complete.
- **ElleKV** — for register histories Elle has "limited capabilities"
  (§VII): with unique written values it recovers WR edges exactly,
  writes-follow-reads WW fragments (a transaction that read version v of
  k and then wrote k orders its write after v), session order, and the
  G1 well-formedness checks; cycle detection then runs over this partial
  graph.  Sound, but weaker than checkers with full version orders.

Both checkers share the cost profile the paper measures in Fig 4/5:
linear-ish graph construction with a large constant plus networkx cycle
detection over the whole history.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.baselines.depgraph import (
    CycleViolation,
    DependencyGraph,
    build_si_split_graph,
)
from repro.core.violations import Axiom, CheckResult, ExtViolation
from repro.histories.model import History, INIT_TID, OpKind, Transaction

__all__ = ["ElleKV", "ElleList"]


class ElleKV:
    """Register-history checking from unique values (no timestamps)."""

    def __init__(self) -> None:
        self.build_seconds = 0.0
        self.check_seconds = 0.0

    def check(self, history: History) -> CheckResult:
        t0 = time.perf_counter()
        graph = DependencyGraph(history)
        dsg = nx.DiGraph()
        dsg.add_nodes_from(txn.tid for txn in history)
        dsg.add_edges_from(graph.session_edges())
        # WR edges from unique values.
        for reader, _key, writer in graph.resolve_reads():
            dsg.add_edge(writer, reader)
        # Writes-follow-reads: a txn that read version v of k and also
        # wrote k must order its write after v's writer.
        writer_of_value: Dict[Tuple[str, Any], int] = {}
        for txn in history:
            for key, value in txn.last_writes.items():
                writer_of_value[(key, value)] = txn.tid
        for txn in history:
            for key, op in txn.external_reads.items():
                if key in txn.write_keys and op.kind is OpKind.READ:
                    observed = writer_of_value.get((key, op.value))
                    if observed is not None and observed != txn.tid:
                        dsg.add_edge(observed, txn.tid)
        self.build_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        try:
            cycle = nx.find_cycle(dsg)
        except nx.NetworkXNoCycle:
            cycle = None
        if cycle is not None:
            tids = [edge[0] for edge in cycle]
            graph.result.add(
                CycleViolation(
                    axiom=Axiom.EXT, tid=tids[0], cycle_tids=tuple(tids), flavor="G1c"
                )
            )
        self.check_seconds = time.perf_counter() - t0
        return graph.result


class ElleList:
    """List-history checking via prefix-based version-order recovery.

    ``mode='si'`` (default) flags only cycles without two adjacent
    anti-dependency edges, via the split graph — a pure anti-dependency
    2-cycle (write skew) is SI-legal.  ``mode='ser'`` flags any cycle.
    """

    def __init__(self, mode: str = "si") -> None:
        if mode not in ("si", "ser"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        self.build_seconds = 0.0
        self.check_seconds = 0.0

    def check(self, history: History) -> CheckResult:
        t0 = time.perf_counter()
        result = CheckResult()
        graph = DependencyGraph(history)
        result.extend(graph.result)  # INT findings from the shared pass

        appender: Dict[Tuple[str, Any], int] = {}
        appended: Dict[str, List[Tuple[int, Any]]] = {}
        observed: Dict[str, List[Tuple[Any, ...]]] = {}
        reads: List[Tuple[int, str, Tuple[Any, ...]]] = []
        for txn in history:
            local_seen: set = set()
            for op in txn.ops:
                if op.kind is OpKind.APPEND:
                    appender[(op.key, op.value)] = txn.tid
                    appended.setdefault(op.key, []).append((txn.tid, op.value))
                elif op.kind is OpKind.READ_LIST:
                    if (op.key, txn.tid) not in local_seen and op.key not in txn.write_keys:
                        reads.append((txn.tid, op.key, op.value))
                        local_seen.add((op.key, txn.tid))
                    observed.setdefault(op.key, []).append(op.value)
                elif op.kind is OpKind.WRITE and isinstance(op.value, tuple):
                    # ⊥T initializes list keys with explicit tuples.
                    appender[(op.key, op.value)] = txn.tid

        # Recover the per-key observed chain: all observed states must be
        # totally ordered by prefix.
        chains: Dict[str, Tuple[Any, ...]] = {}
        for key, states in observed.items():
            states = sorted(set(states), key=len)
            chain: Tuple[Any, ...] = ()
            ok = True
            for state in states:
                if state[: len(chain)] != chain:
                    result.add(
                        ExtViolation(
                            axiom=Axiom.EXT,
                            tid=-1,
                            key=key,
                            expected=chain,
                            actual=state,
                        )
                    )
                    ok = False
                    break
                chain = state
            if ok:
                chains[key] = chain

        # Every observed element must have a known appender.
        for key, chain in chains.items():
            for element in chain:
                if (key, element) not in appender:
                    result.add(
                        ExtViolation(
                            axiom=Axiom.EXT,
                            tid=-1,
                            key=key,
                            expected="<appended element>",
                            actual=element,
                        )
                    )
        self.build_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        dep_edges: List[Tuple[int, int]] = list(graph.session_edges())
        rw_edges: List[Tuple[int, int]] = []
        for key, chain in chains.items():
            order = self._version_tids(key, chain, appender)
            for earlier, later in zip(order, order[1:]):
                if earlier != later:
                    dep_edges.append((earlier, later))
            # Tail appends (never observed) follow the whole chain.
            observed_tids = set(order)
            tail = [
                tid
                for tid, _element in appended.get(key, [])
                if tid not in observed_tids
            ]
            for tid in tail:
                if order:
                    dep_edges.append((order[-1], tid))
            # WR and immediate RW edges from each read.
            position = {tid: i for i, tid in enumerate(order)}
            for reader, read_key, state in reads:
                if read_key != key:
                    continue
                source = (
                    appender.get((key, state[-1])) if state else INIT_TID
                )
                if source is None:
                    continue
                if source != reader:
                    dep_edges.append((source, reader))
                successor_index = position.get(source)
                if successor_index is not None and successor_index + 1 < len(order):
                    successor = order[successor_index + 1]
                    if successor != reader:
                        rw_edges.append((reader, successor))
                elif state == chain:
                    # The reader saw the entire observed chain: every tail
                    # append is a later version it missed.
                    for tid in tail:
                        if tid != reader:
                            rw_edges.append((reader, tid))

        nodes = [txn.tid for txn in history]
        if self.mode == "si":
            split = build_si_split_graph(nodes, dep_edges, rw_edges)
            cycle_nodes = self._find_cycle(split)
            if cycle_nodes is not None:
                tids = list(dict.fromkeys(node[0] for node in cycle_nodes))
                result.add(
                    CycleViolation(
                        axiom=Axiom.EXT,
                        tid=tids[0],
                        cycle_tids=tuple(tids),
                        flavor="G-SI",
                    )
                )
        else:
            dsg = nx.DiGraph()
            dsg.add_nodes_from(nodes)
            dsg.add_edges_from(dep_edges)
            dsg.add_edges_from(rw_edges)
            cycle_nodes = self._find_cycle(dsg)
            if cycle_nodes is not None:
                result.add(
                    CycleViolation(
                        axiom=Axiom.EXT,
                        tid=cycle_nodes[0],
                        cycle_tids=tuple(cycle_nodes),
                        flavor="G1c",
                    )
                )
        self.check_seconds = time.perf_counter() - t0
        return result

    @staticmethod
    def _find_cycle(graph: nx.DiGraph):
        try:
            cycle = nx.find_cycle(graph)
        except nx.NetworkXNoCycle:
            return None
        return [edge[0] for edge in cycle]

    @staticmethod
    def _version_tids(
        key: str,
        chain: Tuple[Any, ...],
        appender: Dict[Tuple[str, Any], int],
    ) -> List[int]:
        """Writer tids along the observed chain (deduplicating runs).

        The writer of the version ending in element ``e`` is the
        transaction that appended ``e``; the empty prefix belongs to ⊥T.
        """
        order: List[int] = [INIT_TID]
        for element in chain:
            tid = appender.get((key, element))
            if tid is not None and (not order or order[-1] != tid):
                order.append(tid)
        return order
