"""Shared dependency-graph construction for the baseline checkers.

A *direct serialization graph* (DSG) has one node per committed
transaction and three families of edges per key:

- **WR** (read dependency): the writer of a version → each transaction
  that read that version;
- **WW** (write dependency): writer → the next writer in the key's
  version order;
- **RW** (anti-dependency): a reader of a version → the *immediate next*
  writer in the version order (Adya's form; the transitive variant used
  by PolySI's polygraph is cycle-equivalent because WW edges chain the
  writers, and the immediate form keeps the edge count linear).

plus **SO** (session order) edges.  Baselines differ in how they obtain
the version order: Emme recovers it from commit timestamps (white-box),
ElleList from list prefixes, and PolySI/Viper search over all candidate
orders.  :class:`DependencyGraph` also performs the *well-formedness*
checks every baseline shares: internal (INT) read consistency,
unjustified reads (a value nobody wrote), and intermediate reads (G1b —
reading a non-final write of a transaction).

Verdict conditions on a complete version order:

- **SER** — the DSG (SO∪WR∪WW∪RW) is acyclic;
- **SI** — the *split graph* is acyclic: every node is doubled into
  (normal, after-rw); dependency edges enter the normal copy from both
  copies, anti-dependency edges go from the normal copy to the after-rw
  copy.  A cycle in the split graph is exactly a cycle of the original
  graph in which no two RW edges are adjacent — the forbidden shape
  under SI (Cerone & Gotsman's characterization, as used by PolySI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.core.violations import (
    Axiom,
    CheckResult,
    ExtViolation,
    IntViolation,
    SessionViolation,
    Violation,
)
from repro.histories.model import History, INIT_TID, OpKind, Transaction

__all__ = ["DependencyGraph", "VersionOrderError", "CycleViolation", "dsg_is_serializable"]


class VersionOrderError(ValueError):
    """Raised when a claimed version order is inconsistent with writes."""


@dataclass(frozen=True)
class CycleViolation(Violation):
    """A dependency cycle found by a graph-based checker."""

    cycle_tids: Tuple[int, ...] = ()
    flavor: str = "G1c"

    def describe(self) -> str:
        path = " -> ".join(str(t) for t in self.cycle_tids)
        return f"{self.flavor} cycle: {path}"


class DependencyGraph:
    """DSG construction plus the shared well-formedness checks."""

    def __init__(self, history: History) -> None:
        self.history = history
        self.result = CheckResult()
        #: writer lookup: value -> (tid, key, is_final_write)
        self._writer_of: Dict[Tuple[str, Any], Tuple[int, bool]] = {}
        #: reads per transaction: (tid, key, value) for external reads
        self.external_reads: List[Tuple[int, str, Any]] = []
        #: committed writers per key, in history (arrival) order
        self.writers_by_key: Dict[str, List[int]] = {}
        self._index_history()

    # ------------------------------------------------------------------
    # Indexing and well-formedness
    # ------------------------------------------------------------------

    def _index_history(self) -> None:
        for txn in self.history:
            for key, value in txn.last_writes.items():
                self._writer_of[(key, value)] = (txn.tid, True)
                self.writers_by_key.setdefault(key, []).append(txn.tid)
            # Non-final (intermediate) writes, for G1b detection.
            seen_final = dict(txn.last_writes)
            for op in txn.ops:
                if op.kind is OpKind.WRITE and seen_final.get(op.key) != op.value:
                    self._writer_of.setdefault((op.key, op.value), (txn.tid, False))
        for txn in self.history:
            self._check_internal(txn)
            for key, op in txn.external_reads.items():
                if op.kind is OpKind.READ:
                    self.external_reads.append((txn.tid, key, op.value))

    def _check_internal(self, txn: Transaction) -> None:
        """INT: replay program order against the txn's own effects.

        Appends complicate the black-box replay: without timestamps the
        snapshot base of a list is unknown, so after appends with an
        unobserved base only the *suffix* is constrained — an internal
        list read must end with the elements appended so far.  Once a
        read reveals the full value, tracking switches to exact values.
        """
        local: Dict[str, Any] = {}          # keys with fully known value
        suffix: Dict[str, tuple] = {}       # keys known only by suffix
        for op in txn.ops:
            key = op.key
            if op.kind is OpKind.WRITE:
                local[key] = op.value
                suffix.pop(key, None)
            elif op.kind is OpKind.APPEND:
                if key in local:
                    base = local[key]
                    if not isinstance(base, tuple):
                        base = (base,)
                    local[key] = base + (op.value,)
                else:
                    suffix[key] = suffix.get(key, ()) + (op.value,)
            elif key in local:
                if local[key] != op.value:
                    self.result.add(
                        IntViolation(
                            axiom=Axiom.INT,
                            tid=txn.tid,
                            key=key,
                            expected=local[key],
                            actual=op.value,
                        )
                    )
                local[key] = op.value
            elif key in suffix:
                tail = suffix.pop(key)
                observed = op.value if isinstance(op.value, tuple) else (op.value,)
                if observed[-len(tail):] != tail:
                    self.result.add(
                        IntViolation(
                            axiom=Axiom.INT,
                            tid=txn.tid,
                            key=key,
                            expected=tail,
                            actual=op.value,
                        )
                    )
                local[key] = op.value
            else:
                # First (external) read: later reads of the same key must
                # repeat it — snapshots do not move mid-transaction.
                local[key] = op.value

    def resolve_reads(self) -> List[Tuple[int, str, int]]:
        """Map each external register read to its writer: (reader, key, writer).

        Reads of ``None`` (the unborn-key encoding) map to the initial
        transaction when it wrote the key, else to ⊥T by convention.
        Unjustified reads (no writer of that value) and intermediate
        reads (G1b) are reported as EXT-class violations.
        """
        resolved: List[Tuple[int, str, int]] = []
        for reader, key, value in self.external_reads:
            if value is None:
                # Never-written key: treated as reading from ⊥T.
                resolved.append((reader, key, INIT_TID))
                continue
            writer = self._writer_of.get((key, value))
            if writer is None:
                self.result.add(
                    ExtViolation(
                        axiom=Axiom.EXT,
                        tid=reader,
                        key=key,
                        expected="<some written value>",
                        actual=value,
                    )
                )
                continue
            writer_tid, is_final = writer
            if not is_final:
                self.result.add(
                    ExtViolation(
                        axiom=Axiom.EXT,
                        tid=reader,
                        key=key,
                        expected="<final write of txn %d>" % writer_tid,
                        actual=value,
                    )
                )
                continue
            if writer_tid != reader:
                resolved.append((reader, key, writer_tid))
        return resolved

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------

    def session_edges(self) -> List[Tuple[int, int]]:
        """SO edges: consecutive transactions of each session."""
        edges: List[Tuple[int, int]] = []
        for txns in self.history.sessions.values():
            for earlier, later in zip(txns, txns[1:]):
                edges.append((earlier.tid, later.tid))
        init = self.history.init_transaction
        if init is not None:
            for txns in self.history.sessions.values():
                if txns and txns[0].tid != init.tid:
                    edges.append((init.tid, txns[0].tid))
        return edges

    def edges_for_version_order(
        self, version_order: Dict[str, Sequence[int]]
    ) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int]], List[Tuple[int, int]]]:
        """(WW, WR, RW) edge lists for a complete per-key version order.

        ``version_order[key]`` lists the writer tids of ``key`` from
        oldest to newest; it must contain exactly the committed writers.
        RW edges use the immediate-successor form; WW edges chain
        consecutive writers.
        """
        reads_by_writer: Dict[Tuple[str, int], List[int]] = {}
        for reader, key, writer in self.resolve_reads():
            reads_by_writer.setdefault((key, writer), []).append(reader)

        ww: List[Tuple[int, int]] = []
        wr: List[Tuple[int, int]] = []
        rw: List[Tuple[int, int]] = []
        for key, writers in version_order.items():
            expected = set(self.writers_by_key.get(key, []))
            if self.history.init_transaction is not None and key in (
                self.history.init_transaction.write_keys
            ):
                expected.add(INIT_TID)
            if set(writers) != expected:
                raise VersionOrderError(
                    f"version order for {key!r} names writers {sorted(set(writers))}, "
                    f"history has {sorted(expected)}"
                )
            for position, writer in enumerate(writers):
                successor = writers[position + 1] if position + 1 < len(writers) else None
                if successor is not None:
                    ww.append((writer, successor))
                readers = reads_by_writer.get((key, writer), [])
                for reader in readers:
                    wr.append((writer, reader))
                    if successor is not None and successor != reader:
                        rw.append((reader, successor))
        return ww, wr, rw

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------

    def check_ser(self, version_order: Dict[str, Sequence[int]]) -> CheckResult:
        """SER: DSG acyclicity under a known version order."""
        ww, wr, rw = self.edges_for_version_order(version_order)
        graph = nx.DiGraph()
        graph.add_nodes_from(txn.tid for txn in self.history)
        graph.add_edges_from(self.session_edges())
        graph.add_edges_from(ww)
        graph.add_edges_from(wr)
        graph.add_edges_from(rw)
        self._report_cycle(graph, flavor="G1c/SER")
        return self.result

    def check_si(self, version_order: Dict[str, Sequence[int]]) -> CheckResult:
        """SI: split-graph acyclicity under a known version order."""
        ww, wr, rw = self.edges_for_version_order(version_order)
        dep = self.session_edges() + ww + wr
        graph = build_si_split_graph(
            (txn.tid for txn in self.history), dep, rw
        )
        self._report_cycle(graph, flavor="G-SI", strip=_strip_split)
        return self.result

    def _report_cycle(self, graph: nx.DiGraph, *, flavor: str, strip=None) -> None:
        try:
            cycle = nx.find_cycle(graph)
        except nx.NetworkXNoCycle:
            return
        nodes = [edge[0] for edge in cycle]
        if strip is not None:
            seen: List[int] = []
            for node in nodes:
                tid = strip(node)
                if tid not in seen:
                    seen.append(tid)
            nodes = seen
        self.result.add(
            CycleViolation(
                axiom=Axiom.EXT,  # graph cycles witness unjustifiable reads
                tid=nodes[0],
                cycle_tids=tuple(nodes),
                flavor=flavor,
            )
        )


def build_si_split_graph(
    nodes: Iterable[int],
    dep_edges: Iterable[Tuple[int, int]],
    rw_edges: Iterable[Tuple[int, int]],
) -> nx.DiGraph:
    """The 2-copy construction encoding "no cycle without adjacent RWs".

    Nodes are ``(tid, 0)`` (normal) and ``(tid, 1)`` (just arrived via an
    anti-dependency).  Dependency edges run from *both* copies of the
    source to the normal copy of the target; an RW edge runs only from
    the normal copy to the after-rw copy, so two RW edges can never be
    traversed consecutively.  The split graph has a cycle iff the
    original graph has a cycle in which every RW edge is isolated —
    i.e. iff the history is *not* SI (given this version order).
    """
    graph = nx.DiGraph()
    for tid in nodes:
        graph.add_node((tid, 0))
        graph.add_node((tid, 1))
    for u, v in dep_edges:
        graph.add_edge((u, 0), (v, 0))
        graph.add_edge((u, 1), (v, 0))
    for u, v in rw_edges:
        graph.add_edge((u, 0), (v, 1))
    return graph


def _strip_split(node: Tuple[int, int]) -> int:
    return node[0]


def dsg_is_serializable(
    nodes: Iterable[int],
    edges: Iterable[Tuple[int, int]],
) -> bool:
    """Convenience acyclicity test used by tests and Cobra."""
    graph = nx.DiGraph()
    graph.add_nodes_from(nodes)
    graph.add_edges_from(edges)
    return nx.is_directed_acyclic_graph(graph)
