"""PolySI-style black-box SI checking (Huang et al., VLDB'23).

Without timestamps the version order of each key is unknown; PolySI
builds a *generalized polygraph* — fixed session/read edges plus one
binary choice per unordered pair of same-key writers — and asks a solver
whether some orientation of all choices yields an acyclic SI graph.

Encoding here:

- node space: the SI split graph of :mod:`repro.baselines.depgraph`
  (``(tid, 0)`` normal / ``(tid, 1)`` after-anti-dependency), so plain
  acyclicity of the search graph is exactly the SI condition;
- fixed edges: SO and WR dependencies, plus the initial transaction ⊥T
  ordered before every other writer;
- choice ``{w1, w2}`` on key ``k``: orientation ``w1 < w2`` contributes
  the dependency edge ``w1 → w2`` and an anti-dependency ``r → w2`` for
  every transaction ``r`` that read ``w1``'s version of ``k`` (the
  classical polygraph constraint, transitive RW form).

The search is exponential in the worst case — the behaviour Fig 4
documents for black-box checkers — so benchmark configurations keep
PolySI's histories small, as the paper's own figure does.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro.baselines.depgraph import CycleViolation, DependencyGraph
from repro.baselines.solver import AcyclicitySolver, Choice
from repro.core.violations import Axiom, CheckResult
from repro.histories.model import History, INIT_TID

__all__ = ["PolySi"]


class PolySi:
    """Black-box SI checker over key-value histories."""

    def __init__(self) -> None:
        self.build_seconds = 0.0
        self.solve_seconds = 0.0
        self.n_choices = 0

    def check(self, history: History) -> CheckResult:
        t0 = time.perf_counter()
        graph = DependencyGraph(history)
        reads = graph.resolve_reads()
        readers_of: Dict[Tuple[str, int], List[int]] = {}
        for reader, key, writer in reads:
            readers_of.setdefault((key, writer), []).append(reader)

        solver = AcyclicitySolver()
        for txn in history:
            solver.add_node((txn.tid, 0))
            solver.add_node((txn.tid, 1))

        def dep(u: int, v: int) -> None:
            solver.add_fixed_edge((u, 0), (v, 0))
            solver.add_fixed_edge((u, 1), (v, 0))

        def rw_edges(key: str, earlier: int, later: int) -> List[Tuple]:
            edges: List[Tuple] = [((earlier, 0), (later, 0)), ((earlier, 1), (later, 0))]
            for reader in readers_of.get((key, earlier), ()):
                if reader != later:
                    edges.append(((reader, 0), (later, 1)))
            return edges

        for u, v in graph.session_edges():
            dep(u, v)
        for reader, _key, writer in reads:
            dep(writer, reader)

        for key, writers in graph.writers_by_key.items():
            others = [w for w in dict.fromkeys(writers) if w != INIT_TID]
            if INIT_TID in writers:
                for writer in others:
                    for edge in rw_edges(key, INIT_TID, writer):
                        solver.add_fixed_edge(*edge)
            for i, w1 in enumerate(others):
                for w2 in others[i + 1:]:
                    solver.add_choice(
                        Choice(
                            name=("ww", key, w1, w2),
                            if_true=rw_edges(key, w1, w2),
                            if_false=rw_edges(key, w2, w1),
                        )
                    )
        self.n_choices = solver.n_choices
        self.build_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        assignment = solver.solve()
        self.solve_seconds = time.perf_counter() - t0
        if assignment is None:
            graph.result.add(
                CycleViolation(
                    axiom=Axiom.EXT,
                    tid=-1,
                    cycle_tids=(),
                    flavor="SI-unsatisfiable (no acyclic version order)",
                )
            )
        return graph.result
