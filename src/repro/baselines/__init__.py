"""Baseline checkers the paper compares against (§V, §VII).

All baselines are implemented from scratch on the shared dependency-graph
machinery in :mod:`repro.baselines.depgraph`:

- :mod:`repro.baselines.elle` — **ElleKV** / **ElleList**: infer
  dependency edges from unique values (registers) or list prefixes
  (appends), then detect cycles with networkx.  Sound but incomplete on
  registers, complete on lists — Elle's documented profile.
- :mod:`repro.baselines.emme` — **Emme-SI** / **Emme-SER**: white-box
  version-order recovery from timestamps, then a start-ordered
  serialization graph over the *entire* history and cycle detection —
  the whole-graph cost Chronos avoids (Fig 4/5).
- :mod:`repro.baselines.polysi` — **PolySI**: black-box SI checking;
  unknown per-key version orders are searched with the backtracking
  acyclicity solver in :mod:`repro.baselines.solver` (our stand-in for
  MonoSAT), over the SI-split graph.
- :mod:`repro.baselines.viper` — **Viper**: the same search over a
  BC-polygraph (begin/commit event nodes).
- :mod:`repro.baselines.cobra` — **Cobra**: online SER checking in
  rounds with fence-derived ordering, terminating at the first violation.
"""

from repro.baselines.cobra import CobraChecker, CobraConfig
from repro.baselines.depgraph import DependencyGraph, VersionOrderError
from repro.baselines.elle import ElleKV, ElleList
from repro.baselines.emme import EmmeSer, EmmeSi
from repro.baselines.polysi import PolySi
from repro.baselines.solver import AcyclicitySolver
from repro.baselines.viper import Viper

__all__ = [
    "AcyclicitySolver",
    "CobraChecker",
    "CobraConfig",
    "DependencyGraph",
    "ElleKV",
    "ElleList",
    "EmmeSer",
    "EmmeSi",
    "PolySi",
    "VersionOrderError",
    "Viper",
]
