"""Viper-style black-box SI checking via BC-polygraphs (EuroSys'23).

Viper reduces SI checking to cycle detection on a *BC-polygraph*: every
transaction contributes a **b**egin node and a **c**ommit node, and SI's
snapshot discipline turns into event-ordering edges:

- ``b_t → c_t``                       — a transaction spans its lifetime;
- SO: ``c_prev → b_next``             — strong-session SI;
- WR (``w`` read by ``r``): ``c_w → b_r``  — the version was committed
  before the reader's snapshot;
- WW orientation ``w1 < w2``: ``c_w1 → b_w2`` (NOCONFLICT: conflicting
  writers must not overlap, so the earlier must commit before the later
  starts), and for every reader ``r`` of ``w1``'s version:
  ``b_r → c_w2`` — the reader's snapshot was taken before the later
  version committed (else it would have seen it).

Unknown per-key write orders again become solver choices; satisfiability
of acyclicity over the event graph is the SI verdict.  The event-node
encoding is what distinguishes Viper from PolySI here, mirroring the two
systems' different polygraph formulations.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro.baselines.depgraph import CycleViolation, DependencyGraph
from repro.baselines.solver import AcyclicitySolver, Choice
from repro.core.violations import Axiom, CheckResult
from repro.histories.model import History, INIT_TID

__all__ = ["Viper"]


class Viper:
    """Black-box SI checker over key-value histories (BC-polygraph)."""

    def __init__(self) -> None:
        self.build_seconds = 0.0
        self.solve_seconds = 0.0
        self.n_choices = 0

    def check(self, history: History) -> CheckResult:
        t0 = time.perf_counter()
        graph = DependencyGraph(history)
        reads = graph.resolve_reads()
        readers_of: Dict[Tuple[str, int], List[int]] = {}
        for reader, key, writer in reads:
            readers_of.setdefault((key, writer), []).append(reader)

        solver = AcyclicitySolver()
        for txn in history:
            solver.add_node(("b", txn.tid))
            solver.add_node(("c", txn.tid))
            solver.add_fixed_edge(("b", txn.tid), ("c", txn.tid))

        for u, v in graph.session_edges():
            solver.add_fixed_edge(("c", u), ("b", v))
        for reader, _key, writer in reads:
            solver.add_fixed_edge(("c", writer), ("b", reader))

        def orientation_edges(key: str, earlier: int, later: int) -> List[Tuple]:
            edges: List[Tuple] = [(("c", earlier), ("b", later))]
            for reader in readers_of.get((key, earlier), ()):
                if reader != later:
                    edges.append((("b", reader), ("c", later)))
            return edges

        for key, writers in graph.writers_by_key.items():
            others = [w for w in dict.fromkeys(writers) if w != INIT_TID]
            if INIT_TID in writers:
                for writer in others:
                    for edge in orientation_edges(key, INIT_TID, writer):
                        solver.add_fixed_edge(*edge)
            for i, w1 in enumerate(others):
                for w2 in others[i + 1:]:
                    solver.add_choice(
                        Choice(
                            name=("ww", key, w1, w2),
                            if_true=orientation_edges(key, w1, w2),
                            if_false=orientation_edges(key, w2, w1),
                        )
                    )
        self.n_choices = solver.n_choices
        self.build_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        assignment = solver.solve()
        self.solve_seconds = time.perf_counter() - t0
        if assignment is None:
            graph.result.add(
                CycleViolation(
                    axiom=Axiom.EXT,
                    tid=-1,
                    cycle_tids=(),
                    flavor="SI-unsatisfiable (BC-polygraph cyclic)",
                )
            )
        return graph.result
