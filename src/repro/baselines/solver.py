"""A backtracking acyclicity solver — the MonoSAT stand-in.

PolySI, Viper and Cobra encode isolation checking as: *given fixed edges
and a set of binary choices (each contributing one of two edge sets),
does some assignment keep the graph acyclic?*  The real systems hand this
to MonoSAT's acyclicity theory; this module implements the same search
directly:

- chronological backtracking over the choice variables;
- incremental cycle detection (a DFS reachability probe per candidate
  edge) as the theory propagator;
- unit propagation: when one orientation of a variable already closes a
  cycle, the other is forced immediately.

Exhaustive search over unknown version orders is exactly why black-box
checking scales super-linearly (Fig 4); this solver intentionally shares
that profile while staying correct on the small histories the comparison
figures use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

__all__ = ["AcyclicitySolver", "Choice"]

Node = Hashable
Edge = Tuple[Node, Node]


@dataclass
class Choice:
    """One binary decision: orientation True adds ``if_true`` edges."""

    name: Hashable
    if_true: List[Edge] = field(default_factory=list)
    if_false: List[Edge] = field(default_factory=list)


class _Graph:
    """Adjacency with multiset edge counts (choices may repeat edges)."""

    __slots__ = ("succ",)

    def __init__(self) -> None:
        self.succ: Dict[Node, Dict[Node, int]] = {}

    def add(self, edge: Edge) -> None:
        u, v = edge
        targets = self.succ.setdefault(u, {})
        targets[v] = targets.get(v, 0) + 1
        self.succ.setdefault(v, {})

    def remove(self, edge: Edge) -> None:
        u, v = edge
        targets = self.succ[u]
        count = targets[v] - 1
        if count:
            targets[v] = count
        else:
            del targets[v]

    def is_acyclic(self) -> bool:
        """Kahn's algorithm over the whole current graph (O(V + E))."""
        indegree: Dict[Node, int] = {node: 0 for node in self.succ}
        for targets in self.succ.values():
            for node in targets:
                indegree[node] += 1
        queue = [node for node, degree in indegree.items() if degree == 0]
        visited = 0
        while queue:
            node = queue.pop()
            visited += 1
            for nxt in self.succ.get(node, ()):
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    queue.append(nxt)
        return visited == len(indegree)

    def reaches(self, source: Node, target: Node) -> bool:
        """Iterative DFS: is ``target`` reachable from ``source``?"""
        if source == target:
            return True
        stack = [source]
        seen: Set[Node] = {source}
        succ = self.succ
        while stack:
            node = stack.pop()
            for nxt in succ.get(node, ()):  # noqa: B909 - read-only scan
                if nxt == target:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def creates_cycle(self, edges: Sequence[Edge]) -> bool:
        """Would adding all ``edges`` close a cycle?

        Checks each edge against the current graph plus the previously
        probed edges of the same batch.
        """
        added: List[Edge] = []
        try:
            for u, v in edges:
                if self.reaches(v, u):
                    return True
                self.add((u, v))
                added.append((u, v))
            return False
        finally:
            for edge in added:
                self.remove(edge)


class AcyclicitySolver:
    """Search for an assignment of choices keeping the graph acyclic."""

    def __init__(self) -> None:
        self._graph = _Graph()
        self._choices: List[Choice] = []
        self.decisions = 0
        self.backtracks = 0

    def add_node(self, node: Node) -> None:
        self._graph.succ.setdefault(node, {})

    def add_fixed_edge(self, u: Node, v: Node) -> None:
        """Add a permanent edge (acyclicity of the fixed part is checked
        once, at the start of :meth:`solve`)."""
        self._graph.add((u, v))

    def add_choice(self, choice: Choice) -> None:
        self._choices.append(choice)

    @property
    def n_choices(self) -> int:
        return len(self._choices)

    def solve(self) -> Optional[Dict[Hashable, bool]]:
        """Return a satisfying assignment, or None when none exists."""
        if not self._graph.is_acyclic():
            return None
        assignment: Dict[Hashable, bool] = {}
        trail: List[Tuple[int, bool, bool]] = []  # (choice idx, value, was_forced)
        index = 0
        prefer_true = True
        while True:
            if index == len(self._choices):
                return assignment
            choice = self._choices[index]
            true_bad = self._graph.creates_cycle(choice.if_true)
            false_bad = self._graph.creates_cycle(choice.if_false)
            candidates: List[bool] = []
            if not true_bad and not false_bad:
                candidates = [prefer_true, not prefer_true]
            elif not true_bad:
                candidates = [True]
            elif not false_bad:
                candidates = [False]

            if candidates:
                value = candidates[0]
                forced = len(candidates) == 1
                self._apply(choice, value)
                assignment[choice.name] = value
                trail.append((index, value, forced))
                self.decisions += 1
                index += 1
                prefer_true = True
                continue

            # Both orientations close a cycle: backtrack to the last
            # unforced decision and flip it.
            while trail:
                last_index, last_value, was_forced = trail.pop()
                last_choice = self._choices[last_index]
                self._unapply(last_choice, last_value)
                del assignment[last_choice.name]
                self.backtracks += 1
                if not was_forced:
                    flipped = not last_value
                    if not self._graph.creates_cycle(
                        last_choice.if_true if flipped else last_choice.if_false
                    ):
                        self._apply(last_choice, flipped)
                        assignment[last_choice.name] = flipped
                        trail.append((last_index, flipped, True))
                        index = last_index + 1
                        break
            else:
                return None

    def _apply(self, choice: Choice, value: bool) -> None:
        for edge in (choice.if_true if value else choice.if_false):
            self._graph.add(edge)

    def _unapply(self, choice: Choice, value: bool) -> None:
        for edge in (choice.if_true if value else choice.if_false):
            self._graph.remove(edge)
