"""Cobra-style online SER checking with fence transactions (OSDI'20).

Cobra is the only prior *online* checker, and the paper contrasts Aion
against it on three points this implementation reproduces:

1. **Fence transactions.**  Cobra requires the client workload to commit
   periodic fence transactions; everything committed before a fence
   precedes everything started after it.  With fence frequency ``F``
   (one fence every ``F`` transactions), only transactions inside the
   same fence segment have unknown relative order — smaller ``F`` means
   fewer solver choices but more workload intrusion.
2. **Rounds.**  Transactions are checked in rounds of ``R`` (default
   2400, the paper's best setting): each round builds a polygraph over
   the round's transactions plus a compressed frontier of earlier
   rounds, and solves SER acyclicity with the backtracking solver.
3. **Stop-at-first-violation.**  Unlike Aion, Cobra terminates when a
   round is unsatisfiable (§VI-B: "Cobra terminates upon detecting the
   first violation").

The compressed frontier keeps, per key, the last committed writer of
each finished round, so cross-round WR edges resolve without keeping the
whole history — Cobra's garbage-collection story.

Each round also computes an all-pairs reachability (transitive closure)
over the round's known edges — the work Cobra offloads to a GPU — both
to prune solver choices whose orientation is already implied and because
that closure *is* Cobra's dominant per-round cost, which the Fig 12a
throughput comparison depends on.

Cobra consumes its own collected stream in client order (its fence
transactions are part of the workload), so feed it the commit-ordered
history rather than a delayed arrival schedule.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.depgraph import CycleViolation
from repro.baselines.solver import AcyclicitySolver, Choice
from repro.core.violations import Axiom, CheckResult, ExtViolation
from repro.histories.model import History, INIT_TID, OpKind, Transaction

__all__ = ["CobraChecker", "CobraConfig"]


@dataclass(frozen=True)
class CobraConfig:
    """Fence frequency (F) and round size (R), the Fig 12a knobs."""

    fence_every: int = 20
    round_size: int = 2400

    def __post_init__(self) -> None:
        if self.fence_every < 1:
            raise ValueError("fence_every must be >= 1")
        if self.round_size < 1:
            raise ValueError("round_size must be >= 1")


class CobraChecker:
    """Online SER checker; feed transactions with :meth:`receive`."""

    def __init__(self, config: Optional[CobraConfig] = None) -> None:
        self.config = config or CobraConfig()
        self._round: List[Transaction] = []
        self._arrival_index = 0
        #: last committed (writer tid, value) per key from closed rounds.
        self._frontier_writer: Dict[str, Tuple[int, Any]] = {}
        #: segment index per transaction (fence-derived ordering).
        self._segments: Dict[int, int] = {}
        self._stopped = False
        self.result = CheckResult()
        self.rounds_checked = 0
        self.solve_seconds = 0.0

    @property
    def stopped(self) -> bool:
        """True once a violation terminated checking."""
        return self._stopped

    def receive(self, txn: Transaction) -> None:
        """Buffer one transaction; checks run when a round fills."""
        if self._stopped:
            return
        self._segments[txn.tid] = self._arrival_index // self.config.fence_every
        self._arrival_index += 1
        self._round.append(txn)
        if len(self._round) >= self.config.round_size:
            self.check_round()

    def finalize(self) -> CheckResult:
        """Check any remaining partial round and return the verdict."""
        if self._round and not self._stopped:
            self.check_round()
        return self.result

    # ------------------------------------------------------------------

    def check_round(self) -> None:
        """Build and solve the polygraph for the buffered round."""
        t0 = time.perf_counter()
        txns = self._round
        self._round = []
        self.rounds_checked += 1

        by_tid = {txn.tid: txn for txn in txns}
        writer_of: Dict[Tuple[str, Any], int] = {}
        writers_by_key: Dict[str, List[int]] = {}
        for txn in txns:
            for key, value in txn.last_writes.items():
                writer_of[(key, value)] = txn.tid
                writers_by_key.setdefault(key, []).append(txn.tid)

        solver = AcyclicitySolver()
        anchor = ("round-frontier",)  # stands for all closed rounds
        solver.add_node(anchor)
        for txn in txns:
            solver.add_node(txn.tid)
            solver.add_fixed_edge(anchor, txn.tid)

        # Session order within the round.
        by_session: Dict[int, List[Transaction]] = {}
        for txn in txns:
            by_session.setdefault(txn.sid, []).append(txn)
        for session_txns in by_session.values():
            session_txns.sort(key=lambda t: t.sno)
            for earlier, later in zip(session_txns, session_txns[1:]):
                solver.add_fixed_edge(earlier.tid, later.tid)

        # WR edges; reads resolving to closed rounds attach to the anchor.
        readers_of: Dict[Tuple[str, int], List[int]] = {}
        for txn in txns:
            for key, op in txn.external_reads.items():
                if op.kind is not OpKind.READ:
                    continue
                writer = writer_of.get((key, op.value))
                if writer is None:
                    frontier = self._frontier_writer.get(key)
                    if op.value is None or (
                        frontier is not None and frontier[1] == op.value
                    ):
                        continue  # justified by a closed round (or unborn)
                    if self._matches_init(key, op.value):
                        continue
                    self.result.add(
                        ExtViolation(
                            axiom=Axiom.EXT,
                            tid=txn.tid,
                            key=key,
                            expected="<some committed value>",
                            actual=op.value,
                        )
                    )
                    self._stopped = True
                    self.solve_seconds += time.perf_counter() - t0
                    return
                if writer != txn.tid:
                    solver.add_fixed_edge(writer, txn.tid)
                    readers_of.setdefault((key, writer), []).append(txn.tid)

        # Fence-derived order: cross-segment pairs are fixed; same-segment
        # pairs become candidate choices.
        candidates: List[Choice] = []
        for key, writers in writers_by_key.items():
            unique = list(dict.fromkeys(writers))
            for i, w1 in enumerate(unique):
                for w2 in unique[i + 1:]:
                    seg1, seg2 = self._segments[w1], self._segments[w2]
                    if seg1 < seg2:
                        for edge in self._order_edges(key, w1, w2, readers_of):
                            solver.add_fixed_edge(*edge)
                    elif seg2 < seg1:
                        for edge in self._order_edges(key, w2, w1, readers_of):
                            solver.add_fixed_edge(*edge)
                    else:
                        candidates.append(
                            Choice(
                                name=("ww", key, w1, w2),
                                if_true=self._order_edges(key, w1, w2, readers_of),
                                if_false=self._order_edges(key, w2, w1, readers_of),
                            )
                        )

        # Cobra's pruning pass: all-pairs reachability over the known
        # edges decides pairs whose orientation is already implied.
        reach, index_of = self._transitive_closure(txns, anchor, solver)
        for choice in candidates:
            _, _key, w1, w2 = choice.name
            i, j = index_of[w1], index_of[w2]
            w1_reaches_w2 = bool(reach[i, j // 64] >> (j % 64) & 1)
            w2_reaches_w1 = bool(reach[j, i // 64] >> (i % 64) & 1)
            if w1_reaches_w2 and not w2_reaches_w1:
                for edge in choice.if_true:
                    solver.add_fixed_edge(*edge)
            elif w2_reaches_w1 and not w1_reaches_w2:
                for edge in choice.if_false:
                    solver.add_fixed_edge(*edge)
            else:
                solver.add_choice(choice)

        assignment = solver.solve()
        self.solve_seconds += time.perf_counter() - t0
        if assignment is None:
            self.result.add(
                CycleViolation(
                    axiom=Axiom.EXT,
                    tid=-1,
                    cycle_tids=(),
                    flavor="SER-unsatisfiable (Cobra round)",
                )
            )
            self._stopped = True
            return

        # Compress the round into the frontier (Cobra's GC): remember the
        # winning last writer per key under the found order.
        for key, writers in writers_by_key.items():
            unique = list(dict.fromkeys(writers))
            last = unique[0]
            for other in unique[1:]:
                pair = ("ww", key, *sorted((last, other)))
                if self._segments[other] > self._segments[last]:
                    last = other
                elif self._segments[other] == self._segments[last]:
                    w1, w2 = sorted((last, other))
                    oriented_w1_first = assignment.get(("ww", key, w1, w2), True)
                    last = w2 if oriented_w1_first else w1
            txn = by_tid[last]
            self._frontier_writer[key] = (last, txn.last_writes[key])

    def _transitive_closure(self, txns, anchor, solver):
        """All-pairs reachability over the round's fixed edges.

        Packed-bitset dynamic programming in reverse topological order:
        ``reach[i]`` is the bit row of nodes reachable from node ``i``.
        Quadratic-ish in the round size — Cobra's measured bottleneck.
        """
        nodes = [anchor] + [txn.tid for txn in txns]
        index_of = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        words = (n + 63) // 64
        reach = np.zeros((n, words), dtype=np.uint64)
        # Topological order of the fixed graph (it may contain a cycle if
        # the round is already unsatisfiable; fall back to node order).
        succ = solver._graph.succ
        indegree = {node: 0 for node in nodes}
        for node in nodes:
            for nxt in succ.get(node, ()):
                if nxt in indegree:
                    indegree[nxt] += 1
        stack = [node for node in nodes if indegree[node] == 0]
        topo: List = []
        while stack:
            node = stack.pop()
            topo.append(node)
            for nxt in succ.get(node, ()):
                if nxt in indegree:
                    indegree[nxt] -= 1
                    if indegree[nxt] == 0:
                        stack.append(nxt)
        if len(topo) < n:
            topo = nodes
        for node in reversed(topo):
            i = index_of[node]
            row = reach[i]
            for nxt in succ.get(node, ()):
                j = index_of.get(nxt)
                if j is None:
                    continue
                row |= reach[j]
                row[j // 64] |= np.uint64(1 << (j % 64))
        return reach, index_of

    @staticmethod
    def _order_edges(
        key: str,
        earlier: int,
        later: int,
        readers_of: Dict[Tuple[str, int], List[int]],
    ) -> List[Tuple]:
        edges: List[Tuple] = [(earlier, later)]
        for reader in readers_of.get((key, earlier), ()):
            if reader != later:
                edges.append((reader, later))
        return edges

    def _matches_init(self, key: str, value: Any) -> bool:
        # Reads of the initial value are justified by ⊥T when no round
        # writer has overwritten the key yet.
        return value == 0 and key not in self._frontier_writer
