"""Slow-batch tracing: structured records for outlier ``receive_many`` calls.

Aggregate metrics tell you *that* p99 moved; a slow-batch trace tells
you *why*: which stage ate the time, how the batch was shaped, and
which keys dominated it.  The kernel calls the hook with a plain dict
(see ``KernelStats.on_slow_batch``); this module keeps the most recent
records in a bounded ring for ``/stats`` and mirrors each one to a
stream (stderr by default) as single-line JSON so an operator tailing
the daemon's log sees outliers as they happen.

Recording is off the hot path by construction — the hook only fires
for batches already past the configured threshold — so a little lock
and a JSON dump per slow batch is fine.
"""

from __future__ import annotations

import json
import sys
import threading
from collections import deque
from typing import Any, Dict, List, Optional, TextIO

__all__ = ["SlowBatchLog"]

#: Default ring capacity: enough history to correlate a latency alert
#: with its offending batches, small enough to never matter for memory.
_DEFAULT_KEEP = 64


class SlowBatchLog:
    """Bounded ring of slow-batch trace records, mirrored to a stream."""

    def __init__(self, keep: int = _DEFAULT_KEEP, stream: Optional[TextIO] = None) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self._records: deque = deque(maxlen=keep)
        self._lock = threading.Lock()
        #: ``None`` stream disables mirroring (tests); default stderr.
        self._stream = stream if stream is not None else sys.stderr
        self.total: int = 0

    def record(self, trace: Dict[str, Any]) -> None:
        """Store one trace record and mirror it as one-line JSON.

        Usable directly as a ``KernelStats.on_slow_batch`` hook.  Never
        raises: a broken stderr must not take down verdict processing.
        """
        with self._lock:
            self.total += 1
            seq = self.total
            entry = dict(trace)
            entry["seq"] = seq
            self._records.append(entry)
        if self._stream is not None:
            try:
                line = json.dumps({"slow_batch": entry}, default=str, sort_keys=True)
                self._stream.write(line + "\n")
                self._stream.flush()
            except Exception:
                pass

    def tail(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent ``n`` records (all retained ones by default)."""
        with self._lock:
            records = list(self._records)
        if n is not None:
            records = records[-n:]
        return records

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
