"""repro.obs — the daemon's operability surface.

A checker you run against live traffic is only as trustworthy as what
you can see of it while it runs.  This package holds the pieces that
make :mod:`repro.service` observable without a redeploy and without
third-party dependencies:

- :mod:`repro.obs.registry` — a lock-cheap metrics registry (monotonic
  counters, gauges, fixed-bucket histograms) with a Prometheus
  text-format encoder, the model Prometheus/Grafana scrape;
- :mod:`repro.obs.http` — a minimal asyncio HTTP sidecar (no aiohttp)
  that serves ``GET /metrics``, ``GET /health``, and ``GET /stats``
  next to the wire-protocol listeners;
- :mod:`repro.obs.trace` — the slow-batch trace log: a structured
  record per ``receive_many`` call that exceeded a configured wall-time
  threshold (stage timings, batch shape, hottest keys), kept in a
  bounded ring and mirrored to stderr.

The hot path stays honest about its cost: per-stage wall times in
:class:`~repro.core.kernel.KernelStats` are sampled one batch in N, and
the differential tests in ``tests/test_obs.py`` pin that enabling every
piece of this package never changes a verdict.
"""

from repro.obs.http import HttpSidecar
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import SlowBatchLog

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HttpSidecar",
    "MetricsRegistry",
    "SlowBatchLog",
]
