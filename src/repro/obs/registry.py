"""A lock-cheap metrics registry with a Prometheus text encoder.

Three metric kinds cover everything the daemon exports:

- :class:`Counter` — a monotonically increasing total (``_total`` by
  convention).  Also usable as a *mirror* of a counter maintained
  elsewhere (:meth:`Counter.set_total`): the service's wire counters
  and the kernel's op counters already exist as plain ints on their hot
  paths, and re-counting them through the registry would tax the very
  code the metrics are meant to observe — the scrape handler copies
  them in instead.
- :class:`Gauge` — a value that goes both ways (queue depth, resident
  transactions, per-shard sizes).
- :class:`Histogram` — fixed upper-bound buckets with cumulative
  Prometheus semantics (``le`` is inclusive), a running sum, and a
  quantile estimator for compact wire-stats summaries.

Concurrency model: counters and gauges are single attribute writes —
atomic enough under the GIL for monitoring reads that may tear across
*different* metrics but never within one sample.  Histograms mutate
three fields per observation, so they take a small lock; observation
happens once per drained batch, not per transaction, and rendering is
scrape-rate.

Labels: a metric constructed with ``labelnames`` is a *family*;
:meth:`labels` returns (and caches) the child carrying one label-value
combination.  A metric without labelnames is its own single child.

The encoder (:meth:`MetricsRegistry.render`) emits Prometheus text
exposition format 0.0.4: ``# HELP`` / ``# TYPE`` headers per family,
children in insertion order, label values escaped per the spec.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_LATENCY_BUCKETS"]

#: Default histogram bounds for request-latency style metrics, in
#: seconds: 1ms to 10s, roughly 2.5× apart — wide enough to cover a
#: drain cycle on a loaded daemon, narrow enough that p99 estimates
#: from bucket interpolation stay meaningful.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects (ints bare)."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_pairs(names: Sequence[str], values: Sequence[str]) -> str:
    return ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in zip(names, values)
    )


class _Family:
    """Shared family plumbing: name, help text, labelled children."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        #: label-values tuple -> child, in first-use order.
        self._children: Dict[Tuple[str, ...], "_Family"] = {}
        if not self.labelnames:
            self._children[()] = self

    def labels(self, *values: object) -> "_Family":
        """The child carrying one label-value combination (cached)."""
        if not self.labelnames:
            raise ValueError(f"metric {self.name!r} has no labels")
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes {len(self.labelnames)} label values, "
                f"got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _make_child(self) -> "_Family":
        raise NotImplementedError

    def _render_samples(self, lines: List[str], name: str, label_str: str) -> None:
        # ``name`` is threaded in by the parent: labelled children are
        # bare sample holders (built via ``__new__``) without one.
        raise NotImplementedError

    def render_into(self, lines: List[str]) -> None:
        lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key, child in self._children.items():
            child._render_samples(lines, self.name, _label_pairs(self.labelnames, key))


class Counter(_Family):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self.value: float = 0

    def _make_child(self) -> "Counter":
        child = Counter.__new__(Counter)
        child.value = 0
        return child

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Mirror a monotonic counter maintained outside the registry.

        Monotonicity is the caller's contract; used by scrape handlers
        that copy hot-path ints (wire counters, kernel op counts) in at
        scrape time instead of double-counting on the hot path.
        """
        self.value = value

    def _render_samples(self, lines: List[str], name: str, label_str: str) -> None:
        suffix = f"{{{label_str}}}" if label_str else ""
        lines.append(f"{name}{suffix} {_format_value(self.value)}")


class Gauge(_Family):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self.value: float = 0

    def _make_child(self) -> "Gauge":
        child = Gauge.__new__(Gauge)
        child.value = 0
        return child

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def _render_samples(self, lines: List[str], name: str, label_str: str) -> None:
        suffix = f"{{{label_str}}}" if label_str else ""
        lines.append(f"{name}{suffix} {_format_value(self.value)}")


class Histogram(_Family):
    """Fixed-bucket histogram with cumulative Prometheus rendering.

    ``buckets`` are ascending upper bounds; the implicit ``+Inf`` bucket
    is always appended.  ``le`` is inclusive, matching Prometheus: an
    observation exactly on a bound lands in that bound's bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("buckets must be non-empty, ascending, and distinct")
        if bounds and bounds[-1] == float("inf"):
            bounds = bounds[:-1]
        self.buckets = bounds
        self._init_state()
        super().__init__(name, help_text, labelnames)

    def _init_state(self) -> None:
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum: float = 0.0
        self.count: int = 0
        self._lock = threading.Lock()

    def _make_child(self) -> "Histogram":
        child = Histogram.__new__(Histogram)
        child.buckets = self.buckets
        child._init_state()
        return child

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value`` (one lock hop)."""
        index = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += count
            self.count += count
            self.sum += value * count

    def snapshot(self) -> Tuple[List[int], float, int]:
        with self._lock:
            return list(self.counts), self.sum, self.count

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-interpolated quantile estimate (None when empty).

        Linear interpolation inside the bucket containing the target
        rank, with the first bucket interpolated from zero and the
        ``+Inf`` bucket clamped to the highest finite bound — the same
        estimate ``histogram_quantile`` computes server-side.
        """
        counts, _sum, total = self.snapshot()
        if total == 0:
            return None
        target = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                if index >= len(self.buckets):  # +Inf bucket
                    return self.buckets[-1]
                hi = self.buckets[index]
                lo = self.buckets[index - 1] if index > 0 else 0.0
                if bucket_count == 0:  # pragma: no cover - defensive
                    return hi
                return lo + (hi - lo) * (target - previous) / bucket_count
        return self.buckets[-1]  # pragma: no cover - unreachable

    def summary(self) -> Dict[str, object]:
        """Compact dict for the wire ``STATS`` payload."""
        _counts, total_sum, total = self.snapshot()
        row: Dict[str, object] = {
            "count": total,
            "sum_s": round(total_sum, 6),
        }
        for label, q in (("p50_s", 0.5), ("p95_s", 0.95), ("p99_s", 0.99)):
            estimate = self.quantile(q)
            row[label] = round(estimate, 6) if estimate is not None else None
        return row

    def _render_samples(self, lines: List[str], name: str, label_str: str) -> None:
        counts, total_sum, total = self.snapshot()
        cumulative = 0
        extra = f"{label_str}," if label_str else ""
        for bound, bucket_count in zip(self.buckets, counts):
            cumulative += bucket_count
            le = _format_value(bound)
            lines.append(f'{name}_bucket{{{extra}le="{le}"}} {cumulative}')
        lines.append(f'{name}_bucket{{{extra}le="+Inf"}} {total}')
        suffix = f"{{{label_str}}}" if label_str else ""
        lines.append(f"{name}_sum{suffix} {_format_value(total_sum)}")
        lines.append(f"{name}_count{suffix} {total}")


class MetricsRegistry:
    """A named collection of metric families, rendered in one pass."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def counter(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help_text, labelnames))

    def gauge(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge(name, help_text, labelnames))

    def histogram(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        return self._register(Histogram(name, help_text, buckets, labelnames))

    def _register(self, family: _Family) -> _Family:
        existing = self._families.get(family.name)
        if existing is not None:
            raise ValueError(f"metric {family.name!r} is already registered")
        self._families[family.name] = family
        return family

    def get(self, name: str) -> Optional[_Family]:
        return self._families.get(name)

    def render(self) -> str:
        """Prometheus text exposition (0.0.4) of every family."""
        lines: List[str] = []
        for family in self._families.values():
            family.render_into(lines)
        return "\n".join(lines) + "\n"
