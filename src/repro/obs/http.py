"""A minimal asyncio HTTP sidecar — no aiohttp, no frameworks.

The daemon's wire protocol is for producers; operators point Prometheus
(and ``curl``) at this sidecar instead.  It implements exactly the
slice of HTTP/1.1 a scrape loop needs: parse a ``GET`` request line,
skip the headers, dispatch on the path, answer with a fixed-length
body, close.  Keep-alive is deliberately not offered (``Connection:
close``) — scrape intervals dwarf connection setup, and a
one-connection-per-request server cannot leak per-connection state.

Handlers are async callables returning ``(status, content_type,
body_bytes)``; they run on the daemon's event loop, so anything that
must touch the checker under its ingest lock hops through the same
worker-thread executor the wire requests use (the daemon wires that
up, not this module).
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, Optional, Tuple

__all__ = ["HttpSidecar"]

#: One request line plus headers must fit in this; a scrape request is
#: a few hundred bytes, so anything larger is not a scraper.
_MAX_REQUEST_BYTES = 16 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: An HTTP handler: ``() -> (status, content_type, body)``.
HandlerT = Callable[[], Awaitable[Tuple[int, str, bytes]]]


class HttpSidecar:
    """Serve a fixed route table over HTTP/1.1, one request per connection."""

    def __init__(self, host: str, port: int, routes: Dict[str, HandlerT]) -> None:
        self.host = host
        self.port = port
        self.routes = routes
        self._server: Optional[asyncio.base_events.Server] = None
        #: Bound (host, port) after :meth:`start` — read this back when
        #: the configured port was 0 (ephemeral).
        self.address: Optional[Tuple[str, int]] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port, limit=_MAX_REQUEST_BYTES
        )
        self.address = self._server.sockets[0].getsockname()[:2]

    def close(self) -> None:
        if self._server is not None:
            self._server.close()
            self._server = None

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request_line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                await self._respond(writer, 400, "text/plain", b"request too large\n")
                return
            parts = request_line.decode("latin-1", "replace").split()
            if len(parts) < 2:
                await self._respond(writer, 400, "text/plain", b"malformed request\n")
                return
            method, target = parts[0], parts[1]
            # Drain headers up to the blank line; their content is
            # irrelevant to a fixed GET route table.
            while True:
                try:
                    header = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._respond(writer, 400, "text/plain", b"headers too large\n")
                    return
                if header in (b"\r\n", b"\n", b""):
                    break
            if method != "GET":
                await self._respond(writer, 405, "text/plain", b"only GET is served\n")
                return
            path = target.split("?", 1)[0]
            handler = self.routes.get(path)
            if handler is None:
                known = ", ".join(sorted(self.routes))
                await self._respond(
                    writer, 404, "text/plain", f"unknown path; try: {known}\n".encode()
                )
                return
            try:
                status, content_type, body = await handler()
            except Exception as exc:
                # A failing handler must answer (a scraper treats a
                # dropped connection and a 500 very differently) and
                # must not take the sidecar down with it.
                body = f"handler error: {type(exc).__name__}: {exc}\n".encode()
                await self._respond(writer, 500, "text/plain", body)
                return
            await self._respond(writer, status, content_type, body)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                if not writer.is_closing():
                    writer.close()
            except RuntimeError:
                pass

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter, status: int, content_type: str, body: bytes
    ) -> None:
        reason = _STATUS_TEXT.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
