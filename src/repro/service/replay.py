"""Stream histories into a running daemon — the wire-side collector.

:func:`replay_transactions` is the producer half of the continuous
collector→checker loop: it takes committed transactions from any source
— a JSONL history file, a textual WAL capture
(:func:`repro.db.cdc.iter_wal_file`), a canonical anomaly fixture, or a
freshly generated workload — and ships them to a
:class:`~repro.service.client.CheckerClient` in collector-sized batches.

Pacing reuses :meth:`repro.online.collector.HistoryCollector.iter_batches`
so an offered ``arrival_tps`` produces the same batch cadence the
simulated collector uses (500-txn batches at 25 000 TPS depart every
20 ms), but against the wall clock and a real socket.  Without a rate
the replay runs flat out, which is the wire-throughput measurement mode.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.core.violations import CheckResult
from repro.histories.model import History, Transaction
from repro.online.collector import HistoryCollector
from repro.service.client import CheckerClient

__all__ = ["ReplayReport", "replay_transactions", "transactions_in_commit_order"]


@dataclass
class ReplayReport:
    """What one replay run observed end to end."""

    sent: int
    batches: int
    wall_seconds: float
    #: Wire protocol the client negotiated (1 = ndjson, 2 = frames).
    protocol: int = 1
    stats: Dict[str, Any] = field(default_factory=dict)
    result: Optional[CheckResult] = None

    @property
    def wire_tps(self) -> float:
        """End-to-end throughput: submitted → checked, per wall second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.sent / self.wall_seconds


def transactions_in_commit_order(source: Iterable[Transaction]) -> List[Transaction]:
    """Commit-order delivery, as a CDC/WAL tailer would produce it."""
    if isinstance(source, History):
        return source.by_commit_ts()
    return sorted(source, key=lambda txn: (txn.commit_ts, txn.tid))


def replay_transactions(
    client: CheckerClient,
    transactions: Iterable[Transaction],
    *,
    batch_size: int = 500,
    arrival_tps: Optional[float] = None,
    ack: bool = True,
    drain: bool = True,
    finalize: bool = False,
    collect_stats: bool = True,
) -> ReplayReport:
    """Stream ``transactions`` through an already-connected client.

    The transactions are sent exactly in the order given (callers wanting
    commit order apply :func:`transactions_in_commit_order` first — the
    order a session-order-preserving producer must not break).  With
    ``drain=True`` the wall time covers submission *and* checking: the
    report's :attr:`~ReplayReport.wire_tps` is true end-to-end
    throughput, not just socket bandwidth.
    """
    txns = list(transactions)
    collector = HistoryCollector(
        batch_size=batch_size,
        arrival_tps=arrival_tps if arrival_tps is not None else 25_000.0,
    )
    started = time.monotonic()
    batches = 0
    for depart, batch in collector.iter_batches(txns):
        if arrival_tps is not None:
            lag = (started + depart) - time.monotonic()
            if lag > 0:
                time.sleep(lag)
        client.submit_many(batch, ack=ack)
        batches += 1
    if drain:
        client.drain()
    wall = time.monotonic() - started
    report = ReplayReport(
        sent=len(txns), batches=batches, wall_seconds=wall, protocol=client.protocol
    )
    if collect_stats:
        # Cheap mode: skip the estimated_bytes deep-sizeof walk, which
        # runs under the daemon's ingest lock and stalls other producers
        # on a large resident set (nothing here prints it anyway).
        report.stats = client.stats(include_bytes=False)
    if finalize:
        report.result = client.finalize()
    return report
