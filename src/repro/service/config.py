"""Configuration for the checker daemon.

One :class:`ServiceConfig` fixes both *where* the daemon listens (TCP,
unix socket, or both) and *what* it runs behind the wire: the isolation
level, shard count, EXT timeout, ingest-queue bound, and drain batch
size.  :meth:`ServiceConfig.build_checker` constructs the matching
checker — plain :class:`~repro.core.aion.Aion` for single-shard SI,
:class:`~repro.core.aion_ser.AionSer` for SER, and
:class:`~repro.core.sharded.ShardedAion` when sharding is requested.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Union

from repro.core.aion import Aion, AionConfig
from repro.core.aion_ser import AionSer
from repro.core.sharded import ShardedAion

__all__ = ["ServiceConfig"]

OnlineCheckerT = Union[Aion, AionSer, ShardedAion]


@dataclass
class ServiceConfig:
    """Tunables of one daemon instance.

    ``port=0`` binds an ephemeral TCP port (read it back from
    ``CheckerService.tcp_address``); ``port=None`` disables TCP.  At
    least one of TCP and ``unix_path`` must be enabled.

    ``queue_capacity`` bounds the ingest queue in *transactions*; a full
    queue stops the daemon from reading further submissions, which
    surfaces to producers as TCP backpressure rather than unbounded
    server-side buffering.  ``batch_size`` caps how many queued
    transactions one drain cycle hands to ``receive_many``.

    ``gc_threshold`` (in resident transactions) enables the daemon's
    between-batch garbage collection, sparing the ``gc_keep_recent``
    newest residents per cycle; 0 disables GC entirely.
    ``gc_keep_recent=None`` derives half the threshold — and an explicit
    value at or above the threshold is rejected, because GC would then
    never find an eligible resident (a silent no-op).
    """

    host: str = "127.0.0.1"
    port: Optional[int] = 0
    unix_path: Optional[Union[str, Path]] = None
    level: str = "si"
    n_shards: int = 1
    #: How ``ShardedAion`` runs its shards: ``"serial"`` (in-process),
    #: ``"process"`` (pickled pipe transport), or ``"shm-process"``
    #: (shared-memory lane transport; needs working POSIX shared memory).
    shard_executor: str = "serial"
    #: Byte capacity of each shared-memory lane ring (request and result
    #: each), for ``shard_executor="shm-process"``.  A frame larger than
    #: half the capacity falls back to the pipe path, so size this to a
    #: few times the packed size of one drain batch.
    lane_capacity: int = 1 << 20
    timeout: float = 5.0
    queue_capacity: int = 10_000
    batch_size: int = 500
    gc_threshold: int = 0
    gc_keep_recent: Optional[int] = None
    #: Seconds between idle polls of the checker's EXT timer queue.  A
    #: finite ``timeout`` arms real-clock deadlines that must fire even
    #: when no transactions are arriving; the daemon polls at this
    #: cadence so due verdicts are pushed from a quiet wire too.
    poll_interval: float = 0.5
    #: Highest wire protocol the daemon offers.  ``"v2"`` (the default)
    #: advertises the binary frame codec while still accepting ndjson on
    #: the same port — the reader sniffs each message's codec from its
    #: first byte.  ``"v1"`` pins the daemon to ndjson only: v2-capable
    #: clients see ``protocols: [1]`` in the welcome and fall back.
    protocol: str = "v2"
    #: TCP port of the HTTP observability sidecar (``/metrics``,
    #: ``/health``, ``/stats``); 0 binds an ephemeral port (read it back
    #: from ``CheckerService.http_address``), ``None`` (the default)
    #: disables the sidecar entirely.
    http_port: Optional[int] = None
    #: Seconds the ``deep_sizeof`` byte estimate stays cached.  Wire
    #: STATS requests and ``/metrics`` scrapes share the cached figure so
    #: a scrape loop cannot stall ingest by re-walking the checker's
    #: structures under the ingest lock on every request; 0 disables the
    #: cache (every request re-measures).
    stats_bytes_ttl: float = 2.0
    #: Sample per-stage kernel wall times on every Nth drained batch
    #: (``KernelStats.sample_every``); 0 disables stage timing.  The
    #: default keeps the hot path within bench noise while still feeding
    #: the stage-seconds counters on ``/metrics``.
    kernel_sample_every: int = 16
    #: Wall-time threshold in *milliseconds* above which one
    #: ``receive_many`` call is traced as a slow batch (structured record
    #: to stderr + ring buffer); ``None`` disables the trace.
    slow_batch_ms: Optional[float] = None
    #: Sliding window (seconds) over which session resumes are counted
    #: for the ``resume_storm`` health component.
    resume_storm_window: float = 10.0
    #: Session resumes inside one window at which ``/health`` flips the
    #: ``resume_storm`` component unhealthy — reconnect churn at this
    #: rate means clients are flapping (a dying daemon peer, a broken
    #: network path, or a retry loop without backoff), and verdict
    #: latency guarantees no longer hold.
    resume_storm_threshold: int = 30

    def validate(self) -> None:
        if self.port is None and self.unix_path is None:
            raise ValueError("enable at least one listener (TCP port or unix_path)")
        if self.level not in ("si", "ser"):
            raise ValueError(f"level must be 'si' or 'ser', got {self.level!r}")
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.n_shards > 1 and self.level != "si":
            raise ValueError("sharding requires level 'si'")
        if self.shard_executor not in ("serial", "process", "shm-process"):
            raise ValueError(
                "shard_executor must be 'serial', 'process', or "
                f"'shm-process', got {self.shard_executor!r}"
            )
        if self.lane_capacity < 4096:
            raise ValueError("lane_capacity must be >= 4096 bytes")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.gc_threshold < 0:
            raise ValueError("gc_threshold must be >= 0")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.protocol not in ("v1", "v2"):
            raise ValueError(f"protocol must be 'v1' or 'v2', got {self.protocol!r}")
        if self.http_port is not None and not 0 <= self.http_port <= 65535:
            raise ValueError("http_port must be in [0, 65535]")
        if self.stats_bytes_ttl < 0:
            raise ValueError("stats_bytes_ttl must be >= 0")
        if self.kernel_sample_every < 0:
            raise ValueError("kernel_sample_every must be >= 0")
        if self.slow_batch_ms is not None and self.slow_batch_ms <= 0:
            raise ValueError("slow_batch_ms must be positive when set")
        if self.resume_storm_window <= 0:
            raise ValueError("resume_storm_window must be positive")
        if self.resume_storm_threshold < 1:
            raise ValueError("resume_storm_threshold must be >= 1")
        if self.gc_keep_recent is not None:
            if self.gc_keep_recent < 0:
                raise ValueError("gc_keep_recent must be >= 0")
            if 0 < self.gc_threshold <= self.gc_keep_recent:
                raise ValueError(
                    "gc_keep_recent must be below gc_threshold, or GC can "
                    "never collect anything"
                )

    @property
    def effective_gc_keep_recent(self) -> int:
        """The keep-recent bound GC actually uses (derived when unset)."""
        if self.gc_keep_recent is not None:
            return self.gc_keep_recent
        return self.gc_threshold // 2 if self.gc_threshold > 0 else 2000

    @property
    def checker_kind(self) -> str:
        if self.n_shards > 1:
            return f"sharded-aion-x{self.n_shards}"
        return "aion" if self.level == "si" else "aion-ser"

    def build_checker(self, *, clock: Optional[Callable[[], float]] = None) -> OnlineCheckerT:
        """Construct the configured online checker."""
        self.validate()
        aion_config = AionConfig(timeout=self.timeout)
        if self.n_shards > 1:
            return ShardedAion(
                aion_config,
                n_shards=self.n_shards,
                clock=clock,
                executor=self.shard_executor,
                lane_capacity=self.lane_capacity,
            )
        if self.level == "si":
            return Aion(aion_config, clock=clock)
        return AionSer(aion_config, clock=clock)
