"""Blocking client for the checker daemon.

:class:`CheckerClient` speaks the wire protocol of
:mod:`repro.service.protocol` over TCP or a unix socket using nothing
but the standard library — the library a workload driver, a CDC tailer,
or a test harness embeds to stream committed transactions into a
running daemon and read verdicts back.

By default the client negotiates up to protocol v2 (binary frames with
columnar submit batches) when the daemon offers it, and falls back to
v1 ndjson otherwise; pass ``protocol=1`` to pin the debug-friendly
ndjson codec, or ``protocol=2`` to fail fast against a daemon that
cannot speak v2.  On v2, :meth:`submit_many` packs the whole batch as
one vectored frame — no per-transaction JSON objects are built.

The client is synchronous by design (producers in this repo are
synchronous); asynchrony lives on the server side.  Pushed ``violation``
messages can arrive interleaved with request replies on a subscribed
connection, so every receive path funnels through :meth:`_read_message`,
which stashes pushes in :attr:`pushed` until :meth:`take_violations` /
:meth:`wait_for_violations` collects them.

One client instance belongs to one thread; concurrent producers open
one client each (connections are cheap, and per-connection ordering is
what carries session order over the wire).

With ``auto_resume=True`` the client opens a daemon-side resume session
during the v2 handshake and survives connection cuts transparently:
operations that hit a dead socket reconnect with capped exponential
backoff + jitter, present the session token, and re-submit only batches
the daemon's acked-seq watermark has not covered — exactly-once ingest
even when the cut swallowed an ack (see :mod:`repro.service.protocol`,
*Sessions and resume*).
"""

from __future__ import annotations

import random
import socket
import time
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, TypeVar, Union

from repro.core.violations import CheckResult, Violation
from repro.histories.model import Transaction
from repro.histories.serialization import txn_to_dict
from repro.service.framing import (
    CLIENT_KIND_OF_TYPE,
    FRAME_MAGIC0,
    HEADER_SIZE,
    K_HELLO,
    decode_frame_header,
    decode_frame_payload,
    encode_hello_frame,
    encode_json_frame,
    encode_submit_frame,
)
from repro.service.protocol import (
    ProtocolError,
    decode_line,
    encode_message,
    result_from_dict,
    violation_from_dict,
)

__all__ = ["CheckerClient", "ServiceError", "http_get_json", "http_get_text"]


def http_get_text(
    host: str, port: int, path: str, timeout: float = 10.0
) -> Tuple[int, str]:
    """``GET`` a path from the daemon's HTTP sidecar: ``(status, body)``.

    Stdlib-only (``http.client``) so CLI tools and tests can hit
    ``/metrics`` and ``/health`` without depending on an HTTP library.
    Non-2xx statuses are returned, not raised — ``/health`` uses 503 as
    a meaningful answer.
    """
    import http.client

    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        body = response.read().decode("utf-8", "replace")
        return response.status, body
    finally:
        conn.close()


def http_get_json(
    host: str, port: int, path: str, timeout: float = 10.0
) -> Tuple[int, Any]:
    """:func:`http_get_text` with the body parsed as JSON."""
    import json

    status, body = http_get_text(host, port, path, timeout=timeout)
    return status, json.loads(body)


_T = TypeVar("_T")


class ServiceError(RuntimeError):
    """The daemon rejected a request (an ``error`` reply) — or, for
    connection retries, the retry budget ran out.  In the latter case
    :attr:`attempts` carries how many connection attempts were made;
    otherwise it is ``None``.
    """

    def __init__(self, message: str, *, attempts: Optional[int] = None) -> None:
        super().__init__(message)
        self.attempts = attempts


class CheckerClient:
    """One connection to a running checker daemon.

    Parameters
    ----------
    host, port:
        TCP endpoint of the daemon (ignored when ``unix_path`` is given).
    unix_path:
        Path of the daemon's unix socket.
    timeout:
        Socket timeout (seconds) applied to every blocking operation.
    protocol:
        ``None`` (default) negotiates the highest protocol the daemon
        advertises; ``1`` pins ndjson; ``2`` requires the binary frame
        codec and raises :class:`ServiceError` when unavailable.
    auto_resume:
        Opt into idempotent reconnect/resume (requires v2).  The hello
        opens a daemon-side session; on a connection cut mid-operation
        the client transparently reconnects (capped exponential backoff
        with jitter, up to ``max_resume_attempts`` cuts per operation),
        presents its session token, and re-submits only batches the
        daemon has not acked — exactly-once ingest even when the cut
        swallowed an ack (the daemon dedups by ``(session, seq)``).
    reconnect_timeout:
        Seconds each transparent reconnect keeps retrying a refused
        connection (the ``retry_for`` of the internal ``connect``) —
        the window a restarting daemon has to come back.
    max_resume_attempts:
        Connection cuts tolerated within one logical operation before
        the underlying ``OSError`` propagates.
    """

    #: Backoff schedule for connection retries: capped exponential with
    #: full jitter (each sleep is uniform in [delay/2, delay]).
    _BACKOFF_BASE = 0.02
    _BACKOFF_CAP = 1.0

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        unix_path: Optional[Union[str, Path]] = None,
        timeout: float = 30.0,
        protocol: Optional[int] = None,
        auto_resume: bool = False,
        reconnect_timeout: float = 10.0,
        max_resume_attempts: int = 8,
    ) -> None:
        if protocol not in (None, 1, 2):
            raise ValueError(f"protocol must be None, 1, or 2, got {protocol!r}")
        if auto_resume and protocol == 1:
            raise ValueError("auto_resume requires protocol v2")
        self.host = host
        self.port = port
        self.unix_path = str(unix_path) if unix_path is not None else None
        self.timeout = timeout
        self.protocol_preference = protocol
        self.auto_resume = auto_resume
        self.reconnect_timeout = reconnect_timeout
        self.max_resume_attempts = max_resume_attempts
        #: Protocol this connection actually speaks (set by connect()).
        self.protocol = 1
        self._sock: Optional[socket.socket] = None
        self._buffer = b""
        self._seq = 0
        self.welcome: Optional[Dict[str, Any]] = None
        self.subscribed = False
        #: Violations pushed by the daemon, in arrival order.
        self.pushed: List[Violation] = []
        #: Final result captured when the daemon says goodbye mid-read.
        self.final_result: Optional[CheckResult] = None
        #: Resume session token adopted from the daemon's welcome (None
        #: until the first auto_resume connect).
        self.session_token: Optional[str] = None
        #: Whether the last connect resumed an existing daemon session.
        self.session_resumed = False
        #: Submit batches sent but not yet acked, by sequence number, in
        #: send order — the bounded replay backlog (with acks on, at
        #: most one entry).
        self._unacked: "OrderedDict[int, List[Transaction]]" = OrderedDict()
        #: Highest submit seq the daemon has acked on this session.
        self._acked_seq = 0
        #: Counters for reports and tests.
        self.reconnects = 0
        self.connect_attempts = 0
        self.replayed_batches = 0
        self.recovered_acks = 0
        #: Chaos hook: application frame numbers after which the socket
        #: is severed right after the send (see :meth:`_sendall`).
        self.chaos_kill_frames: Set[int] = set()
        self.frames_sent = 0
        self._rng = random.Random()

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    def connect(self, *, retry_for: float = 0.0) -> Dict[str, Any]:
        """Connect and read the ``welcome``; returns the welcome message.

        ``retry_for`` keeps retrying a refused connection for that many
        seconds — the normal way to follow a daemon you just booted.
        Retries back off exponentially (capped, with jitter) rather than
        hammering at a fixed interval.  When the budget runs out after
        more than one attempt, the failure is raised as
        :class:`ServiceError` carrying ``.attempts``; a plain no-retry
        call (``retry_for=0``) raises the original ``OSError``
        unchanged.
        """
        deadline = time.monotonic() + retry_for
        delay = self._BACKOFF_BASE
        attempts = 0
        while True:
            attempts += 1
            try:
                self._open_socket()
                break
            except OSError as exc:
                self._teardown()
                now = time.monotonic()
                if now >= deadline:
                    self.connect_attempts = attempts
                    if attempts == 1:
                        raise
                    raise ServiceError(
                        f"connect to {self._endpoint()} failed after "
                        f"{attempts} attempts over {retry_for:.1f}s: {exc}",
                        attempts=attempts,
                    ) from exc
                time.sleep(
                    min(self._rng.uniform(delay / 2, delay), max(deadline - now, 0.0))
                )
                delay = min(delay * 2, self._BACKOFF_CAP)
        self.connect_attempts = attempts
        welcome = self._read_message()
        if welcome.get("type") != "welcome":
            raise ProtocolError(f"expected welcome, got {welcome.get('type')!r}")
        self.welcome = welcome
        self.protocol = 1
        advertised = welcome.get("protocols") or [welcome.get("protocol", 1)]
        want = self.protocol_preference
        if want == 2 and 2 not in advertised:
            raise ServiceError(f"daemon offers protocols {advertised}, not v2")
        if self.auto_resume and 2 not in advertised:
            raise ServiceError(
                f"auto_resume requires protocol v2; daemon offers {advertised}"
            )
        if (want is None or want == 2) and 2 in advertised:
            # Upgrade: a v2 hello *frame* flips the daemon's send side;
            # its framed welcome confirms the switch.  With auto_resume
            # the hello also opens (or resumes) a daemon-side session.
            assert self._sock is not None
            self._sock.sendall(
                encode_hello_frame(
                    session=self.auto_resume,
                    session_token=self.session_token if self.auto_resume else None,
                    resume_from=(
                        self._acked_seq
                        if self.auto_resume and self.session_token is not None
                        else None
                    ),
                )
            )
            confirm = self._read_message()
            if confirm.get("type") != "welcome":
                raise ProtocolError(
                    f"expected v2 welcome, got {confirm.get('type')!r}"
                )
            self.protocol = 2
            self.welcome = confirm
            if self.auto_resume:
                self._adopt_session(confirm.get("session"))
        return self.welcome

    def _endpoint(self) -> str:
        if self.unix_path is not None:
            return self.unix_path
        return f"{self.host}:{self.port}"

    def _adopt_session(self, session: Any) -> None:
        """Bind to the session in a v2 welcome, then settle the backlog.

        Batches at or below the daemon's acked-seq watermark were
        admitted before the cut (only the ack was lost) and are dropped
        from the backlog; the rest are re-submitted with their original
        sequence numbers, so a daemon that *did* see them dedups.
        """
        if not isinstance(session, dict) or not session.get("token"):
            raise ServiceError("daemon did not grant a resume session")
        self.session_token = session["token"]
        self.session_resumed = bool(session.get("resumed"))
        daemon_acked = int(session.get("acked_seq", 0))
        self._acked_seq = max(self._acked_seq, daemon_acked)
        for seq in [s for s in self._unacked if s <= daemon_acked]:
            del self._unacked[seq]
            self.recovered_acks += 1
        for seq, txns in list(self._unacked.items()):
            assert self._sock is not None
            self._sock.sendall(encode_submit_frame(txns, seq))
            reply = self._await_reply("ack", seq)
            if reply.get("enqueued") != len(txns):
                raise ServiceError(
                    f"resume replay of seq {seq}: daemon enqueued "
                    f"{reply.get('enqueued')} of {len(txns)} transactions"
                )
            del self._unacked[seq]
            self._acked_seq = max(self._acked_seq, seq)
            self.replayed_batches += 1
        if self.subscribed:
            # Replays were already absorbed (or lost with the daemon);
            # re-arm the push stream without duplicating history.
            self._request({"type": "subscribe", "replay": False}, expect="subscribed")

    def _open_socket(self) -> None:
        if self.unix_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.unix_path)
        else:
            sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._buffer = b""

    def close(self) -> None:
        self._teardown()

    def kill(self) -> None:
        """Chaos hook: sever the connection *without* clearing resume
        state — the next operation on an ``auto_resume`` client trips
        over the dead socket and reconnects transparently."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass

    def _reconnect(self) -> None:
        self.reconnects += 1
        self._teardown()
        self.connect(retry_for=self.reconnect_timeout)

    def _with_resume(self, op: Callable[[], _T]) -> _T:
        """Run one wire operation, transparently reconnecting on cuts.

        Without ``auto_resume`` this is a plain call.  With it, any
        ``OSError`` (reset, broken pipe, closed socket, recv timeout)
        triggers reconnect + session resume and one retry of the
        operation, up to ``max_resume_attempts`` cuts.  Daemon-level
        rejections (:class:`ServiceError`, :class:`ProtocolError`)
        never retry — resubmitting a rejected request is not resumption.
        """
        if not self.auto_resume:
            return op()
        cuts = 0
        reconnect = self._sock is None
        while True:
            try:
                if reconnect:
                    self._reconnect()
                    reconnect = False
                return op()
            except socket.timeout:
                # A deadline expiring is an answer, not a cut.
                raise
            except OSError:
                cuts += 1
                if cuts > self.max_resume_attempts:
                    raise
                reconnect = True

    def _teardown(self) -> None:
        self._buffer = b""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "CheckerClient":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def submit(self, txn: Transaction, *, ack: bool = True) -> None:
        """Submit one committed transaction."""
        self.submit_many([txn], ack=ack)

    def submit_many(self, txns: List[Transaction], *, ack: bool = True) -> None:
        """Submit a batch of committed transactions, in order.

        With ``ack=True`` (default) the call returns once the daemon
        admitted the whole batch to its ingest queue; ``ack=False``
        streams fire-and-forget — fastest, with admission control left
        to TCP backpressure.

        On protocol v2 the batch crosses the wire as one vectored binary
        frame (columnar arrays, interned keys) instead of a JSON object
        per transaction.
        """
        if self.protocol == 2:
            if ack:
                self._seq += 1
                seq = self._seq
            else:
                seq = 0  # seq 0 asks for no ack at the framing layer
            if ack and self.auto_resume:
                # Track the batch before the send: if the cut lands
                # between send and ack, resume must know what to replay.
                self._unacked[seq] = list(txns)

                def op() -> None:
                    if seq <= self._acked_seq and seq not in self._unacked:
                        return  # settled by the resume replay already
                    self._submit_v2(txns, seq)

                self._with_resume(op)
                self._unacked.pop(seq, None)
                self._acked_seq = max(self._acked_seq, seq)
            else:
                self._submit_v2(txns, seq)
            return
        message: Dict[str, Any] = {"type": "submit", "txns": [txn_to_dict(t) for t in txns]}
        if ack:
            reply = self._request(message, expect="ack")
            if reply.get("enqueued") != len(txns):
                raise ServiceError(
                    f"daemon enqueued {reply.get('enqueued')} of {len(txns)} transactions"
                )
        else:
            self._send(message)

    def submit_pipelined(
        self,
        txns: List[Transaction],
        *,
        batch_size: int = 500,
        window: int = 8,
        ack: bool = True,
    ) -> int:
        """Submit many transactions as a pipelined stream of batches.

        Splits ``txns`` into batches of ``batch_size`` and keeps up to
        ``window`` submit frames in flight before collecting the oldest
        ack, coalescing consecutive frames into one ``sendall`` — one
        syscall carries up to ``window`` frames, and the daemon's ingest
        queue never waits a full round trip between batches.  Replies
        arrive in order per connection, so the ack window is a FIFO.

        Returns the number of batches sent.  On protocol v1 (or with
        ``ack=False`` on v1) this degrades to sequential
        :meth:`submit_many` calls per batch.  With ``auto_resume`` the
        whole stream is covered by the resume protocol: every batch is
        tracked until acked, and a connection cut mid-stream replays
        only batches the daemon's watermark has not covered.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        batches = [list(txns[lo : lo + batch_size]) for lo in range(0, len(txns), batch_size)]
        if self.protocol != 2:
            for batch in batches:
                self.submit_many(batch, ack=ack)
            return len(batches)
        if not ack:
            # Fire-and-forget: no acks to window, just coalesce sends.
            out: List[bytes] = []
            for batch in batches:
                out.append(encode_submit_frame(batch, 0))
                if len(out) >= window:
                    self._sendall(b"".join(out))
                    out.clear()
            if out:
                self._sendall(b"".join(out))
            return len(batches)
        # Sequence numbers are assigned once, before any (re)try: a
        # resume replay identifies batches by their original seq.
        plan: List[Tuple[int, List[Transaction]]] = []
        for batch in batches:
            self._seq += 1
            plan.append((self._seq, batch))
        if self.auto_resume:
            for seq, batch in plan:
                self._unacked[seq] = batch

        def op() -> None:
            pending: List[Tuple[int, int]] = []
            out: List[bytes] = []

            def collect_oldest() -> None:
                seq, n = pending.pop(0)
                reply = self._await_reply("ack", seq)
                if reply.get("enqueued") != n:
                    raise ServiceError(
                        f"daemon enqueued {reply.get('enqueued')} of {n} transactions"
                    )
                if self.auto_resume:
                    self._unacked.pop(seq, None)
                    self._acked_seq = max(self._acked_seq, seq)

            for seq, batch in plan:
                if seq <= self._acked_seq and seq not in self._unacked:
                    continue  # settled by a resume replay already
                out.append(encode_submit_frame(batch, seq))
                pending.append((seq, len(batch)))
                if len(pending) >= window:
                    self._sendall(b"".join(out))
                    out.clear()
                    collect_oldest()
            if out:
                self._sendall(b"".join(out))
            while pending:
                collect_oldest()

        self._with_resume(op)
        return len(batches)

    def _submit_v2(self, txns: List[Transaction], seq: int) -> None:
        self._sendall(encode_submit_frame(txns, seq))
        if seq:
            reply = self._await_reply("ack", seq)
            if reply.get("enqueued") != len(txns):
                raise ServiceError(
                    f"daemon enqueued {reply.get('enqueued')} of {len(txns)} transactions"
                )

    def subscribe(self, *, replay: bool = False) -> None:
        """Start receiving live violation pushes on this connection."""
        self._with_resume(
            lambda: self._request({"type": "subscribe", "replay": replay}, expect="subscribed")
        )
        self.subscribed = True

    def ping(self) -> None:
        self._with_resume(lambda: self._request({"type": "ping"}, expect="pong"))

    def stats(self, *, include_bytes: bool = True) -> Dict[str, Any]:
        """Fetch the daemon's resident/throughput/GC counters.

        ``include_bytes=False`` asks the daemon to skip the
        ``estimated_bytes`` deep-sizeof walk — the cheap mode for
        polling a daemon with a large resident set.
        """
        return self._with_resume(
            lambda: self._request({"type": "stats", "bytes": include_bytes}, expect="stats")
        )["stats"]

    def drain(self, *, wait_timeout: Optional[float] = None) -> int:
        """Block until everything submitted so far is checked.

        Unlike plain requests, draining waits for the checker to catch
        up — unbounded by default rather than capped at the socket
        timeout; pass ``wait_timeout`` to bound the wait.
        """

        def op() -> int:
            with self._deadline(wait_timeout):
                return self._request({"type": "drain"}, expect="drained")["processed"]

        return self._with_resume(op)

    def finalize(self, *, wait_timeout: Optional[float] = None) -> CheckResult:
        """Drain, force-finalize pending EXT verdicts, return the result.

        Waits for the daemon to catch up (see :meth:`drain`).
        """

        def op() -> Dict[str, Any]:
            with self._deadline(wait_timeout):
                return self._request({"type": "finalize"}, expect="result")

        return result_from_dict(self._with_resume(op))

    def shutdown(self, *, wait_timeout: Optional[float] = None) -> CheckResult:
        """Ask the daemon to drain, finalize, and exit; returns the result.

        Waits for the daemon to catch up (see :meth:`drain`).
        """
        with self._deadline(wait_timeout):
            self._send({"type": "shutdown"})
            reply = self._read_until("result")
        self.final_result = result_from_dict(reply)
        return self.final_result

    @contextmanager
    def _deadline(self, timeout: Optional[float]):
        """Temporarily replace the per-operation socket timeout."""
        assert self._sock is not None, "not connected"
        self._sock.settimeout(timeout)
        try:
            yield
        finally:
            if self._sock is not None:
                self._sock.settimeout(self.timeout)

    # ------------------------------------------------------------------
    # Pushed verdicts
    # ------------------------------------------------------------------

    def take_violations(self) -> List[Violation]:
        """Drain violations already received (does not touch the socket)."""
        taken, self.pushed = self.pushed, []
        return taken

    def wait_for_violations(self, count: int = 1, *, timeout: float = 5.0) -> List[Violation]:
        """Block until at least ``count`` pushed violations arrived.

        Returns everything received (may exceed ``count``); raises
        :class:`TimeoutError` if the daemon stays quiet too long.
        """
        assert self._sock is not None, "not connected"
        deadline = time.monotonic() + timeout
        while len(self.pushed) < count:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"got {len(self.pushed)}/{count} violations within {timeout}s"
                )
            self._sock.settimeout(remaining)
            try:
                self._read_message()
            except socket.timeout:
                # recv() timed out cleanly: _buffer still holds any
                # partial line, so framing survives and we re-check the
                # deadline.
                continue
            finally:
                self._sock.settimeout(self.timeout)
        return self.take_violations()

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------

    def _send(self, message: Dict[str, Any]) -> None:
        assert self._sock is not None, "not connected"
        # A type outside the v2 vocabulary (e.g. a probe for the
        # daemon's unknown-message handling) goes as an ndjson line even
        # on a v2 connection — the daemon sniffs the codec per message.
        # Dict-form submits do too: a K_SUBMIT frame's payload is always
        # binary columnar, built only by encode_submit_frame.
        kind = (
            CLIENT_KIND_OF_TYPE.get(message["type"])
            if self.protocol == 2 and message["type"] != "submit"
            else None
        )
        if kind is not None:
            data = encode_json_frame(kind, message)
        else:
            data = encode_message(message)
        self._sendall(data)

    def _sendall(self, data: bytes) -> None:
        """Send one application frame, honoring the chaos kill hook.

        ``chaos_kill_frames`` severs the socket *right after* the
        matching frame left — the daemon may have processed (even acked)
        it while the client never reads the reply, which is exactly the
        ambiguity the resume watermark resolves.  Handshake traffic in
        ``connect`` bypasses this counter so a reconnect always makes
        progress.
        """
        assert self._sock is not None, "not connected"
        self._sock.sendall(data)
        self.frames_sent += 1
        if self.frames_sent in self.chaos_kill_frames:
            try:
                self._sock.close()
            except OSError:
                pass

    def _request(self, message: Dict[str, Any], *, expect: str) -> Dict[str, Any]:
        self._seq += 1
        seq = self._seq
        message = dict(message, seq=seq)
        self._send(message)
        return self._await_reply(expect, seq)

    def _await_reply(self, expect: str, seq: int) -> Dict[str, Any]:
        while True:
            reply = self._read_message()
            kind = reply.get("type")
            if kind == "error" and reply.get("seq") in (seq, None):
                raise ServiceError(reply.get("message", "unspecified error"))
            if kind == expect and reply.get("seq") == seq:
                return reply
            # Anything else on a subscribed connection is a push already
            # absorbed by _read_message; unsolicited replies are dropped.

    def _read_until(self, kind: str) -> Dict[str, Any]:
        while True:
            reply = self._read_message()
            if reply.get("type") == kind:
                return reply

    def _read_message(self) -> Dict[str, Any]:
        """Read one message, absorbing violation pushes along the way.

        Also captures any ``result`` into :attr:`final_result` — a
        daemon-initiated shutdown broadcasts the final verdict without a
        ``seq``, and a client blocked in an unrelated request must not
        lose it when the socket then closes.

        The incoming codec is sniffed per message from its first byte
        (0xA6 can never start an ndjson line), so a connection that
        upgrades mid-stream — or a daemon that answers the upgrade in
        frames while a v1 push is still in flight — parses cleanly.
        """
        if self._peek_byte() == FRAME_MAGIC0:
            # Fill before consuming: a timeout mid-frame must leave the
            # buffer at a message boundary for the retry.
            self._fill(HEADER_SIZE)
            kind_byte, length = decode_frame_header(self._buffer[:HEADER_SIZE])
            self._fill(HEADER_SIZE + length)
            # Decode straight out of the receive buffer: a memoryview
            # slice instead of a bytes copy of the payload (the columnar
            # decoder reads it in place).
            received = self._buffer
            self._buffer = received[HEADER_SIZE + length :]
            with memoryview(received) as whole:
                message = decode_frame_payload(
                    kind_byte, whole[HEADER_SIZE : HEADER_SIZE + length]
                )
        else:
            message = decode_line(self._read_line())
        kind = message.get("type")
        if kind == "violation":
            self.pushed.append(violation_from_dict(message["violation"]))
        elif kind == "result":
            self.final_result = result_from_dict(message)
        return message

    def _read_line(self) -> bytes:
        """Read one ``\\n``-terminated line from the connection.

        A hand-rolled buffer instead of ``socket.makefile``: a timeout
        mid-``recv`` must leave already-received bytes intact (buffered
        file objects lose them), and pushed lines that arrived in one
        packet must be consumable without touching the socket again.
        """
        assert self._sock is not None, "not connected"
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = self._buffer[: newline + 1]
                self._buffer = self._buffer[newline + 1 :]
                return line
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("daemon closed the connection")
            self._buffer += chunk

    def _peek_byte(self) -> int:
        self._fill(1)
        return self._buffer[0]

    def _fill(self, n: int) -> None:
        """Grow the receive buffer to at least ``n`` bytes (no consume)."""
        assert self._sock is not None, "not connected"
        while len(self._buffer) < n:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("daemon closed the connection")
            self._buffer += chunk
