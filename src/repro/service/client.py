"""Blocking client for the checker daemon.

:class:`CheckerClient` speaks the ndjson protocol of
:mod:`repro.service.protocol` over TCP or a unix socket using nothing
but the standard library — the library a workload driver, a CDC tailer,
or a test harness embeds to stream committed transactions into a
running daemon and read verdicts back.

The client is synchronous by design (producers in this repo are
synchronous); asynchrony lives on the server side.  Pushed ``violation``
messages can arrive interleaved with request replies on a subscribed
connection, so every receive path funnels through :meth:`_read_message`,
which stashes pushes in :attr:`pushed` until :meth:`take_violations` /
:meth:`wait_for_violations` collects them.

One client instance belongs to one thread; concurrent producers open
one client each (connections are cheap, and per-connection ordering is
what carries session order over the wire).
"""

from __future__ import annotations

import socket
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.violations import CheckResult, Violation
from repro.histories.model import Transaction
from repro.histories.serialization import txn_to_dict
from repro.service.protocol import (
    ProtocolError,
    decode_line,
    encode_message,
    result_from_dict,
    violation_from_dict,
)

__all__ = ["CheckerClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The daemon rejected a request (an ``error`` reply)."""


class CheckerClient:
    """One connection to a running checker daemon.

    Parameters
    ----------
    host, port:
        TCP endpoint of the daemon (ignored when ``unix_path`` is given).
    unix_path:
        Path of the daemon's unix socket.
    timeout:
        Socket timeout (seconds) applied to every blocking operation.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        unix_path: Optional[Union[str, Path]] = None,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.unix_path = str(unix_path) if unix_path is not None else None
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._buffer = b""
        self._seq = 0
        self.welcome: Optional[Dict[str, Any]] = None
        self.subscribed = False
        #: Violations pushed by the daemon, in arrival order.
        self.pushed: List[Violation] = []
        #: Final result captured when the daemon says goodbye mid-read.
        self.final_result: Optional[CheckResult] = None

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    def connect(self, *, retry_for: float = 0.0) -> Dict[str, Any]:
        """Connect and read the ``welcome``; returns the welcome message.

        ``retry_for`` keeps retrying a refused connection for that many
        seconds — the normal way to follow a daemon you just booted.
        """
        deadline = time.monotonic() + retry_for
        while True:
            try:
                self._open_socket()
                break
            except OSError:
                self._teardown()
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
        welcome = self._read_message()
        if welcome.get("type") != "welcome":
            raise ProtocolError(f"expected welcome, got {welcome.get('type')!r}")
        self.welcome = welcome
        return welcome

    def _open_socket(self) -> None:
        if self.unix_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.unix_path)
        else:
            sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._buffer = b""

    def close(self) -> None:
        self._teardown()

    def _teardown(self) -> None:
        self._buffer = b""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "CheckerClient":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def submit(self, txn: Transaction, *, ack: bool = True) -> None:
        """Submit one committed transaction."""
        self.submit_many([txn], ack=ack)

    def submit_many(self, txns: List[Transaction], *, ack: bool = True) -> None:
        """Submit a batch of committed transactions, in order.

        With ``ack=True`` (default) the call returns once the daemon
        admitted the whole batch to its ingest queue; ``ack=False``
        streams fire-and-forget — fastest, with admission control left
        to TCP backpressure.
        """
        message: Dict[str, Any] = {"type": "submit", "txns": [txn_to_dict(t) for t in txns]}
        if ack:
            reply = self._request(message, expect="ack")
            if reply.get("enqueued") != len(txns):
                raise ServiceError(
                    f"daemon enqueued {reply.get('enqueued')} of {len(txns)} transactions"
                )
        else:
            self._send(message)

    def subscribe(self, *, replay: bool = False) -> None:
        """Start receiving live violation pushes on this connection."""
        self._request({"type": "subscribe", "replay": replay}, expect="subscribed")
        self.subscribed = True

    def ping(self) -> None:
        self._request({"type": "ping"}, expect="pong")

    def stats(self, *, include_bytes: bool = True) -> Dict[str, Any]:
        """Fetch the daemon's resident/throughput/GC counters.

        ``include_bytes=False`` asks the daemon to skip the
        ``estimated_bytes`` deep-sizeof walk — the cheap mode for
        polling a daemon with a large resident set.
        """
        return self._request({"type": "stats", "bytes": include_bytes}, expect="stats")["stats"]

    def drain(self, *, wait_timeout: Optional[float] = None) -> int:
        """Block until everything submitted so far is checked.

        Unlike plain requests, draining waits for the checker to catch
        up — unbounded by default rather than capped at the socket
        timeout; pass ``wait_timeout`` to bound the wait.
        """
        with self._deadline(wait_timeout):
            return self._request({"type": "drain"}, expect="drained")["processed"]

    def finalize(self, *, wait_timeout: Optional[float] = None) -> CheckResult:
        """Drain, force-finalize pending EXT verdicts, return the result.

        Waits for the daemon to catch up (see :meth:`drain`).
        """
        with self._deadline(wait_timeout):
            reply = self._request({"type": "finalize"}, expect="result")
        return result_from_dict(reply)

    def shutdown(self, *, wait_timeout: Optional[float] = None) -> CheckResult:
        """Ask the daemon to drain, finalize, and exit; returns the result.

        Waits for the daemon to catch up (see :meth:`drain`).
        """
        with self._deadline(wait_timeout):
            self._send({"type": "shutdown"})
            reply = self._read_until("result")
        self.final_result = result_from_dict(reply)
        return self.final_result

    @contextmanager
    def _deadline(self, timeout: Optional[float]):
        """Temporarily replace the per-operation socket timeout."""
        assert self._sock is not None, "not connected"
        self._sock.settimeout(timeout)
        try:
            yield
        finally:
            if self._sock is not None:
                self._sock.settimeout(self.timeout)

    # ------------------------------------------------------------------
    # Pushed verdicts
    # ------------------------------------------------------------------

    def take_violations(self) -> List[Violation]:
        """Drain violations already received (does not touch the socket)."""
        taken, self.pushed = self.pushed, []
        return taken

    def wait_for_violations(self, count: int = 1, *, timeout: float = 5.0) -> List[Violation]:
        """Block until at least ``count`` pushed violations arrived.

        Returns everything received (may exceed ``count``); raises
        :class:`TimeoutError` if the daemon stays quiet too long.
        """
        assert self._sock is not None, "not connected"
        deadline = time.monotonic() + timeout
        while len(self.pushed) < count:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"got {len(self.pushed)}/{count} violations within {timeout}s"
                )
            self._sock.settimeout(remaining)
            try:
                self._read_message()
            except socket.timeout:
                # recv() timed out cleanly: _buffer still holds any
                # partial line, so framing survives and we re-check the
                # deadline.
                continue
            finally:
                self._sock.settimeout(self.timeout)
        return self.take_violations()

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------

    def _send(self, message: Dict[str, Any]) -> None:
        assert self._sock is not None, "not connected"
        self._sock.sendall(encode_message(message))

    def _request(self, message: Dict[str, Any], *, expect: str) -> Dict[str, Any]:
        self._seq += 1
        seq = self._seq
        message = dict(message, seq=seq)
        self._send(message)
        while True:
            reply = self._read_message()
            kind = reply.get("type")
            if kind == "error" and reply.get("seq") in (seq, None):
                raise ServiceError(reply.get("message", "unspecified error"))
            if kind == expect and reply.get("seq") == seq:
                return reply
            # Anything else on a subscribed connection is a push already
            # absorbed by _read_message; unsolicited replies are dropped.

    def _read_until(self, kind: str) -> Dict[str, Any]:
        while True:
            reply = self._read_message()
            if reply.get("type") == kind:
                return reply

    def _read_message(self) -> Dict[str, Any]:
        """Read one message, absorbing violation pushes along the way.

        Also captures any ``result`` into :attr:`final_result` — a
        daemon-initiated shutdown broadcasts the final verdict without a
        ``seq``, and a client blocked in an unrelated request must not
        lose it when the socket then closes.
        """
        message = decode_line(self._read_line())
        kind = message.get("type")
        if kind == "violation":
            self.pushed.append(violation_from_dict(message["violation"]))
        elif kind == "result":
            self.final_result = result_from_dict(message)
        return message

    def _read_line(self) -> bytes:
        """Read one ``\\n``-terminated line from the connection.

        A hand-rolled buffer instead of ``socket.makefile``: a timeout
        mid-``recv`` must leave already-received bytes intact (buffered
        file objects lose them), and pushed lines that arrived in one
        packet must be consumable without touching the socket again.
        """
        assert self._sock is not None, "not connected"
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = self._buffer[: newline + 1]
                self._buffer = self._buffer[newline + 1 :]
                return line
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("daemon closed the connection")
            self._buffer += chunk
