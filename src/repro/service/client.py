"""Blocking client for the checker daemon.

:class:`CheckerClient` speaks the wire protocol of
:mod:`repro.service.protocol` over TCP or a unix socket using nothing
but the standard library — the library a workload driver, a CDC tailer,
or a test harness embeds to stream committed transactions into a
running daemon and read verdicts back.

By default the client negotiates up to protocol v2 (binary frames with
columnar submit batches) when the daemon offers it, and falls back to
v1 ndjson otherwise; pass ``protocol=1`` to pin the debug-friendly
ndjson codec, or ``protocol=2`` to fail fast against a daemon that
cannot speak v2.  On v2, :meth:`submit_many` packs the whole batch as
one vectored frame — no per-transaction JSON objects are built.

The client is synchronous by design (producers in this repo are
synchronous); asynchrony lives on the server side.  Pushed ``violation``
messages can arrive interleaved with request replies on a subscribed
connection, so every receive path funnels through :meth:`_read_message`,
which stashes pushes in :attr:`pushed` until :meth:`take_violations` /
:meth:`wait_for_violations` collects them.

One client instance belongs to one thread; concurrent producers open
one client each (connections are cheap, and per-connection ordering is
what carries session order over the wire).
"""

from __future__ import annotations

import socket
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.violations import CheckResult, Violation
from repro.histories.model import Transaction
from repro.histories.serialization import txn_to_dict
from repro.service.framing import (
    CLIENT_KIND_OF_TYPE,
    FRAME_MAGIC0,
    HEADER_SIZE,
    K_HELLO,
    decode_frame_header,
    decode_frame_payload,
    encode_json_frame,
    encode_submit_frame,
)
from repro.service.protocol import (
    ProtocolError,
    decode_line,
    encode_message,
    result_from_dict,
    violation_from_dict,
)

__all__ = ["CheckerClient", "ServiceError", "http_get_json", "http_get_text"]


def http_get_text(
    host: str, port: int, path: str, timeout: float = 10.0
) -> Tuple[int, str]:
    """``GET`` a path from the daemon's HTTP sidecar: ``(status, body)``.

    Stdlib-only (``http.client``) so CLI tools and tests can hit
    ``/metrics`` and ``/health`` without depending on an HTTP library.
    Non-2xx statuses are returned, not raised — ``/health`` uses 503 as
    a meaningful answer.
    """
    import http.client

    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        body = response.read().decode("utf-8", "replace")
        return response.status, body
    finally:
        conn.close()


def http_get_json(
    host: str, port: int, path: str, timeout: float = 10.0
) -> Tuple[int, Any]:
    """:func:`http_get_text` with the body parsed as JSON."""
    import json

    status, body = http_get_text(host, port, path, timeout=timeout)
    return status, json.loads(body)


class ServiceError(RuntimeError):
    """The daemon rejected a request (an ``error`` reply)."""


class CheckerClient:
    """One connection to a running checker daemon.

    Parameters
    ----------
    host, port:
        TCP endpoint of the daemon (ignored when ``unix_path`` is given).
    unix_path:
        Path of the daemon's unix socket.
    timeout:
        Socket timeout (seconds) applied to every blocking operation.
    protocol:
        ``None`` (default) negotiates the highest protocol the daemon
        advertises; ``1`` pins ndjson; ``2`` requires the binary frame
        codec and raises :class:`ServiceError` when unavailable.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        unix_path: Optional[Union[str, Path]] = None,
        timeout: float = 30.0,
        protocol: Optional[int] = None,
    ) -> None:
        if protocol not in (None, 1, 2):
            raise ValueError(f"protocol must be None, 1, or 2, got {protocol!r}")
        self.host = host
        self.port = port
        self.unix_path = str(unix_path) if unix_path is not None else None
        self.timeout = timeout
        self.protocol_preference = protocol
        #: Protocol this connection actually speaks (set by connect()).
        self.protocol = 1
        self._sock: Optional[socket.socket] = None
        self._buffer = b""
        self._seq = 0
        self.welcome: Optional[Dict[str, Any]] = None
        self.subscribed = False
        #: Violations pushed by the daemon, in arrival order.
        self.pushed: List[Violation] = []
        #: Final result captured when the daemon says goodbye mid-read.
        self.final_result: Optional[CheckResult] = None

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    def connect(self, *, retry_for: float = 0.0) -> Dict[str, Any]:
        """Connect and read the ``welcome``; returns the welcome message.

        ``retry_for`` keeps retrying a refused connection for that many
        seconds — the normal way to follow a daemon you just booted.
        """
        deadline = time.monotonic() + retry_for
        while True:
            try:
                self._open_socket()
                break
            except OSError:
                self._teardown()
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
        welcome = self._read_message()
        if welcome.get("type") != "welcome":
            raise ProtocolError(f"expected welcome, got {welcome.get('type')!r}")
        self.welcome = welcome
        self.protocol = 1
        advertised = welcome.get("protocols") or [welcome.get("protocol", 1)]
        want = self.protocol_preference
        if want == 2 and 2 not in advertised:
            raise ServiceError(f"daemon offers protocols {advertised}, not v2")
        if (want is None or want == 2) and 2 in advertised:
            # Upgrade: a v2 hello *frame* flips the daemon's send side;
            # its framed welcome confirms the switch.
            assert self._sock is not None
            self._sock.sendall(
                encode_json_frame(
                    K_HELLO, {"type": "hello", "client": "repro-client", "protocol": 2}
                )
            )
            confirm = self._read_message()
            if confirm.get("type") != "welcome":
                raise ProtocolError(
                    f"expected v2 welcome, got {confirm.get('type')!r}"
                )
            self.protocol = 2
            self.welcome = confirm
        return self.welcome

    def _open_socket(self) -> None:
        if self.unix_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.unix_path)
        else:
            sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._buffer = b""

    def close(self) -> None:
        self._teardown()

    def _teardown(self) -> None:
        self._buffer = b""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "CheckerClient":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def submit(self, txn: Transaction, *, ack: bool = True) -> None:
        """Submit one committed transaction."""
        self.submit_many([txn], ack=ack)

    def submit_many(self, txns: List[Transaction], *, ack: bool = True) -> None:
        """Submit a batch of committed transactions, in order.

        With ``ack=True`` (default) the call returns once the daemon
        admitted the whole batch to its ingest queue; ``ack=False``
        streams fire-and-forget — fastest, with admission control left
        to TCP backpressure.

        On protocol v2 the batch crosses the wire as one vectored binary
        frame (columnar arrays, interned keys) instead of a JSON object
        per transaction.
        """
        if self.protocol == 2:
            assert self._sock is not None, "not connected"
            if ack:
                self._seq += 1
                seq = self._seq
            else:
                seq = 0  # seq 0 asks for no ack at the framing layer
            self._sock.sendall(encode_submit_frame(txns, seq))
            if ack:
                reply = self._await_reply("ack", seq)
                if reply.get("enqueued") != len(txns):
                    raise ServiceError(
                        f"daemon enqueued {reply.get('enqueued')} of {len(txns)} transactions"
                    )
            return
        message: Dict[str, Any] = {"type": "submit", "txns": [txn_to_dict(t) for t in txns]}
        if ack:
            reply = self._request(message, expect="ack")
            if reply.get("enqueued") != len(txns):
                raise ServiceError(
                    f"daemon enqueued {reply.get('enqueued')} of {len(txns)} transactions"
                )
        else:
            self._send(message)

    def subscribe(self, *, replay: bool = False) -> None:
        """Start receiving live violation pushes on this connection."""
        self._request({"type": "subscribe", "replay": replay}, expect="subscribed")
        self.subscribed = True

    def ping(self) -> None:
        self._request({"type": "ping"}, expect="pong")

    def stats(self, *, include_bytes: bool = True) -> Dict[str, Any]:
        """Fetch the daemon's resident/throughput/GC counters.

        ``include_bytes=False`` asks the daemon to skip the
        ``estimated_bytes`` deep-sizeof walk — the cheap mode for
        polling a daemon with a large resident set.
        """
        return self._request({"type": "stats", "bytes": include_bytes}, expect="stats")["stats"]

    def drain(self, *, wait_timeout: Optional[float] = None) -> int:
        """Block until everything submitted so far is checked.

        Unlike plain requests, draining waits for the checker to catch
        up — unbounded by default rather than capped at the socket
        timeout; pass ``wait_timeout`` to bound the wait.
        """
        with self._deadline(wait_timeout):
            return self._request({"type": "drain"}, expect="drained")["processed"]

    def finalize(self, *, wait_timeout: Optional[float] = None) -> CheckResult:
        """Drain, force-finalize pending EXT verdicts, return the result.

        Waits for the daemon to catch up (see :meth:`drain`).
        """
        with self._deadline(wait_timeout):
            reply = self._request({"type": "finalize"}, expect="result")
        return result_from_dict(reply)

    def shutdown(self, *, wait_timeout: Optional[float] = None) -> CheckResult:
        """Ask the daemon to drain, finalize, and exit; returns the result.

        Waits for the daemon to catch up (see :meth:`drain`).
        """
        with self._deadline(wait_timeout):
            self._send({"type": "shutdown"})
            reply = self._read_until("result")
        self.final_result = result_from_dict(reply)
        return self.final_result

    @contextmanager
    def _deadline(self, timeout: Optional[float]):
        """Temporarily replace the per-operation socket timeout."""
        assert self._sock is not None, "not connected"
        self._sock.settimeout(timeout)
        try:
            yield
        finally:
            if self._sock is not None:
                self._sock.settimeout(self.timeout)

    # ------------------------------------------------------------------
    # Pushed verdicts
    # ------------------------------------------------------------------

    def take_violations(self) -> List[Violation]:
        """Drain violations already received (does not touch the socket)."""
        taken, self.pushed = self.pushed, []
        return taken

    def wait_for_violations(self, count: int = 1, *, timeout: float = 5.0) -> List[Violation]:
        """Block until at least ``count`` pushed violations arrived.

        Returns everything received (may exceed ``count``); raises
        :class:`TimeoutError` if the daemon stays quiet too long.
        """
        assert self._sock is not None, "not connected"
        deadline = time.monotonic() + timeout
        while len(self.pushed) < count:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"got {len(self.pushed)}/{count} violations within {timeout}s"
                )
            self._sock.settimeout(remaining)
            try:
                self._read_message()
            except socket.timeout:
                # recv() timed out cleanly: _buffer still holds any
                # partial line, so framing survives and we re-check the
                # deadline.
                continue
            finally:
                self._sock.settimeout(self.timeout)
        return self.take_violations()

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------

    def _send(self, message: Dict[str, Any]) -> None:
        assert self._sock is not None, "not connected"
        # A type outside the v2 vocabulary (e.g. a probe for the
        # daemon's unknown-message handling) goes as an ndjson line even
        # on a v2 connection — the daemon sniffs the codec per message.
        # Dict-form submits do too: a K_SUBMIT frame's payload is always
        # binary columnar, built only by encode_submit_frame.
        kind = (
            CLIENT_KIND_OF_TYPE.get(message["type"])
            if self.protocol == 2 and message["type"] != "submit"
            else None
        )
        if kind is not None:
            data = encode_json_frame(kind, message)
        else:
            data = encode_message(message)
        self._sock.sendall(data)

    def _request(self, message: Dict[str, Any], *, expect: str) -> Dict[str, Any]:
        self._seq += 1
        seq = self._seq
        message = dict(message, seq=seq)
        self._send(message)
        return self._await_reply(expect, seq)

    def _await_reply(self, expect: str, seq: int) -> Dict[str, Any]:
        while True:
            reply = self._read_message()
            kind = reply.get("type")
            if kind == "error" and reply.get("seq") in (seq, None):
                raise ServiceError(reply.get("message", "unspecified error"))
            if kind == expect and reply.get("seq") == seq:
                return reply
            # Anything else on a subscribed connection is a push already
            # absorbed by _read_message; unsolicited replies are dropped.

    def _read_until(self, kind: str) -> Dict[str, Any]:
        while True:
            reply = self._read_message()
            if reply.get("type") == kind:
                return reply

    def _read_message(self) -> Dict[str, Any]:
        """Read one message, absorbing violation pushes along the way.

        Also captures any ``result`` into :attr:`final_result` — a
        daemon-initiated shutdown broadcasts the final verdict without a
        ``seq``, and a client blocked in an unrelated request must not
        lose it when the socket then closes.

        The incoming codec is sniffed per message from its first byte
        (0xA6 can never start an ndjson line), so a connection that
        upgrades mid-stream — or a daemon that answers the upgrade in
        frames while a v1 push is still in flight — parses cleanly.
        """
        if self._peek_byte() == FRAME_MAGIC0:
            # Fill before consuming: a timeout mid-frame must leave the
            # buffer at a message boundary for the retry.
            self._fill(HEADER_SIZE)
            kind_byte, length = decode_frame_header(self._buffer[:HEADER_SIZE])
            self._fill(HEADER_SIZE + length)
            payload = self._buffer[HEADER_SIZE : HEADER_SIZE + length]
            self._buffer = self._buffer[HEADER_SIZE + length :]
            message = decode_frame_payload(kind_byte, payload)
        else:
            message = decode_line(self._read_line())
        kind = message.get("type")
        if kind == "violation":
            self.pushed.append(violation_from_dict(message["violation"]))
        elif kind == "result":
            self.final_result = result_from_dict(message)
        return message

    def _read_line(self) -> bytes:
        """Read one ``\\n``-terminated line from the connection.

        A hand-rolled buffer instead of ``socket.makefile``: a timeout
        mid-``recv`` must leave already-received bytes intact (buffered
        file objects lose them), and pushed lines that arrived in one
        packet must be consumable without touching the socket again.
        """
        assert self._sock is not None, "not connected"
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = self._buffer[: newline + 1]
                self._buffer = self._buffer[newline + 1 :]
                return line
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("daemon closed the connection")
            self._buffer += chunk

    def _peek_byte(self) -> int:
        self._fill(1)
        return self._buffer[0]

    def _fill(self, n: int) -> None:
        """Grow the receive buffer to at least ``n`` bytes (no consume)."""
        assert self._sock is not None, "not connected"
        while len(self._buffer) < n:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("daemon closed the connection")
            self._buffer += chunk
