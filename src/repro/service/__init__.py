"""repro.service — the online checker as a network daemon.

The subsystem that closes the gap between the in-process reproduction
and the paper's deployment story: an asyncio daemon
(:class:`~repro.service.daemon.CheckerService`) wraps
Aion/Aion-SER/ShardedAion behind a two-codec TCP (or unix-socket) wire
protocol — ndjson for debugging and interop, length-prefixed binary
frames with columnar submit batches for throughput
(:mod:`repro.service.protocol`, :mod:`repro.service.framing`) — a
blocking client library
(:class:`~repro.service.client.CheckerClient`) feeds it from ordinary
synchronous producers, and :mod:`repro.service.replay` streams WAL
captures, history files, anomaly fixtures, or generated workloads into a
running daemon.  ``python -m repro serve`` / ``python -m repro replay``
expose the pair on the command line.
"""

from repro.service.client import CheckerClient, ServiceError
from repro.service.config import ServiceConfig
from repro.service.daemon import CheckerService, ServiceThread
from repro.service.protocol import PROTOCOL_VERSION, PROTOCOL_VERSIONS, ProtocolError
from repro.service.replay import ReplayReport, replay_transactions, transactions_in_commit_order

__all__ = [
    "PROTOCOL_VERSION",
    "PROTOCOL_VERSIONS",
    "CheckerClient",
    "CheckerService",
    "ProtocolError",
    "ReplayReport",
    "ServiceConfig",
    "ServiceError",
    "ServiceThread",
    "replay_transactions",
    "transactions_in_commit_order",
]
